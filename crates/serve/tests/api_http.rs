//! End-to-end lifecycle over real HTTP: submit → long-poll → report →
//! Q&A → listing → events → metrics, plus the error surface (bad
//! submits, unknown jobs, premature Q&A).

mod util;

use ion_serve::{client, Daemon, ServeConfig};
use ion_store::Store;
use std::sync::Arc;
use util::{obs_guard, tmp_dir, trace_bytes};

#[test]
fn full_job_lifecycle_over_http() {
    let _sink = obs_guard();
    let root = tmp_dir("lifecycle");
    let store = Arc::new(Store::open(&root).unwrap());
    let daemon = Daemon::bind("127.0.0.1:0", store, ServeConfig::default()).unwrap();
    let addr = daemon.local_addr();

    // Liveness first.
    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.text(), "ok\n");

    // Submit a trace.
    let trace = trace_bytes("lifecycle");
    let submitted = client::post(addr, "/v1/jobs", &[("X-Ion-Tenant", "acme")], &trace).unwrap();
    assert_eq!(submitted.status, 202, "{}", submitted.text());
    let doc = submitted.json().unwrap();
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("ion-serve/v1"));
    assert_eq!(doc.get("state").unwrap().as_str(), Some("queued"));
    assert_eq!(doc.get("deduped").unwrap().as_bool(), Some(false));
    let id = doc.get("job").unwrap().as_str().unwrap().to_owned();

    // Long-poll to a terminal state (condvar wakeup, not server sleeps).
    let status = client::get(addr, &format!("/v1/jobs/{id}?wait_ms=30000")).unwrap();
    assert_eq!(status.status, 200);
    let doc = status.json().unwrap();
    assert_eq!(
        doc.get("state").unwrap().as_str(),
        Some("done"),
        "{}",
        status.text()
    );
    assert_eq!(doc.get("tenant").unwrap().as_str(), Some("acme"));
    assert!(doc.get("detected").unwrap().as_u64().is_some());

    // Fetch the report.
    let report = client::get(addr, &format!("/v1/jobs/{id}/report")).unwrap();
    assert_eq!(report.status, 200);
    assert!(!report.body.is_empty(), "report must be non-empty");

    // Interactive Q&A — both body forms.
    let qa = client::post(
        addr,
        &format!("/v1/jobs/{id}/qa"),
        &[],
        b"what issues were detected?",
    )
    .unwrap();
    assert_eq!(qa.status, 200, "{}", qa.text());
    let answer = qa.json().unwrap();
    assert!(!answer.get("answer").unwrap().as_str().unwrap().is_empty());
    let qa_json = client::post(
        addr,
        &format!("/v1/jobs/{id}/qa"),
        &[],
        b"{\"question\":\"summarize the analysis\"}",
    )
    .unwrap();
    assert_eq!(qa_json.status, 200, "{}", qa_json.text());

    // Listing reflects the finished job and tallies.
    let listing = client::get(addr, "/v1/jobs").unwrap();
    assert_eq!(listing.status, 200);
    let text = listing.text();
    assert!(text.contains("\"done\":1"), "{text}");
    assert!(text.contains(&format!("\"job\":\"{id}\"")), "{text}");

    // The event stream saw the lifecycle.
    let events = client::get(addr, "/v1/events").unwrap();
    assert_eq!(events.status, 200, "{}", events.text());
    let text = events.text();
    assert!(text.contains("serve.submit"), "{text}");
    assert!(text.contains("serve.finish"), "{text}");
    // Cursored re-read from `next` replays nothing already seen (the
    // stream is live — the read itself emits http.requests events — so
    // only absence of old lines is asserted).
    let next = events
        .json()
        .unwrap()
        .get("next")
        .unwrap()
        .as_u64()
        .unwrap();
    let tail = client::get(addr, &format!("/v1/events?from={next}")).unwrap();
    let tail_doc = tail.json().unwrap();
    assert_eq!(tail_doc.get("from").unwrap().as_u64(), Some(next));
    assert!(!tail.text().contains("serve.submit"), "{}", tail.text());

    // Telemetry rides the same listener.
    let metrics = client::get(addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(text.contains("ion_serve_jobs_done 1"), "{text}");
    assert!(text.contains("ion_serve_worker_panics 0"), "{text}");
    let progress = client::get(addr, "/progress").unwrap();
    assert_eq!(progress.status, 200);

    let summary = daemon.shutdown();
    assert_eq!(summary.done, 1);
    assert_eq!(summary.cancelled_queued, 0);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn error_surface_is_typed() {
    let _sink = obs_guard();
    let root = tmp_dir("errors");
    let store = Arc::new(Store::open(&root).unwrap());
    let daemon = Daemon::bind("127.0.0.1:0", store, ServeConfig::default()).unwrap();
    let addr = daemon.local_addr();

    // Empty body is a 400, not a queued no-op job.
    let empty = client::post(addr, "/v1/jobs", &[], &[]).unwrap();
    assert_eq!(empty.status, 400);

    // Unknown job ids 404 on every job route.
    assert_eq!(client::get(addr, "/v1/jobs/j999").unwrap().status, 404);
    assert_eq!(
        client::get(addr, "/v1/jobs/j999/report").unwrap().status,
        404
    );
    assert_eq!(
        client::post(addr, "/v1/jobs/j999/qa", &[], b"hello?")
            .unwrap()
            .status,
        404
    );

    // Bad Q&A bodies are 400s.
    let trace = trace_bytes("errors");
    let submitted = client::post(addr, "/v1/jobs", &[], &trace).unwrap();
    let id = submitted
        .json()
        .unwrap()
        .get("job")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();
    let done = client::get(addr, &format!("/v1/jobs/{id}?wait_ms=30000")).unwrap();
    assert_eq!(
        done.json().unwrap().get("state").unwrap().as_str(),
        Some("done")
    );
    assert_eq!(
        client::post(addr, &format!("/v1/jobs/{id}/qa"), &[], b"")
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        client::post(
            addr,
            &format!("/v1/jobs/{id}/qa"),
            &[],
            b"{\"not\":\"a question\"}"
        )
        .unwrap()
        .status,
        400
    );

    // Unknown routes and wrong methods are distinct.
    assert_eq!(client::get(addr, "/v1/nope").unwrap().status, 404);
    assert_eq!(
        client::post(addr, "/v1/jobs/x/y/z", &[], b"x")
            .unwrap()
            .status,
        404
    );
    let wrong_method = client::request(addr, "DELETE", "/v1/jobs", &[], &[]).unwrap();
    assert_eq!(wrong_method.status, 405);

    drop(daemon);
    let _ = std::fs::remove_dir_all(root);
}
