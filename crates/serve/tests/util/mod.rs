//! Shared helpers for the daemon integration tests: synthetic traces, a
//! gate-controlled model for deterministic concurrency handshakes, and
//! temp-store plumbing. No sleeps anywhere — tests coordinate through
//! gates, condvars and monotonic counters.
//!
//! Not every test binary uses every helper.
#![allow(dead_code)]

use darshan::log::LogWriter;
use ion_llm::{DeterministicExpert, LanguageModel, ModelAction, Thread};
use iosim::{SimConfig, Simulation};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// The global obs sink is process-wide; tests in one binary serialize.
pub static SINK: Mutex<()> = Mutex::new(());

pub fn obs_guard() -> std::sync::MutexGuard<'static, ()> {
    let guard = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    ion_obs::reset();
    guard
}

/// A small but analyzable synthetic trace; `tag` varies the content so
/// different jobs carry different digests.
pub fn trace_bytes(tag: &str) -> Vec<u8> {
    let mut sim = Simulation::new(SimConfig::default().with_ranks(2).with_exe(tag));
    let f = sim.posix_open_all("/scratch/serve.dat").unwrap();
    for i in 0..16u64 {
        for rank in 0..2u32 {
            let base = u64::from(rank) * (4 << 20);
            sim.posix_write(rank, f, base + i * 1024, 1024).unwrap();
        }
    }
    sim.posix_close_all(f);
    LogWriter::from_log(sim.finish()).finish().unwrap()
}

pub fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ion-serve-test-{tag}-{}-{}",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-"),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A latch the test opens once its handshake condition is met.
#[derive(Clone, Default)]
pub struct Gate(Arc<(Mutex<bool>, Condvar)>);

impl Gate {
    pub fn new() -> Gate {
        Gate::default()
    }

    pub fn open(&self) {
        let (flag, cv) = &*self.0;
        *flag.lock().unwrap_or_else(PoisonError::into_inner) = true;
        cv.notify_all();
    }

    pub fn wait(&self) {
        let (flag, cv) = &*self.0;
        let mut open = flag.lock().unwrap_or_else(PoisonError::into_inner);
        while !*open {
            open = cv.wait(open).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// [`DeterministicExpert`] behind a [`Gate`]: every model step blocks
/// until the test opens the gate, and `steps` counts invocations — the
/// barrier-handshake alternative to sleeping.
pub struct GatedModel {
    inner: DeterministicExpert,
    pub gate: Gate,
    pub steps: AtomicU64,
}

impl GatedModel {
    pub fn new(gate: Gate) -> Arc<GatedModel> {
        Arc::new(GatedModel {
            inner: DeterministicExpert::new(),
            gate,
            steps: AtomicU64::new(0),
        })
    }

    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::SeqCst)
    }
}

impl LanguageModel for GatedModel {
    fn step(&self, thread: &Thread) -> ModelAction {
        self.steps.fetch_add(1, Ordering::SeqCst);
        self.gate.wait();
        self.inner.step(thread)
    }

    fn model_id(&self) -> &str {
        "gated-expert-v1"
    }
}

/// Spin (yielding, no sleep) until `cond` holds; panics after ~30s so a
/// broken handshake fails loudly instead of hanging CI.
pub fn spin_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !cond() {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for: {what}"
        );
        std::thread::yield_now();
    }
}
