//! Request-scoped tracing through the daemon: per-job span trees with
//! zero cross-attribution under concurrency, the `/v1/jobs/{id}/trace`
//! endpoint, the Chrome export round-trip, tenant-labeled metrics on
//! `/metrics`, event-stream filters, `/version`, and the slow-job log.

mod util;

use ion_llm::DeterministicExpert;
use ion_serve::{client, Daemon, ServeConfig};
use ion_store::Store;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;
use util::{obs_guard, spin_until, tmp_dir, trace_bytes, Gate, GatedModel};

/// A trace whose extracted tables differ per `writes`/`size` shape — two
/// of these with different shapes share no store singleflight keys, so
/// both jobs genuinely run the model (unlike same-content traces, where
/// the second job would join the first's in-flight issue computation).
fn distinct_trace(tag: &str, writes: u64, size: u64) -> Vec<u8> {
    use darshan::log::LogWriter;
    use iosim::{SimConfig, Simulation};
    let mut sim = Simulation::new(SimConfig::default().with_ranks(2).with_exe(tag));
    let f = sim.posix_open_all("/scratch/tracing.dat").unwrap();
    for i in 0..writes {
        for rank in 0..2u32 {
            let base = u64::from(rank) * (4 << 20);
            sim.posix_write(rank, f, base + i * size, size).unwrap();
        }
    }
    sim.posix_close_all(f);
    LogWriter::from_log(sim.finish()).finish().unwrap()
}

/// Opens the gate when dropped, so a failing assertion can't leave the
/// daemon's workers parked behind the model gate during `Daemon::drop`.
struct OpenOnDrop(Gate);

impl Drop for OpenOnDrop {
    fn drop(&mut self) {
        self.0.open();
    }
}

/// Submit `body` for `tenant` and return the job id.
fn submit(addr: std::net::SocketAddr, tenant: &str, body: &[u8]) -> String {
    let reply = client::post(addr, "/v1/jobs", &[("X-Ion-Tenant", tenant)], body).unwrap();
    assert_eq!(reply.status, 202, "{}", reply.text());
    reply
        .json()
        .unwrap()
        .get("job")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned()
}

/// Wait for a terminal state and assert it is `done`.
fn wait_done(addr: std::net::SocketAddr, id: &str) {
    let status = client::get(addr, &format!("/v1/jobs/{id}?wait_ms=30000")).unwrap();
    let doc = status.json().unwrap();
    assert_eq!(
        doc.get("state").unwrap().as_str(),
        Some("done"),
        "{}",
        status.text()
    );
}

#[test]
fn concurrent_tenants_get_disjoint_span_trees_and_chrome_roundtrip() {
    let _sink = obs_guard();
    let root = tmp_dir("tracing-disjoint");
    let store = Arc::new(Store::open(&root).unwrap());
    let gate = Gate::new();
    let _open_guard = OpenOnDrop(gate.clone());
    let model = GatedModel::new(gate.clone());
    let daemon = Daemon::bind_with_model(
        "127.0.0.1:0",
        store,
        Arc::clone(&model) as _,
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();

    // Two different tenants, two structurally different traces submitted
    // together; the gated model holds both analyses in flight
    // simultaneously so their spans interleave in the global store.
    let id_a = submit(addr, "acme", &distinct_trace("tenant-a", 16, 1024));
    let id_b = submit(addr, "bravo", &distinct_trace("tenant-b", 24, 2048));
    spin_until("both jobs reach the model concurrently", || {
        model.steps() >= 2
    });
    gate.open();
    wait_done(addr, &id_a);
    wait_done(addr, &id_b);

    let mut seen = Vec::new();
    for (id, tenant) in [(&id_a, "acme"), (&id_b, "bravo")] {
        let reply = client::get(addr, &format!("/v1/jobs/{id}/trace")).unwrap();
        assert_eq!(reply.status, 200, "{}", reply.text());
        let doc = reply.json().unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("ion-trace/1"));
        assert_eq!(doc.get("job").unwrap().as_str(), Some(id.as_str()));
        assert_eq!(doc.get("tenant").unwrap().as_str(), Some(tenant));
        assert_eq!(doc.get("state").unwrap().as_str(), Some("done"));
        let trace_id = doc.get("trace").unwrap().as_u64().unwrap();
        assert_ne!(trace_id, 0);

        let spans = ion_obs::trace::parse_spans(&doc).expect("spans array");
        assert!(!spans.is_empty(), "a finished job must have spans");
        // Zero cross-attribution: every span in this tree carries this
        // job's trace id — counter-exact, not a sample.
        let foreign = spans.iter().filter(|s| s.trace != trace_id).count();
        assert_eq!(foreign, 0, "{foreign} foreign spans in job {id}");
        // The tree is rooted at the trace: at least one root span, and
        // every parent reference stays inside the tree.
        let ids: HashSet<u64> = spans.iter().map(|s| s.id.0).collect();
        assert_eq!(ids.len(), spans.len(), "span ids must be unique");
        assert!(
            spans.iter().any(|s| s.parent.is_none()),
            "tree needs a root"
        );
        for span in &spans {
            if let Some(parent) = span.parent {
                assert!(ids.contains(&parent.0), "dangling parent {parent:?}");
            }
        }
        // LLM attribution flows into the envelope.
        let tokens_in = doc
            .get("llm")
            .and_then(|l| l.get("tokens_in"))
            .and_then(ion_obs::json::Json::as_u64)
            .unwrap();
        assert!(tokens_in > 0, "the model ran, so tokens_in must be > 0");
        assert!(
            doc.get("stages")
                .and_then(|s| s.get("store.pipeline"))
                .is_some(),
            "stage rollup must include the driver's pipeline span"
        );

        // Chrome export round-trips through the JSON parser with one
        // event per span, all in this job's pid (= trace id) group.
        let chrome = ion_obs::trace::chrome_trace(&spans);
        let chrome_doc = ion_obs::json::parse(&chrome).expect("chrome JSON parses");
        let events = match chrome_doc.get("traceEvents") {
            Some(ion_obs::json::Json::Arr(events)) => events,
            other => panic!("traceEvents must be an array, got {other:?}"),
        };
        assert_eq!(events.len(), spans.len());
        for event in events {
            assert_eq!(event.get("ph").unwrap().as_str(), Some("X"));
            #[allow(clippy::cast_precision_loss)]
            let want = trace_id as f64;
            assert_eq!(event.get("pid").unwrap().as_f64(), Some(want));
        }

        seen.push((trace_id, ids));
    }

    // The two trees are fully disjoint: different trace ids, no shared
    // span ids.
    let (trace_a, ids_a) = &seen[0];
    let (trace_b, ids_b) = &seen[1];
    assert_ne!(trace_a, trace_b, "each job mints its own trace");
    assert!(
        ids_a.is_disjoint(ids_b),
        "span trees must not share span ids"
    );

    drop(daemon);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn metrics_expose_tenant_labels_and_version_route_answers() {
    let _sink = obs_guard();
    let root = tmp_dir("tracing-labels");
    let store = Arc::new(Store::open(&root).unwrap());
    let daemon = Daemon::bind_with_model(
        "127.0.0.1:0",
        store,
        Arc::new(DeterministicExpert::new()) as _,
        ServeConfig::default(),
    )
    .unwrap();
    let addr = daemon.local_addr();

    for tenant in ["acme", "bravo"] {
        let id = submit(addr, tenant, &trace_bytes(&format!("labels-{tenant}")));
        wait_done(addr, &id);
    }

    // Live multi-tenant load must surface tenant-labeled series next to
    // the unlabeled family on the Prometheus surface.
    let metrics = client::get(addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    for tenant in ["acme", "bravo"] {
        assert!(
            text.contains(&format!("serve_jobs_submitted{{tenant=\"{tenant}\"}} 1")),
            "missing labeled submit counter for {tenant}: {text}"
        );
        assert!(
            text.contains(&format!("serve_jobs_done{{tenant=\"{tenant}\"}} 1")),
            "missing labeled done counter for {tenant}: {text}"
        );
        assert!(
            text.contains(&format!("serve_job_run_ns_count{{tenant=\"{tenant}\"}} 1")),
            "missing labeled run histogram for {tenant}: {text}"
        );
    }
    assert!(text.contains("serve_jobs_submitted 2"), "{text}");

    // `/version` rides the shared router.
    let version = client::get(addr, "/version").unwrap();
    assert_eq!(version.status, 200);
    let doc = version.json().unwrap();
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("ion-obs/version/1")
    );
    assert_eq!(
        doc.get("version").unwrap().as_str(),
        Some(env!("CARGO_PKG_VERSION"))
    );
    let profile = doc.get("profile").unwrap().as_str().unwrap();
    assert!(profile == "debug" || profile == "release");

    drop(daemon);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn event_filters_narrow_by_tenant_and_trace() {
    let _sink = obs_guard();
    let root = tmp_dir("tracing-filters");
    let store = Arc::new(Store::open(&root).unwrap());
    let daemon = Daemon::bind_with_model(
        "127.0.0.1:0",
        store,
        Arc::new(DeterministicExpert::new()) as _,
        ServeConfig::default(),
    )
    .unwrap();
    let addr = daemon.local_addr();

    let id_a = submit(addr, "acme", &trace_bytes("filter-a"));
    let id_b = submit(addr, "bravo", &trace_bytes("filter-b"));
    wait_done(addr, &id_a);
    wait_done(addr, &id_b);
    let status = client::get(addr, &format!("/v1/jobs/{id_b}")).unwrap();
    let trace_b = status
        .json()
        .unwrap()
        .get("trace")
        .unwrap()
        .as_u64()
        .unwrap();

    // `?tenant=` keeps only lines stamped with that tenant.
    let filtered = client::get(addr, "/v1/events?tenant=acme").unwrap();
    assert_eq!(filtered.status, 200);
    let body = filtered.text();
    let mut body_lines = body.lines();
    let header = body_lines.next().unwrap();
    assert!(header.contains("\"kind\":\"events\""), "{header}");
    let mut saw_acme = false;
    for line in body_lines {
        let doc = ion_obs::json::parse(line).unwrap();
        let tenant = doc
            .get("fields")
            .and_then(|f| f.get("tenant"))
            .and_then(ion_obs::json::Json::as_str)
            .map(str::to_owned);
        assert_eq!(tenant.as_deref(), Some("acme"), "{line}");
        saw_acme = true;
    }
    assert!(saw_acme, "acme submitted a job, so lines must match");

    // `?trace=` follows one job through the stream: every line carries
    // job B's trace id and no line mentions job A.
    let filtered = client::get(addr, &format!("/v1/events?trace={trace_b}")).unwrap();
    let text = filtered.text();
    let mut saw_trace = false;
    for line in text.lines().skip(1) {
        let doc = ion_obs::json::parse(line).unwrap();
        let trace = doc
            .get("fields")
            .and_then(|f| f.get("trace"))
            .and_then(ion_obs::json::Json::as_u64);
        assert_eq!(trace, Some(trace_b), "{line}");
        assert!(!line.contains(&format!("\"{id_a}\"")), "{line}");
        saw_trace = true;
    }
    assert!(saw_trace, "job B ran under its trace, so lines must match");

    drop(daemon);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn slow_job_threshold_logs_stage_breakdown() {
    let _sink = obs_guard();
    let root = tmp_dir("tracing-slow");
    let store = Arc::new(Store::open(&root).unwrap());
    let daemon = Daemon::bind_with_model(
        "127.0.0.1:0",
        store,
        Arc::new(DeterministicExpert::new()) as _,
        ServeConfig {
            // Zero threshold: every finished job counts as slow, making
            // the log deterministic without sleeping.
            slow_job_threshold: Some(Duration::ZERO),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();

    let id = submit(addr, "acme", &trace_bytes("slow"));
    wait_done(addr, &id);

    let events = client::get(addr, "/v1/events").unwrap();
    let text = events.text();
    let slow_line = text
        .lines()
        .find(|l| l.contains("serve.job.slow"))
        .unwrap_or_else(|| panic!("no slow-job event in: {text}"));
    let doc = ion_obs::json::parse(slow_line).unwrap();
    let fields = doc.get("fields").unwrap();
    assert_eq!(
        fields.get("tenant").and_then(ion_obs::json::Json::as_str),
        Some("acme")
    );
    let stages = fields
        .get("stages")
        .and_then(ion_obs::json::Json::as_str)
        .unwrap();
    assert!(
        stages.contains("pipeline="),
        "breakdown must name the pipeline stage: {stages}"
    );

    let metrics = client::get(addr, "/metrics").unwrap();
    let text = metrics.text();
    assert!(text.contains("serve_jobs_slow 1"), "{text}");
    assert!(
        text.contains("serve_jobs_slow{tenant=\"acme\"} 1"),
        "{text}"
    );

    drop(daemon);
    let _ = std::fs::remove_dir_all(root);
}
