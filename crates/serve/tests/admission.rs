//! Admission control, fair scheduling and graceful shutdown:
//!
//! - a saturating tenant hits its per-tenant cap (429 + `Retry-After`)
//!   while a light tenant is still admitted;
//! - the global budget backstops everything (429 `queue full`);
//! - deficit-round-robin lets the light tenant's job finish before the
//!   heavy tenant's backlog;
//! - shutdown mid-queue drains to `cancelled`, 503s new submissions,
//!   and `/metrics` proves no worker panicked.
//!
//! Coordination is entirely gate handshakes and HTTP polling — no sleeps.

mod util;

use ion_serve::{client, Daemon, JobState, ServeConfig};
use ion_store::Store;
use std::sync::Arc;
use util::{obs_guard, spin_until, tmp_dir, trace_bytes, Gate, GatedModel};

fn submit(addr: std::net::SocketAddr, tenant: &str, trace: &[u8]) -> client::Reply {
    client::post(addr, "/v1/jobs", &[("X-Ion-Tenant", tenant)], trace).unwrap()
}

fn job_id(reply: &client::Reply) -> String {
    reply
        .json()
        .unwrap()
        .get("job")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned()
}

fn state_of(addr: std::net::SocketAddr, id: &str) -> String {
    client::get(addr, &format!("/v1/jobs/{id}"))
        .unwrap()
        .json()
        .unwrap()
        .get("state")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned()
}

#[test]
fn saturating_tenant_is_throttled_and_shutdown_drains_cleanly() {
    let _sink = obs_guard();
    let root = tmp_dir("admission");
    let store = Arc::new(Store::open(&root).unwrap());
    let gate = Gate::new();
    let model: Arc<dyn ion_llm::LanguageModel> = GatedModel::new(gate.clone());
    let daemon = Daemon::bind_with_model(
        "127.0.0.1:0",
        store,
        model,
        ServeConfig {
            workers: 1,
            queue_budget: 3,
            tenant_budget: 2,
            dedup: false,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();

    // Block the single worker on a first job so the queue backs up.
    let blocker = submit(addr, "heavy", &trace_bytes("blocker"));
    assert_eq!(blocker.status, 202);
    let blocker_id = job_id(&blocker);
    spin_until("blocker running", || {
        state_of(addr, &blocker_id) == "running"
    });

    // Heavy saturates its own budget (the running job no longer counts).
    let h1 = submit(addr, "heavy", &trace_bytes("h1"));
    let h2 = submit(addr, "heavy", &trace_bytes("h2"));
    assert_eq!(h1.status, 202);
    assert_eq!(h2.status, 202);
    let over = submit(addr, "heavy", &trace_bytes("h3"));
    assert_eq!(over.status, 429, "{}", over.text());
    assert_eq!(over.header("Retry-After"), Some("2"));
    assert!(over.text().contains("tenant"), "{}", over.text());

    // A light tenant still gets in — the whole point of per-tenant caps.
    let light = submit(addr, "light", &trace_bytes("l1"));
    assert_eq!(light.status, 202, "{}", light.text());
    let light_id = job_id(&light);

    // Now the global budget is exhausted for everyone.
    let global_over = submit(addr, "light", &trace_bytes("l2"));
    assert_eq!(global_over.status, 429, "{}", global_over.text());
    assert!(
        global_over.text().contains("queue full"),
        "{}",
        global_over.text()
    );
    assert_eq!(global_over.header("Retry-After"), Some("1"));

    // Fairness: open the gate and let the backlog drain. DRR alternates
    // heavy/light, so the light job must finish before heavy's last job.
    let h1_id = job_id(&h1);
    let h2_id = job_id(&h2);
    gate.open();
    for id in [&blocker_id, &h1_id, &h2_id, &light_id] {
        spin_until("backlog drained", || {
            state_of(addr, id) == JobState::Done.as_str()
        });
    }
    let events = client::get(addr, "/v1/events").unwrap().text();
    let finish_pos = |id: &str| {
        events
            .lines()
            .position(|line| line.contains("serve.finish") && line.contains(&format!("\"{id}\"")))
            .unwrap_or_else(|| panic!("no finish event for {id} in:\n{events}"))
    };
    assert!(
        finish_pos(&light_id) < finish_pos(&h2_id),
        "light tenant must not wait out heavy's whole backlog:\n{events}"
    );

    // Refill the queue, then shut down mid-queue: everything still queued
    // drains to `cancelled`, new submissions get 503.
    let q1 = submit(addr, "heavy", &trace_bytes("q1"));
    assert_eq!(q1.status, 202);
    let q2 = submit(addr, "heavy", &trace_bytes("q2"));
    assert_eq!(q2.status, 202);
    // Worker panics are provably zero before we stop serving.
    let metrics = client::get(addr, "/metrics").unwrap().text();
    assert!(metrics.contains("ion_serve_worker_panics 0"), "{metrics}");

    let shutdown = std::thread::spawn(move || daemon.shutdown());
    spin_until("daemon draining", || {
        client::get(addr, "/healthz").map_or(true, |r| r.status == 503)
    });
    if let Ok(refused) = client::post(
        addr,
        "/v1/jobs",
        &[("X-Ion-Tenant", "light")],
        &trace_bytes("late"),
    ) {
        assert_eq!(refused.status, 503, "{}", refused.text());
    }
    let summary = shutdown.join().expect("shutdown must not panic");

    // q1/q2 either were cancelled out of the queue or (if the worker
    // raced the drain) ran to completion; nothing may be lost or stuck.
    assert!(summary.cancelled_queued <= 2);
    assert_eq!(
        summary.done + summary.cancelled,
        6,
        "4 finished + 2 drained-or-finished: {summary:?}"
    );
    assert!(summary.failed == 0 && summary.deadlined == 0, "{summary:?}");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn queued_jobs_cancelled_by_drain_report_cancelled_state() {
    let _sink = obs_guard();
    let root = tmp_dir("drain-state");
    let store = Arc::new(Store::open(&root).unwrap());
    let gate = Gate::new();
    let model: Arc<dyn ion_llm::LanguageModel> = GatedModel::new(gate.clone());
    let daemon = Daemon::bind_with_model(
        "127.0.0.1:0",
        store,
        model,
        ServeConfig {
            workers: 1,
            dedup: false,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();

    let blocker = submit(addr, "t", &trace_bytes("drain-blocker"));
    let blocker_id = job_id(&blocker);
    spin_until("blocker running", || {
        state_of(addr, &blocker_id) == "running"
    });
    let queued = submit(addr, "t", &trace_bytes("drain-queued"));
    let queued_id = job_id(&queued);
    assert_eq!(state_of(addr, &queued_id), "queued");

    // Drain while one job runs and one sits queued. The queued one must
    // come back `cancelled`; its report is a 409, not a hang or a panic.
    let poller = {
        let queued_id = queued_id.clone();
        std::thread::spawn(move || {
            // Long-poll across the drain: the cancellation must wake us.
            client::get(addr, &format!("/v1/jobs/{queued_id}?wait_ms=30000")).unwrap()
        })
    };
    let shutdown = std::thread::spawn(move || daemon.shutdown());
    spin_until("draining", || {
        client::get(addr, "/healthz").map_or(true, |r| r.status == 503)
    });
    gate.open();
    let polled = poller.join().unwrap();
    let doc = polled.json().unwrap();
    assert_eq!(
        doc.get("state").unwrap().as_str(),
        Some("cancelled"),
        "{}",
        polled.text()
    );
    assert!(doc
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("draining"));
    let summary = shutdown.join().expect("shutdown must not panic");
    assert_eq!(summary.cancelled_queued, 1);
    assert_eq!(summary.done, 1);
    let _ = std::fs::remove_dir_all(root);
}
