//! Property-based tests for the store's keying primitives: dependency
//! digests must ignore what the pipeline is allowed to vary (row order
//! from parallel extraction) and notice everything else (any visible
//! byte of a context, any byte of an artifact).

use extractor::{Table, Value};
use ion::context::ContextRevision;
use ion_store::codec::table_digest;
use ion_store::digest::{digest_bytes, UnorderedDigest};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        (-1e15f64..1e15).prop_map(Value::Float),
        "[a-zA-Z][a-zA-Z0-9 /._-]{0,16}".prop_map(|s: String| Value::Str(s.into())),
        Just(Value::Null),
    ]
}

fn arb_rows() -> impl Strategy<Value = Vec<Vec<Value>>> {
    (1usize..5).prop_flat_map(|ncols| {
        proptest::collection::vec(proptest::collection::vec(arb_value(), ncols), 0..12)
    })
}

fn table_from(rows: &[Vec<Value>]) -> Table {
    let ncols = rows.first().map_or(1, Vec::len);
    let cols: Vec<String> = (0..ncols).map(|i| format!("col{i}")).collect();
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut t = Table::new("T", &col_refs);
    for row in rows {
        t.push_row(row.clone());
    }
    t
}

proptest! {
    // Parallel extraction may materialize rows in any order; the table
    // digest must not care. Rotations and reversals cover arbitrary
    // permutations (they generate the symmetric group).
    #[test]
    fn table_digest_ignores_row_order(rows in arb_rows(), rot in 0usize..12) {
        let base = table_digest(&table_from(&rows));
        let mut reversed = rows.clone();
        reversed.reverse();
        prop_assert_eq!(table_digest(&table_from(&reversed)), base);
        if !rows.is_empty() {
            let mut rotated = rows.clone();
            rotated.rotate_left(rot % rows.len());
            prop_assert_eq!(table_digest(&table_from(&rotated)), base);
        }
    }

    // Dropping a row always changes the digest (multiplicity matters:
    // a missing duplicate is a different table).
    #[test]
    fn table_digest_sees_a_dropped_row(
        first in proptest::collection::vec(arb_value(), 1..5),
        rest in arb_rows(),
        at in 0usize..12,
    ) {
        // At least one row, all the same width as `first`.
        let mut rows = vec![first.clone()];
        rows.extend(
            rest.into_iter()
                .map(|r| (0..first.len()).map(|i| r.get(i).cloned().unwrap_or(Value::Null)).collect()),
        );
        let base = table_digest(&table_from(&rows));
        let mut fewer = rows.clone();
        fewer.remove(at % rows.len());
        prop_assert_ne!(table_digest(&table_from(&fewer)), base);
    }

    // Any visible insertion into a context text changes its revision —
    // this is what invalidates exactly the edited issue's analyses.
    #[test]
    fn context_revision_sees_any_visible_edit(
        text in "[ -~\n]{0,120}",
        at in 0usize..121,
        ch in 0u8..26,
    ) {
        let mut edited = text.clone();
        edited.insert(at.min(text.len()), (b'a' + ch) as char);
        prop_assert_ne!(ContextRevision::of(&edited), ContextRevision::of(&text));
    }

    // Cosmetic whitespace (trailing spaces, CRLF, surrounding blank
    // lines) never changes a revision: formatting a context file must
    // not invalidate its cached analyses.
    #[test]
    fn context_revision_ignores_cosmetic_whitespace(
        lines in proptest::collection::vec("[ -~]{0,24}", 1..6),
        pad in 0usize..3,
    ) {
        let clean = lines.join("\n");
        let messy = format!(
            "{}{}{}",
            "\n".repeat(pad),
            lines.iter().map(|l| format!("{l}   \r\n")).collect::<String>(),
            "\n".repeat(pad)
        );
        prop_assert_eq!(ContextRevision::of(&messy), ContextRevision::of(&clean));
    }

    // Content addressing: flipping any byte of an artifact changes its
    // object digest.
    #[test]
    fn byte_flip_changes_digest(bytes in proptest::collection::vec(any::<u8>(), 1..256),
                                at in 0usize..256, bit in 0u8..8) {
        let mut flipped = bytes.clone();
        let i = at % bytes.len();
        flipped[i] ^= 1 << bit;
        prop_assert_ne!(digest_bytes(&flipped), digest_bytes(&bytes));
    }

    // The unordered fold is insensitive to absorption order and to how
    // items are split across worker-local accumulators.
    #[test]
    fn unordered_fold_is_order_and_split_insensitive(
        items in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 0..12),
        split in 0usize..12,
    ) {
        let mut forward = UnorderedDigest::new();
        for item in &items {
            forward.absorb(item);
        }
        let mut backward = UnorderedDigest::new();
        for item in items.iter().rev() {
            backward.absorb(item);
        }
        prop_assert_eq!(forward.finish(), backward.finish());

        let cut = split.min(items.len());
        let mut left = UnorderedDigest::new();
        for item in &items[..cut] {
            left.absorb(item);
        }
        let mut right = UnorderedDigest::new();
        for item in &items[cut..] {
            right.absorb(item);
        }
        left.merge(&right);
        prop_assert_eq!(left.finish(), forward.finish());
    }
}
