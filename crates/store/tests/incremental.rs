//! Acceptance tests for incremental re-analysis, proven from `ion-obs`
//! metrics alone: a warm store performs zero model runs and zero
//! extractions; a cosmetic context edit (whitespace, or an edit to a
//! rule template that never fired) is *backdated* — still zero model
//! runs; only a substantive edit to consulted knowledge goes *red*, and
//! re-runs exactly the one issue that consulted it.

use darshan::log::LogWriter;
use ion::context::builtin_contexts;
use ion::pipeline::IonPipeline;
use ion_store::{Store, StoredPipeline};
use iosim::{SimConfig, Simulation};
use std::sync::Arc;

/// The global obs sink is process-wide; tests in this binary serialize.
/// (The schema-bump test also mutates process environment under this
/// same lock — every driver run in this file happens while holding it.)
static SINK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn obs_guard() -> std::sync::MutexGuard<'static, ()> {
    SINK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn trace_bytes() -> Vec<u8> {
    let mut sim = Simulation::new(SimConfig::default().with_ranks(2).with_exe("incr"));
    let f = sim.posix_open_all("/scratch/incr.dat").unwrap();
    for i in 0..32u64 {
        for rank in 0..2u32 {
            let base = u64::from(rank) * (8 << 20);
            sim.posix_write(rank, f, base + i * 2048, 2048).unwrap();
        }
    }
    sim.posix_close_all(f);
    LogWriter::from_log(sim.finish()).finish().unwrap()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ion-incr-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Metrics over one closure with a clean, enabled sink.
fn counted<T>(f: impl FnOnce() -> T) -> (T, ion_obs::render::Snapshot) {
    ion_obs::reset();
    ion_obs::enable();
    let value = f();
    let snap = ion_obs::snapshot();
    ion_obs::disable();
    ion_obs::reset();
    (value, snap)
}

#[test]
fn warm_reanalysis_performs_zero_model_runs_and_zero_extractions() {
    let _sink = obs_guard();
    let bytes = trace_bytes();
    let root = tmp_dir("warm");
    let store = Arc::new(Store::open(&root).unwrap());
    let driver = StoredPipeline::new(Arc::clone(&store));

    let (cold, cold_snap) = counted(|| driver.analyze_bytes(&bytes).unwrap());
    let issues = cold.diagnoses.len() as u64;
    assert!(issues > 0, "trace should exercise at least one context");
    // Cold: one model run per applicable issue plus the summary, and
    // exactly one extraction.
    assert_eq!(cold_snap.counter("llm.runs"), issues + 1);
    assert_eq!(cold_snap.counter("extract.runs"), 1);
    assert_eq!(cold_snap.counter("store.recompute.trace"), 1);
    assert_eq!(cold_snap.counter("store.recompute.issue"), issues);
    assert_eq!(cold_snap.counter("store.recompute.summary"), 1);

    let (warm, warm_snap) = counted(|| driver.analyze_bytes(&bytes).unwrap());
    assert_eq!(warm, cold);
    // Warm: every stage is a cache hit — the acceptance criterion.
    assert_eq!(
        warm_snap.counter("llm.runs"),
        0,
        "warm run must perform zero model runs:\n{}",
        warm_snap.render_profile()
    );
    assert_eq!(
        warm_snap.counter("extract.runs"),
        0,
        "warm run must perform zero extractions:\n{}",
        warm_snap.render_profile()
    );
    assert_eq!(warm_snap.counter("store.miss"), 0);
    // Trace meta + per-issue (memo + diagnosis) + summary, all from
    // cache — table rows are never even decoded on a green re-serve.
    assert_eq!(warm_snap.counter("store.hit"), 2 * issues + 2);
    // Every issue revalidated green; nothing was backdated or re-run.
    assert_eq!(warm_snap.counter("store.revalidate.green"), issues);
    assert_eq!(warm_snap.counter("store.revalidate.backdated"), 0);
    assert_eq!(warm_snap.counter("store.revalidate.red"), 0);

    let _ = std::fs::remove_dir_all(root);
}

/// One cold run plus one run with a single context edited via `edit`.
/// Returns the cold report, the edited-run report, the edited-run
/// metrics, the edited issue id and the pre-edit revision.
fn run_with_edited_context(
    tag: &str,
    pick: impl Fn(&ion::pipeline::IonReport) -> String,
    edit: impl Fn(&mut String),
) -> (
    ion::pipeline::IonReport,
    ion::pipeline::IonReport,
    ion_obs::render::Snapshot,
    String,
    ion::context::ContextRevision,
) {
    let bytes = trace_bytes();
    let root = tmp_dir(tag);
    let store = Arc::new(Store::open(&root).unwrap());

    let driver = StoredPipeline::new(Arc::clone(&store));
    let (cold, _) = counted(|| driver.analyze_bytes(&bytes).unwrap());
    assert!(
        cold.diagnoses.len() > 1,
        "need several issues to show selective invalidation"
    );
    let edited_id = pick(&cold);

    let mut contexts = builtin_contexts();
    let target = contexts
        .iter_mut()
        .find(|c| c.id == edited_id)
        .expect("diagnosed issue comes from a builtin context");
    let old_revision = target.revision();
    edit(&mut target.text);
    assert_ne!(
        target.revision(),
        old_revision,
        "a visible edit must change the revision"
    );

    let edited_driver = StoredPipeline::new(Arc::clone(&store))
        .with_pipeline(IonPipeline::new().with_contexts(contexts));
    let (edited, snap) = counted(|| edited_driver.analyze_bytes(&bytes).unwrap());
    let _ = std::fs::remove_dir_all(root);
    (cold, edited, snap, edited_id, old_revision)
}

#[test]
fn whitespace_edit_is_backdated_with_zero_model_runs() {
    let _sink = obs_guard();
    // Indent one line of one context: the context bytes (and so its
    // coarse revision) change, but every knowledge *statement* is
    // whitespace-normalized, so each consulted statement revalidates
    // equal. The old diagnosis is backdated under the new revision —
    // zero model runs, end to end.
    let (cold, edited, snap, edited_id, old_revision) = run_with_edited_context(
        "edit-inert",
        |cold| cold.diagnoses[0].issue.clone(),
        |text| {
            *text = text.replacen("ISSUE:", "  ISSUE:", 1);
        },
    );

    let issues = cold.diagnoses.len() as u64;
    assert_eq!(
        snap.counter("llm.runs"),
        0,
        "a whitespace edit must not re-run any model:\n{}",
        snap.render_profile()
    );
    assert_eq!(snap.counter("extract.runs"), 0);
    assert_eq!(snap.counter("store.recompute.issue"), 0);
    assert_eq!(snap.counter("store.recompute.summary"), 0);
    assert_eq!(snap.counter("store.miss"), 0);
    assert_eq!(snap.counter("store.revalidate.backdated"), 1);
    assert_eq!(snap.counter("store.revalidate.green"), issues - 1);
    assert_eq!(snap.counter("store.revalidate.red"), 0);

    // The report is what a fresh run would produce: the edited issue
    // carries the *new* revision over unchanged diagnosis content, and
    // every untouched context kept its cached revision.
    let re = edited.diagnosis(&edited_id).unwrap();
    assert_ne!(re.context_revision, old_revision.hex());
    assert_eq!(re.raw, cold.diagnosis(&edited_id).unwrap().raw);
    for d in &cold.diagnoses {
        if d.issue != edited_id {
            assert_eq!(
                edited.diagnosis(&d.issue).unwrap().context_revision,
                d.context_revision,
                "untouched context {} must keep its revision",
                d.issue
            );
        }
    }
}

#[test]
fn backdated_edit_is_green_on_the_following_run() {
    let _sink = obs_guard();
    // Backdating rebinds the cached diagnosis under the edited context's
    // fingerprint, so analyzing again with the *same* edited contexts is
    // a pure green run — the edit is paid for exactly once.
    let bytes = trace_bytes();
    let root = tmp_dir("backdate-settles");
    let store = Arc::new(Store::open(&root).unwrap());
    let (cold, _) = counted(|| {
        StoredPipeline::new(Arc::clone(&store))
            .analyze_bytes(&bytes)
            .unwrap()
    });
    let issues = cold.diagnoses.len() as u64;

    let mut contexts = builtin_contexts();
    let target = contexts
        .iter_mut()
        .find(|c| c.id == cold.diagnoses[0].issue)
        .unwrap();
    target.text = target.text.replacen("ISSUE:", "  ISSUE:", 1);
    let driver = StoredPipeline::new(Arc::clone(&store))
        .with_pipeline(IonPipeline::new().with_contexts(contexts));

    let (first, first_snap) = counted(|| driver.analyze_bytes(&bytes).unwrap());
    assert_eq!(first_snap.counter("store.revalidate.backdated"), 1);
    let (second, second_snap) = counted(|| driver.analyze_bytes(&bytes).unwrap());
    assert_eq!(second, first);
    assert_eq!(second_snap.counter("llm.runs"), 0);
    assert_eq!(second_snap.counter("store.revalidate.green"), issues);
    assert_eq!(second_snap.counter("store.revalidate.backdated"), 0);
    assert_eq!(second_snap.counter("store.miss"), 0);

    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn editing_an_unfired_rule_template_is_backdated() {
    let _sink = obs_guard();
    // The trace's writes are all 2 KiB, so small-io concludes with
    // small_pct = 100 and its "transfer sizes are healthy" NOTE (guarded
    // by small_pct <= 50) never fires. Its template was never consulted,
    // so rewording it cannot change any completion — the dependency walk
    // proves that and backdates without a model run.
    let (cold, edited, snap, edited_id, _old) = run_with_edited_context(
        "edit-unfired",
        |cold| {
            assert!(cold.diagnosis("small-io").is_some());
            "small-io".to_owned()
        },
        |text| {
            assert!(text.contains("transfer sizes are healthy"));
            *text = text.replace("transfer sizes are healthy", "transfer sizes look good");
        },
    );

    assert_eq!(
        snap.counter("llm.runs"),
        0,
        "an unconsulted template edit must not re-run any model:\n{}",
        snap.render_profile()
    );
    assert_eq!(snap.counter("store.recompute.issue"), 0);
    assert_eq!(snap.counter("store.revalidate.backdated"), 1);
    assert_eq!(snap.counter("store.revalidate.red"), 0);
    assert_eq!(
        edited.diagnosis(&edited_id).unwrap().raw,
        cold.diagnosis(&edited_id).unwrap().raw,
        "the unfired template is invisible in the diagnosis"
    );
}

#[test]
fn substantive_edit_also_refreshes_the_summary_but_nothing_else() {
    let _sink = obs_guard();
    // Append a prose remark: the expert's completion echoes knowledge
    // statements, so the diagnosis text changes — and the summary, whose
    // key is the completion texts, must honestly recompute too. Still
    // zero extractions and every other issue served from cache: editing
    // one statement re-runs exactly the one issue that consults it.
    let (cold, edited, snap, edited_id, _old_revision) = run_with_edited_context(
        "edit-prose",
        |cold| cold.diagnoses[0].issue.clone(),
        |text| {
            text.push_str("\nOperators report this issue most often on weekly runs.\n");
        },
    );

    let issues = cold.diagnoses.len() as u64;
    assert_eq!(
        snap.counter("llm.runs"),
        2,
        "the edited issue and the summary over its new text:\n{}",
        snap.render_profile()
    );
    assert_eq!(snap.counter("extract.runs"), 0);
    assert_eq!(snap.counter("store.recompute.issue"), 1);
    assert_eq!(snap.counter("store.recompute.summary"), 1);
    assert_eq!(snap.counter("store.revalidate.red"), 1);
    assert_eq!(snap.counter("store.revalidate.green"), issues - 1);
    assert_eq!(snap.counter("store.revalidate.backdated"), 0);
    assert_ne!(
        edited.diagnosis(&edited_id).unwrap().raw,
        cold.diagnosis(&edited_id).unwrap().raw,
        "the prose edit is visible in the diagnosis steps"
    );
}

#[test]
fn schema_bump_reextracts_once_but_stays_green_downstream() {
    let _sink = obs_guard();
    // Bumping one module's extraction version re-keys stage 1, so the
    // trace is re-extracted exactly once — but the re-extracted content
    // digests come out equal, so every dependent diagnosis revalidates
    // green through the early cutoff: zero model runs.
    let bytes = trace_bytes();
    let root = tmp_dir("schema-bump");
    let store = Arc::new(Store::open(&root).unwrap());
    let driver = StoredPipeline::new(Arc::clone(&store));
    let (cold, _) = counted(|| driver.analyze_bytes(&bytes).unwrap());
    let issues = cold.diagnoses.len() as u64;

    std::env::set_var(extractor::schema::VERSION_BUMP_ENV, "POSIX=2");
    let (bumped, snap) = counted(|| driver.analyze_bytes(&bytes).unwrap());
    std::env::remove_var(extractor::schema::VERSION_BUMP_ENV);

    assert_eq!(bumped, cold);
    assert_eq!(snap.counter("store.recompute.trace"), 1);
    assert_eq!(snap.counter("extract.runs"), 1);
    assert_eq!(
        snap.counter("llm.runs"),
        0,
        "equal content digests must keep every diagnosis green:\n{}",
        snap.render_profile()
    );
    assert_eq!(snap.counter("store.recompute.issue"), 0);
    assert_eq!(snap.counter("store.revalidate.green"), issues);
    assert_eq!(snap.counter("store.revalidate.red"), 0);

    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn gc_removes_only_artifacts_orphaned_by_rebinding() {
    let _sink = obs_guard();
    let bytes = trace_bytes();
    let root = tmp_dir("gc");
    let store = Arc::new(Store::open(&root).unwrap());
    let driver = StoredPipeline::new(Arc::clone(&store));
    driver.analyze_bytes(&bytes).unwrap();

    // A fully live store: dry-run gc finds nothing to prune.
    let clean = store.gc(true).unwrap();
    assert_eq!(clean.unreferenced, vec![]);
    assert!(clean.live > 0);

    // Rebinding a key (as a re-analysis after an edit would) orphans the
    // old object; gc prunes it and every surviving binding still resolves.
    let (key, _) = store.bindings().into_iter().next().unwrap();
    store.put(&key, b"rebound artifact").unwrap();
    let pruned = store.gc(false).unwrap();
    assert_eq!(pruned.unreferenced.len(), 1);
    // One object orphaned, one new object bound: the live count holds.
    assert_eq!(pruned.live, clean.live);
    for (key, _) in store.bindings() {
        assert!(
            store.get(&key).unwrap().is_some(),
            "binding {key} must survive gc"
        );
    }

    let _ = std::fs::remove_dir_all(root);
}
