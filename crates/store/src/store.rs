//! The store façade: dependency-keyed lookup over an in-memory LRU, the
//! content-addressed object directory and the versioned manifest.
//!
//! Reads check the manifest (authoritative), then the byte-capped LRU,
//! then disk (promoting hits into memory). Writes go to disk first, then
//! the manifest, then memory, so a crash can lose at most a manifest
//! binding — never produce a dangling one pointing at missing bytes
//! (dangling bindings from external deletion are surfaced as misses).
//!
//! Everything is instrumented through `ion-obs`:
//! `store.hit` / `store.miss` / `store.mem_hit` / `store.disk_hit` /
//! `store.put` / `store.evict` counters and a `store.get` span per
//! lookup.

use crate::digest::Digest;
use crate::disk::{Manifest, ObjectDir};
use crate::lru::ByteLru;
use crate::singleflight::{FlightRole, Singleflight};
use crate::StoreError;
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Default in-memory cache capacity (64 MiB).
pub const DEFAULT_MEMORY_CAPACITY: usize = 64 << 20;

/// What `gc` found (and, unless dry-run, deleted).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Objects referenced by the manifest.
    pub live: usize,
    /// Unreferenced object digests (pruned unless dry-run).
    pub unreferenced: Vec<Digest>,
    /// Whether the unreferenced objects were actually deleted.
    pub deleted: bool,
}

/// The manifest plus its persistence bookkeeping, guarded together: a
/// positive `defer_depth` routes binding changes to the `dirty` flag
/// instead of an immediate save (see [`Store::with_deferred_saves`]).
#[derive(Debug)]
struct ManifestState {
    map: Manifest,
    defer_depth: u32,
    dirty: bool,
}

/// A shared, thread-safe artifact store rooted at one directory.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    objects: ObjectDir,
    manifest: Mutex<ManifestState>,
    memory: Mutex<ByteLru>,
    flights: Singleflight<Result<Arc<[u8]>, String>>,
}

/// Panic-safe depth decrement for [`Store::with_deferred_saves`]: if the
/// scope unwinds, the store falls back to save-per-put rather than
/// deferring forever, and any deferred-but-unsaved bindings are
/// persisted best-effort by the next binding change.
struct DeferGuard<'a> {
    store: &'a Store,
}

impl Drop for DeferGuard<'_> {
    fn drop(&mut self) {
        self.store.manifest.lock().defer_depth -= 1;
    }
}

impl Store {
    /// Open (or initialize) the store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, StoreError> {
        Store::open_with_capacity(root, DEFAULT_MEMORY_CAPACITY)
    }

    /// Open with an explicit in-memory byte cap.
    pub fn open_with_capacity(
        root: impl Into<PathBuf>,
        memory_capacity: usize,
    ) -> Result<Store, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| StoreError::Io {
            action: "create store root".into(),
            path: root.display().to_string(),
            message: e.to_string(),
        })?;
        let manifest = Manifest::load(&root)?;
        Ok(Store {
            objects: ObjectDir::new(&root),
            manifest: Mutex::new(ManifestState {
                map: manifest,
                defer_depth: 0,
                dirty: false,
            }),
            memory: Mutex::new(ByteLru::new(memory_capacity)),
            flights: Singleflight::new(),
            root,
        })
    }

    /// Run `f` with manifest persistence deferred: binding changes made
    /// inside the scope (by this or any thread sharing the store) update
    /// the in-memory manifest immediately — readers never see stale
    /// bindings — but the on-disk `MANIFEST` is rewritten once at scope
    /// exit instead of once per `put`. A driver analyzing one trace
    /// touches a dozen keys; batching turns that from a dozen
    /// whole-manifest rewrites into one.
    ///
    /// Durability: a process crash inside the scope loses the scope's
    /// bindings (the objects themselves are already on disk and are
    /// re-bound by recomputation), which widens the documented
    /// crash-loss window from one binding to one scope. Scopes nest;
    /// the save happens when the outermost scope exits.
    pub fn with_deferred_saves<T>(
        &self,
        f: impl FnOnce() -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        self.manifest.lock().defer_depth += 1;
        let guard = DeferGuard { store: self };
        let out = f()?;
        // Flush before the depth drops so save errors surface to the
        // caller; the guard's decrement then finds a clean state. An
        // inner scope (depth still > 1 counting our own increment)
        // leaves the dirty flag for the outermost scope to flush.
        {
            let mut state = self.manifest.lock();
            if state.defer_depth == 1 && state.dirty {
                state.map.save(&self.root)?;
                state.dirty = false;
                ion_obs::counter("store.manifest_save", 1);
            }
        }
        drop(guard);
        Ok(out)
    }

    /// Persist a binding change: immediately, or by marking the state
    /// dirty when inside a [`Store::with_deferred_saves`] scope.
    fn persist_manifest(&self, state: &mut ManifestState) -> Result<(), StoreError> {
        if state.defer_depth > 0 {
            state.dirty = true;
            return Ok(());
        }
        state.map.save(&self.root)?;
        state.dirty = false;
        ion_obs::counter("store.manifest_save", 1);
        Ok(())
    }

    /// Number of callers so far that attached to an already in-flight
    /// identical computation in [`Store::get_or_compute`] (cross-client
    /// singleflight dedup). Monotonic — `ion-serve`'s dedup tests use it
    /// for barrier-style handshakes instead of sleeping, and a daemon can
    /// export it as a sharing-rate signal.
    #[must_use]
    pub fn follower_joins(&self) -> usize {
        self.flights.follower_joins()
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of manifest bindings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.manifest.lock().map.len()
    }

    /// Whether the manifest has no bindings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.manifest.lock().map.is_empty()
    }

    /// Fetch the artifact bound to `key`, if present and readable.
    ///
    /// A manifest binding whose object was deleted externally counts as
    /// a miss (the binding is left for `gc`-style repair by the next
    /// `put`), so the store self-heals rather than erroring.
    pub fn get(&self, key: &str) -> Result<Option<Arc<[u8]>>, StoreError> {
        let mut span = ion_obs::span!("store.get");
        span.attr("key", key);
        let out = self.lookup(key, true);
        if let Ok(found) = &out {
            ion_obs::event!("store.lookup", key = key, hit = found.is_some());
        }
        out
    }

    /// The lookup ladder. `counted` distinguishes a caller-visible
    /// lookup from internal re-checks (the singleflight path), which
    /// must not inflate hit/miss rates.
    fn lookup(&self, key: &str, counted: bool) -> Result<Option<Arc<[u8]>>, StoreError> {
        let tally = |name| {
            if counted {
                ion_obs::counter(name, 1);
            }
        };
        let Some(digest) = self.manifest.lock().map.get(key).copied() else {
            tally("store.miss");
            return Ok(None);
        };
        let mem_key = digest.hex();
        if let Some(bytes) = self.memory.lock().get(&mem_key) {
            tally("store.hit");
            tally("store.mem_hit");
            return Ok(Some(bytes));
        }
        match self.objects.get(&digest)? {
            Some(bytes) => {
                let bytes: Arc<[u8]> = bytes.into();
                self.cache_in_memory(&mem_key, &bytes);
                tally("store.hit");
                tally("store.disk_hit");
                Ok(Some(bytes))
            }
            None => {
                tally("store.miss");
                Ok(None)
            }
        }
    }

    /// Bind `key` to `bytes`: object write, manifest update + save,
    /// memory promotion. Returns the artifact digest.
    pub fn put(&self, key: &str, bytes: &[u8]) -> Result<Digest, StoreError> {
        let digest = self.objects.put(bytes)?;
        {
            let mut state = self.manifest.lock();
            let changed = state.map.insert(key, digest) != Some(digest);
            if changed {
                self.persist_manifest(&mut state)?;
            }
        }
        let arc: Arc<[u8]> = bytes.to_vec().into();
        self.cache_in_memory(&digest.hex(), &arc);
        ion_obs::counter("store.put", 1);
        Ok(digest)
    }

    /// Fetch `key`, or compute, store and return it. Concurrent calls
    /// for the same key share one computation (singleflight).
    pub fn get_or_compute(
        &self,
        key: &str,
        compute: impl FnOnce() -> Result<Vec<u8>, StoreError>,
    ) -> Result<Arc<[u8]>, StoreError> {
        if let Some(hit) = self.get(key)? {
            return Ok(hit);
        }
        let (result, role) = self.flights.run(key, || {
            // Re-check under the flight: a just-finished leader may have
            // populated the store between our miss and our takeoff.
            match self.lookup(key, false) {
                Ok(Some(hit)) => return Ok(hit),
                Ok(None) => {}
                Err(e) => return Err(e.to_string()),
            }
            let bytes = compute().map_err(|e| e.to_string())?;
            let arc: Arc<[u8]> = bytes.into();
            self.put(key, &arc).map_err(|e| e.to_string())?;
            Ok(arc)
        });
        if role == FlightRole::Follower {
            ion_obs::counter("store.singleflight_shared", 1);
        }
        result.map_err(StoreError::Compute)
    }

    /// Remove every manifest binding whose key starts with `prefix`,
    /// returning how many were removed. The objects themselves stay on
    /// disk until the next [`Store::gc`] — this only drops references
    /// (e.g. a spill session releasing its chunk pins).
    pub fn unbind_prefix(&self, prefix: &str) -> Result<usize, StoreError> {
        let mut state = self.manifest.lock();
        let doomed: Vec<String> = state
            .map
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.to_owned())
            .collect();
        for key in &doomed {
            state.map.remove(key);
        }
        if !doomed.is_empty() {
            self.persist_manifest(&mut state)?;
        }
        Ok(doomed.len())
    }

    /// Bind `key` to an object that already exists in the object dir,
    /// without re-writing bytes or promoting anything into memory (spill
    /// pins reference chunks that were paged out precisely because
    /// memory is tight).
    pub(crate) fn bind(&self, key: &str, digest: Digest) -> Result<(), StoreError> {
        let mut state = self.manifest.lock();
        let changed = state.map.insert(key, digest) != Some(digest);
        if changed {
            self.persist_manifest(&mut state)?;
        }
        Ok(())
    }

    /// Prune objects not referenced by the manifest. With `dry_run` the
    /// report lists what *would* be deleted and nothing is touched.
    pub fn gc(&self, dry_run: bool) -> Result<GcReport, StoreError> {
        let _span = ion_obs::span!("store.gc");
        let referenced = self.manifest.lock().map.referenced();
        let mut report = GcReport {
            live: 0,
            unreferenced: Vec::new(),
            deleted: !dry_run,
        };
        for digest in self.objects.list()? {
            if referenced.contains(&digest) {
                report.live += 1;
            } else {
                report.unreferenced.push(digest);
            }
        }
        if !dry_run {
            for digest in &report.unreferenced {
                self.objects.remove(digest)?;
                ion_obs::counter("store.gc_pruned", 1);
            }
        }
        Ok(report)
    }

    /// Snapshot of `(key, digest)` bindings (sorted by key).
    #[must_use]
    pub fn bindings(&self) -> Vec<(String, Digest)> {
        self.manifest
            .lock()
            .map
            .iter()
            .map(|(k, d)| (k.to_owned(), *d))
            .collect()
    }

    fn cache_in_memory(&self, mem_key: &str, bytes: &Arc<[u8]>) {
        let mut memory = self.memory.lock();
        let before = memory.evictions();
        memory.put(mem_key, Arc::clone(bytes));
        let evicted = memory.evictions() - before;
        if evicted > 0 {
            ion_obs::counter("store.evict", evicted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!(
            "ion-store-test-{tag}-{}-{}",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "-")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    fn cleanup(store: Store) {
        let root = store.root().to_path_buf();
        drop(store);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn put_get_round_trip() {
        let store = tmp_store("rt");
        store.put("k", b"value").unwrap();
        assert_eq!(&*store.get("k").unwrap().unwrap(), b"value");
        assert!(store.get("other").unwrap().is_none());
        cleanup(store);
    }

    #[test]
    fn reopen_sees_persisted_bindings() {
        let store = tmp_store("reopen");
        let root = store.root().to_path_buf();
        store.put("k", b"persisted").unwrap();
        drop(store);
        let reopened = Store::open(&root).unwrap();
        assert_eq!(&*reopened.get("k").unwrap().unwrap(), b"persisted");
        cleanup(reopened);
    }

    #[test]
    fn rebinding_a_key_changes_what_get_returns() {
        let store = tmp_store("rebind");
        store.put("k", b"v1").unwrap();
        store.put("k", b"v2").unwrap();
        assert_eq!(&*store.get("k").unwrap().unwrap(), b"v2");
        cleanup(store);
    }

    #[test]
    fn get_or_compute_computes_once() {
        let store = tmp_store("memo");
        let mut calls = 0;
        let v = store
            .get_or_compute("k", || {
                calls += 1;
                Ok(b"computed".to_vec())
            })
            .unwrap();
        assert_eq!(&*v, b"computed");
        let v2 = store
            .get_or_compute("k", || {
                calls += 1;
                Ok(b"recomputed".to_vec())
            })
            .unwrap();
        assert_eq!(&*v2, b"computed");
        assert_eq!(calls, 1);
        cleanup(store);
    }

    #[test]
    fn gc_dry_run_then_prune() {
        let store = tmp_store("gc");
        store.put("keep", b"live bytes").unwrap();
        // Orphan an object by writing it without keeping a binding.
        let orphan = store.objects.put(b"orphan bytes").unwrap();
        let dry = store.gc(true).unwrap();
        assert_eq!(dry.live, 1);
        assert_eq!(dry.unreferenced, vec![orphan]);
        assert!(!dry.deleted);
        assert!(store.objects.get(&orphan).unwrap().is_some());
        let real = store.gc(false).unwrap();
        assert_eq!(real.unreferenced, vec![orphan]);
        assert!(real.deleted);
        assert!(store.objects.get(&orphan).unwrap().is_none());
        assert_eq!(&*store.get("keep").unwrap().unwrap(), b"live bytes");
        cleanup(store);
    }

    #[test]
    fn externally_deleted_object_is_a_miss_not_an_error() {
        let store = tmp_store("heal");
        let digest = store.put("k", b"gone soon").unwrap();
        // Drain the memory cache by reopening from disk.
        let root = store.root().to_path_buf();
        drop(store);
        let store = Store::open(&root).unwrap();
        store.objects.remove(&digest).unwrap();
        assert!(store.get("k").unwrap().is_none());
        cleanup(store);
    }
}
