//! Batch serving front-end: analyze a directory of traces concurrently
//! against one shared store.
//!
//! Every worker runs the same [`StoredPipeline`], so traces that share
//! content share work at every granularity: byte-identical traces
//! collapse to one extraction and one set of analyses (singleflight when
//! racing, cache hits when sequenced), and distinct traces that extract
//! identical tables still share their per-issue analyses.

use crate::driver::StoredPipeline;
use crate::StoreError;
use ion::pipeline::IonReport;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live progress gauges for one batch run, published to the global
/// `ion-obs` registry (`batch.total` / `batch.completed` / `batch.failed`
/// / `batch.in_flight`) so the `/progress` endpoint — and any `/metrics`
/// scraper — can watch a run without poking at store internals.
#[derive(Debug, Default)]
struct BatchProgress {
    completed: AtomicU64,
    failed: AtomicU64,
    in_flight: AtomicU64,
}

impl BatchProgress {
    #[allow(clippy::cast_precision_loss)]
    fn start(total: usize) -> Self {
        ion_obs::gauge("batch.total", total as f64);
        ion_obs::gauge("batch.completed", 0.0);
        ion_obs::gauge("batch.failed", 0.0);
        ion_obs::gauge("batch.in_flight", 0.0);
        BatchProgress::default()
    }

    #[allow(clippy::cast_precision_loss)]
    fn trace_started(&self) {
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        ion_obs::gauge("batch.in_flight", now as f64);
    }

    #[allow(clippy::cast_precision_loss)]
    fn trace_finished(&self, entry: &BatchEntry) {
        let in_flight = self
            .in_flight
            .fetch_sub(1, Ordering::Relaxed)
            .saturating_sub(1);
        ion_obs::gauge("batch.in_flight", in_flight as f64);
        match &entry.result {
            Ok(report) => {
                let done = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
                ion_obs::gauge("batch.completed", done as f64);
                ion_obs::event!(
                    "batch.trace.completed",
                    path = entry.path.display().to_string(),
                    detected = report.detected().len(),
                );
            }
            Err(err) => {
                let failed = self.failed.fetch_add(1, Ordering::Relaxed) + 1;
                ion_obs::gauge("batch.failed", failed as f64);
                ion_obs::event!(
                    "batch.trace.failed",
                    path = entry.path.display().to_string(),
                    error = err.as_str(),
                );
            }
        }
    }
}

/// One trace's outcome in a batch run.
#[derive(Debug)]
pub struct BatchEntry {
    /// The trace file.
    pub path: PathBuf,
    /// The report, or why this trace failed (other traces proceed).
    pub result: Result<IonReport, String>,
}

/// Outcome of a whole batch run.
#[derive(Debug, Default)]
pub struct BatchReport {
    /// Per-trace outcomes, in sorted path order.
    pub entries: Vec<BatchEntry>,
}

impl BatchReport {
    /// Number of traces that analyzed successfully.
    #[must_use]
    pub fn succeeded(&self) -> usize {
        self.entries.iter().filter(|e| e.result.is_ok()).count()
    }

    /// Number of traces that failed.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.entries.len() - self.succeeded()
    }

    /// One line per trace: path, detected issue count or error.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            match &e.result {
                Ok(report) => {
                    let detected: Vec<&str> =
                        report.detected().iter().map(|d| d.issue.as_str()).collect();
                    out.push_str(&format!(
                        "{}: {} issue(s) detected{}{}\n",
                        e.path.display(),
                        detected.len(),
                        if detected.is_empty() { "" } else { ": " },
                        detected.join(", ")
                    ));
                }
                Err(err) => out.push_str(&format!("{}: FAILED: {err}\n", e.path.display())),
            }
        }
        out.push_str(&format!(
            "{} analyzed, {} failed\n",
            self.succeeded(),
            self.failed()
        ));
        out
    }
}

/// Trace files in `dir` (anything with a `.darshan` extension), sorted
/// for deterministic output order.
pub fn trace_files(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let entries = std::fs::read_dir(dir).map_err(|e| StoreError::Io {
        action: "list trace dir".into(),
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::Io {
            action: "list trace dir".into(),
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let path = entry.path();
        if path.extension().is_some_and(|ext| ext == "darshan") {
            files.push(path);
        }
    }
    files.sort();
    Ok(files)
}

/// Analyze every `.darshan` file in `dir` with `jobs` concurrent workers
/// (`0` = one per core). Per-trace failures are reported, not fatal; the
/// call errors only when the directory itself is unreadable or empty of
/// traces.
pub fn analyze_dir(
    driver: &StoredPipeline<'_>,
    dir: &Path,
    jobs: usize,
) -> Result<BatchReport, StoreError> {
    analyze_dir_with(driver, dir, &ion_exec::Batch::new().with_width(jobs))
}

/// [`analyze_dir`] with an explicit execution policy: worker width,
/// batch deadline, and cancellation all come from `exec`. A trace whose
/// worker panics, or that is cancelled/deadlined before completing,
/// becomes a failed [`BatchEntry`]; the rest of the batch proceeds.
pub fn analyze_dir_with(
    driver: &StoredPipeline<'_>,
    dir: &Path,
    exec: &ion_exec::Batch,
) -> Result<BatchReport, StoreError> {
    let files = trace_files(dir)?;
    if files.is_empty() {
        return Err(StoreError::Pipeline(format!(
            "no .darshan traces in {}",
            dir.display()
        )));
    }
    let mut span = ion_obs::span!("store.batch");
    span.attr("traces", files.len());
    span.attr("jobs", exec.effective_width(files.len()));
    let parent = span.id();
    let progress = BatchProgress::start(files.len());

    let outcomes = exec.map_ordered(&files, |path, _ctx| {
        let mut span = ion_obs::span_under(parent, "store.batch.trace");
        span.attr("path", path.display().to_string());
        progress.trace_started();
        let entry = BatchEntry {
            path: path.clone(),
            result: driver.analyze_file(path).map_err(|e| e.to_string()),
        };
        progress.trace_finished(&entry);
        entry
    });
    let entries = outcomes
        .into_iter()
        .zip(&files)
        .map(|(outcome, path)| {
            // A panicked worker unwound before its own `trace_finished`
            // call; account the synthesized failure entry here so the
            // progress gauges stay truthful (no stuck in_flight, failures
            // counted). Cancelled/deadlined tasks never started.
            match outcome {
                ion_exec::TaskOutcome::Ok(entry) => entry,
                ion_exec::TaskOutcome::Panicked(_) => {
                    let entry = BatchEntry {
                        path: path.clone(),
                        result: Err("batch worker panicked".into()),
                    };
                    progress.trace_finished(&entry);
                    entry
                }
                ion_exec::TaskOutcome::Cancelled => BatchEntry {
                    path: path.clone(),
                    result: Err("batch cancelled".into()),
                },
                ion_exec::TaskOutcome::Deadlined => BatchEntry {
                    path: path.clone(),
                    result: Err("batch deadlined".into()),
                },
            }
        })
        .collect();
    Ok(BatchReport { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use darshan::log::LogWriter;
    use iosim::{SimConfig, Simulation};
    use std::sync::Arc;

    fn small_trace(exe: &str, stride: u64) -> Vec<u8> {
        let mut sim = Simulation::new(SimConfig::default().with_ranks(2).with_exe(exe));
        let f = sim.posix_open_all("/scratch/batch.dat").unwrap();
        for i in 0..8u64 {
            for rank in 0..2u32 {
                let base = u64::from(rank) * (4 << 20);
                sim.posix_write(rank, f, base + i * stride, 1024).unwrap();
            }
        }
        sim.posix_close_all(f);
        LogWriter::from_log(sim.finish()).finish().unwrap()
    }

    #[test]
    fn batch_analyzes_a_directory() {
        let dir = std::env::temp_dir().join(format!("ion-batch-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("traces")).unwrap();
        std::fs::write(dir.join("traces/a.darshan"), small_trace("a", 1024)).unwrap();
        std::fs::write(dir.join("traces/b.darshan"), small_trace("b", 2048)).unwrap();
        // A duplicate of a: shares every cached stage with it.
        std::fs::write(dir.join("traces/c.darshan"), small_trace("a", 1024)).unwrap();
        std::fs::write(dir.join("traces/ignored.txt"), b"not a trace").unwrap();
        std::fs::write(dir.join("traces/broken.darshan"), b"garbage").unwrap();

        let store = Arc::new(Store::open(dir.join("store")).unwrap());
        let driver = StoredPipeline::new(store);
        let report = analyze_dir(&driver, &dir.join("traces"), 2).unwrap();
        assert_eq!(report.entries.len(), 4); // three traces + one broken
        assert_eq!(report.succeeded(), 3);
        assert_eq!(report.failed(), 1);
        let text = report.render_text();
        assert!(text.contains("3 analyzed, 1 failed"), "{text}");
        // Identical traces produced identical reports.
        let a = report
            .entries
            .iter()
            .find(|e| e.path.ends_with("a.darshan"))
            .unwrap();
        let c = report
            .entries
            .iter()
            .find(|e| e.path.ends_with("c.darshan"))
            .unwrap();
        assert_eq!(
            a.result.as_ref().unwrap().summary,
            c.result.as_ref().unwrap().summary
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_is_an_error() {
        let dir = std::env::temp_dir().join(format!("ion-batch-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = Arc::new(Store::open(dir.join("store")).unwrap());
        let driver = StoredPipeline::new(store);
        assert!(analyze_dir(&driver, &dir, 1).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
