//! Deterministic content digests.
//!
//! Every artifact in the store is addressed by the SHA-256 of its bytes,
//! and every pipeline stage is keyed by digests of its true inputs. The
//! implementation is self-contained (the build environment has no
//! crates.io access) and byte-for-byte stable across platforms, Rust
//! versions and worker counts — a digest written on one machine must
//! address the same artifact on another.
//!
//! Two combinators matter for keying:
//!
//! * [`Hasher`] — ordered streaming SHA-256, used where byte order *is*
//!   meaning (context texts, serialized artifacts).
//! * [`UnorderedDigest`] — a commutative fold of per-item digests, used
//!   where the pipeline may legally produce items in any order (table
//!   rows materialized by parallel extraction). Reordering items leaves
//!   the digest unchanged; changing, adding or removing any item changes
//!   it.

use std::fmt;

/// A 256-bit content digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Lower-case hex rendering (64 chars).
    #[must_use]
    pub fn hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Abbreviated hex for human-facing output (12 chars).
    #[must_use]
    pub fn short(&self) -> String {
        self.hex()[..12].to_owned()
    }

    /// Parse a 64-char lower-case hex digest.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = (hi * 16 + lo) as u8;
        }
        Some(Digest(out))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// Streaming SHA-256 hasher.
#[derive(Clone)]
pub struct Hasher {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length: u64,
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

impl fmt::Debug for Hasher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hasher")
            .field("length", &self.length)
            .finish()
    }
}

impl Hasher {
    /// Fresh hasher.
    #[must_use]
    pub fn new() -> Hasher {
        Hasher {
            state: H0,
            buffer: [0u8; 64],
            buffered: 0,
            length: 0,
        }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        self.length = self.length.wrapping_add(bytes.len() as u64);
        let mut rest = bytes;
        if self.buffered > 0 {
            let take = rest.len().min(64 - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered < 64 {
                return;
            }
            let block = self.buffer;
            self.compress(&block);
            self.buffered = 0;
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut buf = [0u8; 64];
            buf.copy_from_slice(block);
            self.compress(&buf);
            rest = tail;
        }
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffered = rest.len();
    }

    /// Absorb a length-prefixed field, so `("ab","c")` and `("a","bc")`
    /// hash differently when fields are written in sequence.
    pub fn field(&mut self, bytes: &[u8]) {
        self.update(&(bytes.len() as u64).to_be_bytes());
        self.update(bytes);
    }

    /// Finish and return the digest.
    #[must_use]
    pub fn finish(mut self) -> Digest {
        let bit_len = self.length.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0x00]);
        }
        // The padding bytes above were counted into `length`; the final
        // block carries the original message length, captured first.
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// SHA-256 of a byte slice.
#[must_use]
pub fn digest_bytes(bytes: &[u8]) -> Digest {
    let mut h = Hasher::new();
    h.update(bytes);
    h.finish()
}

/// Commutative fold of item digests: per-lane wrapping sums over the
/// digest words plus an item count. Insensitive to item order, sensitive
/// to item content and multiplicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnorderedDigest {
    lanes: [u64; 4],
    count: u64,
}

impl UnorderedDigest {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> UnorderedDigest {
        UnorderedDigest::default()
    }

    /// Fold one item's bytes in (digested first, so similar items do not
    /// cancel linearly).
    pub fn absorb(&mut self, item: &[u8]) {
        self.absorb_digest(digest_bytes(item));
    }

    /// Fold a pre-computed item digest in.
    pub fn absorb_digest(&mut self, d: Digest) {
        for (lane, chunk) in self.lanes.iter_mut().zip(d.0.chunks_exact(8)) {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            *lane = lane.wrapping_add(u64::from_be_bytes(word));
        }
        self.count = self.count.wrapping_add(1);
    }

    /// Merge another accumulator (for per-worker partial folds).
    pub fn merge(&mut self, other: &UnorderedDigest) {
        for (lane, o) in self.lanes.iter_mut().zip(other.lanes) {
            *lane = lane.wrapping_add(o);
        }
        self.count = self.count.wrapping_add(other.count);
    }

    /// Collapse to a digest.
    #[must_use]
    pub fn finish(&self) -> Digest {
        let mut h = Hasher::new();
        h.update(b"ion-store/unordered/1");
        for lane in self.lanes {
            h.update(&lane.to_be_bytes());
        }
        h.update(&self.count.to_be_bytes());
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 test vectors.
    #[test]
    fn sha256_empty() {
        assert_eq!(
            digest_bytes(b"").hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            digest_bytes(b"abc").hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_blocks() {
        assert_eq!(
            digest_bytes(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let mut h = Hasher::new();
        for _ in 0..1000 {
            h.update(&[b'a'; 1000]);
        }
        assert_eq!(
            h.finish().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Hasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), digest_bytes(&data), "split at {split}");
        }
    }

    #[test]
    fn field_framing_distinguishes_boundaries() {
        let mut a = Hasher::new();
        a.field(b"ab");
        a.field(b"c");
        let mut b = Hasher::new();
        b.field(b"a");
        b.field(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_round_trip() {
        let d = digest_bytes(b"round trip");
        assert_eq!(Digest::from_hex(&d.hex()), Some(d));
        assert!(Digest::from_hex("zz").is_none());
    }

    #[test]
    fn unordered_is_order_insensitive() {
        let mut a = UnorderedDigest::new();
        a.absorb(b"row1");
        a.absorb(b"row2");
        a.absorb(b"row3");
        let mut b = UnorderedDigest::new();
        b.absorb(b"row3");
        b.absorb(b"row1");
        b.absorb(b"row2");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn unordered_is_content_and_multiplicity_sensitive() {
        let mut a = UnorderedDigest::new();
        a.absorb(b"row1");
        let mut b = UnorderedDigest::new();
        b.absorb(b"row1");
        b.absorb(b"row1");
        assert_ne!(a.finish(), b.finish());
        let mut c = UnorderedDigest::new();
        c.absorb(b"row2");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn unordered_merge_matches_sequential() {
        let mut whole = UnorderedDigest::new();
        whole.absorb(b"a");
        whole.absorb(b"b");
        whole.absorb(b"c");
        let mut left = UnorderedDigest::new();
        left.absorb(b"c");
        let mut right = UnorderedDigest::new();
        right.absorb(b"a");
        right.absorb(b"b");
        left.merge(&right);
        assert_eq!(whole.finish(), left.finish());
    }
}
