//! Singleflight deduplication of concurrent identical computations.
//!
//! When the batch front-end analyzes a directory containing the same
//! trace twice (or many clients request the same artifact at once), only
//! one worker should pay for the computation; the rest block until the
//! leader finishes and then share its result. This is the classic
//! `singleflight` pattern: a map from key to an in-flight slot, a leader
//! that computes, and followers that wait on a condvar.
//!
//! Locks here use [`std::sync::Mutex`] deliberately: a panic in a
//! leader's computation poisons the slot lock, and followers *recover*
//! the poisoned lock (via [`std::sync::PoisonError::into_inner`]) and
//! observe the `Failed` state instead of propagating the panic — one
//! crashed request must not take down every request that happened to
//! share its key.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Outcome of a [`Singleflight::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightRole {
    /// This caller executed the computation.
    Leader,
    /// This caller waited and shared the leader's result.
    Follower,
}

enum SlotState<T> {
    Running,
    Done(T),
    /// The leader panicked; followers recompute for themselves.
    Failed,
}

struct Slot<T> {
    state: Mutex<SlotState<T>>,
    cv: Condvar,
}

/// Deduplicates concurrent computations by key.
pub struct Singleflight<T> {
    flights: Mutex<HashMap<String, std::sync::Arc<Slot<T>>>>,
    follower_joins: AtomicUsize,
}

impl<T> std::fmt::Debug for Singleflight<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Singleflight").finish_non_exhaustive()
    }
}

impl<T: Clone> Default for Singleflight<T> {
    fn default() -> Self {
        Singleflight::new()
    }
}

fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<T: Clone> Singleflight<T> {
    /// Empty group.
    #[must_use]
    pub fn new() -> Singleflight<T> {
        Singleflight {
            flights: Mutex::new(HashMap::new()),
            follower_joins: AtomicUsize::new(0),
        }
    }

    /// Number of callers so far that attached to an already in-flight
    /// computation (before learning its outcome). Monotonic; lets an
    /// orchestrator — or a test — wait deterministically until peers
    /// have joined a flight, instead of sleeping and hoping.
    #[must_use]
    pub fn follower_joins(&self) -> usize {
        self.follower_joins.load(Ordering::SeqCst)
    }

    /// Run `compute` for `key`, or wait for an identical in-flight call
    /// and share its result. Returns the value and whether this caller
    /// led or followed.
    pub fn run(&self, key: &str, compute: impl FnOnce() -> T) -> (T, FlightRole) {
        let slot = {
            let mut flights = recover(self.flights.lock());
            if let Some(slot) = flights.get(key) {
                let slot = std::sync::Arc::clone(slot);
                self.follower_joins.fetch_add(1, Ordering::SeqCst);
                slot
            } else {
                let slot = std::sync::Arc::new(Slot {
                    state: Mutex::new(SlotState::Running),
                    cv: Condvar::new(),
                });
                flights.insert(key.to_owned(), std::sync::Arc::clone(&slot));
                drop(flights);
                // Leader path: compute outside every lock. A guard marks
                // the slot failed and retires it if `compute` unwinds, so
                // followers are released rather than deadlocked and later
                // callers start a fresh flight.
                struct Bail<'s, T> {
                    group: &'s Singleflight<T>,
                    slot: &'s Slot<T>,
                    key: &'s str,
                    armed: bool,
                }
                impl<T> Drop for Bail<'_, T> {
                    fn drop(&mut self) {
                        if self.armed {
                            *recover(self.slot.state.lock()) = SlotState::Failed;
                            self.slot.cv.notify_all();
                            recover(self.group.flights.lock()).remove(self.key);
                        }
                    }
                }
                let mut bail = Bail {
                    group: self,
                    slot: &slot,
                    key,
                    armed: true,
                };
                let value = compute();
                bail.armed = false;
                *recover(slot.state.lock()) = SlotState::Done(value.clone());
                slot.cv.notify_all();
                recover(self.flights.lock()).remove(key);
                return (value, FlightRole::Leader);
            }
        };
        // Follower path: wait for the leader to finish.
        let mut state = recover(slot.state.lock());
        loop {
            match &*state {
                SlotState::Running => state = recover(slot.cv.wait(state)),
                SlotState::Done(v) => return (v.clone(), FlightRole::Follower),
                SlotState::Failed => {
                    drop(state);
                    // Leader crashed: compute independently rather than
                    // propagating a panic that was not ours.
                    return (compute(), FlightRole::Leader);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier};

    #[test]
    fn concurrent_identical_keys_compute_once() {
        let group: Arc<Singleflight<u64>> = Arc::new(Singleflight::new());
        let computed = Arc::new(AtomicUsize::new(0));
        // The leader signals this barrier from *inside* its computation,
        // so followers spawned afterwards are guaranteed to find the
        // flight in progress; the leader then holds the flight open until
        // every follower has attached. No sleeps, no races: exactly one
        // computation, by construction.
        let in_flight = Arc::new(Barrier::new(2));
        let leader = {
            let group = Arc::clone(&group);
            let computed = Arc::clone(&computed);
            let in_flight = Arc::clone(&in_flight);
            std::thread::spawn(move || {
                group
                    .run("k", || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        in_flight.wait();
                        while group.follower_joins() < 7 {
                            std::thread::yield_now();
                        }
                        42u64
                    })
                    .0
            })
        };
        in_flight.wait();
        let mut handles = vec![leader];
        for _ in 0..7 {
            let group = Arc::clone(&group);
            handles.push(std::thread::spawn(move || {
                let (v, role) = group.run("k", || unreachable!("flight is already in progress"));
                assert_eq!(role, FlightRole::Follower);
                v
            }));
        }
        let values: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(values.iter().all(|&v| v == 42));
        assert_eq!(computed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn distinct_keys_do_not_share() {
        let group: Singleflight<String> = Singleflight::new();
        let (a, _) = group.run("a", || "va".to_owned());
        let (b, _) = group.run("b", || "vb".to_owned());
        assert_eq!((a.as_str(), b.as_str()), ("va", "vb"));
    }

    #[test]
    fn sequential_same_key_recomputes() {
        let group: Singleflight<u32> = Singleflight::new();
        let (v1, r1) = group.run("k", || 1);
        let (v2, r2) = group.run("k", || 2);
        assert_eq!((v1, v2), (1, 2));
        assert_eq!((r1, r2), (FlightRole::Leader, FlightRole::Leader));
    }

    #[test]
    fn leader_panic_releases_followers() {
        let group: Arc<Singleflight<u32>> = Arc::new(Singleflight::new());
        // Same handshake as above: the leader crashes only after the
        // follower has provably attached to its flight, so the follower
        // deterministically exercises the Failed → recompute path.
        let in_flight = Arc::new(Barrier::new(2));
        let leader = {
            let group = Arc::clone(&group);
            let in_flight = Arc::clone(&in_flight);
            std::thread::spawn(move || {
                let _ = group.run("k", || {
                    in_flight.wait();
                    while group.follower_joins() < 1 {
                        std::thread::yield_now();
                    }
                    panic!("leader crashed")
                });
            })
        };
        in_flight.wait();
        let follower = {
            let group = Arc::clone(&group);
            std::thread::spawn(move || group.run("k", || 7).0)
        };
        assert!(leader.join().is_err());
        assert_eq!(follower.join().unwrap(), 7);
    }
}
