//! On-disk layout: content-addressed objects plus a versioned manifest.
//!
//! ```text
//! <root>/
//!   MANIFEST              versioned key → object-digest map
//!   objects/ab/cdef…      artifact bytes, named by their SHA-256
//! ```
//!
//! Objects are immutable once written (their name *is* their content
//! hash), so a half-written object is the only corruption mode that
//! matters — both objects and the manifest are therefore written to a
//! temp file in the same directory and atomically renamed into place.
//! Concurrent writers racing on one object both produce identical bytes,
//! so whichever rename lands last is harmless.

use crate::digest::{digest_bytes, Digest};
use crate::StoreError;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique-enough temp suffix: pid + process-wide counter.
fn temp_name(tag: &str) -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    format!(
        ".tmp-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

fn io_err(action: &str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io {
        action: action.to_owned(),
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Write `bytes` to `path` atomically (temp file + rename).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let dir = path
        .parent()
        .ok_or_else(|| StoreError::Corrupt(format!("{} has no parent", path.display())))?;
    fs::create_dir_all(dir).map_err(|e| io_err("create dir", dir, e))?;
    let tmp = dir.join(temp_name("obj"));
    fs::write(&tmp, bytes).map_err(|e| io_err("write", &tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        io_err("rename", path, e)
    })
}

/// The content-addressed object directory.
#[derive(Debug, Clone)]
pub struct ObjectDir {
    root: PathBuf,
}

impl ObjectDir {
    /// Object directory under `root` (created lazily on first write).
    #[must_use]
    pub fn new(root: &Path) -> ObjectDir {
        ObjectDir {
            root: root.join("objects"),
        }
    }

    /// Path of the object holding `digest`.
    #[must_use]
    pub fn path_of(&self, digest: &Digest) -> PathBuf {
        let hex = digest.hex();
        self.root.join(&hex[..2]).join(&hex[2..])
    }

    /// Store `bytes`, returning their digest. Skips the write if the
    /// object already exists.
    pub fn put(&self, bytes: &[u8]) -> Result<Digest, StoreError> {
        let digest = digest_bytes(bytes);
        let path = self.path_of(&digest);
        if !path.exists() {
            atomic_write(&path, bytes)?;
        }
        Ok(digest)
    }

    /// Load the object with `digest`, verifying its content hash.
    pub fn get(&self, digest: &Digest) -> Result<Option<Vec<u8>>, StoreError> {
        let path = self.path_of(digest);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err("read", &path, e)),
        };
        if digest_bytes(&bytes) != *digest {
            return Err(StoreError::Corrupt(format!(
                "object {} fails content verification",
                digest.short()
            )));
        }
        Ok(Some(bytes))
    }

    /// Every object digest present on disk (sorted).
    pub fn list(&self) -> Result<Vec<Digest>, StoreError> {
        let mut out = Vec::new();
        let shards = match fs::read_dir(&self.root) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(io_err("list", &self.root, e)),
        };
        for shard in shards {
            let shard = shard.map_err(|e| io_err("list", &self.root, e))?;
            if !shard
                .file_type()
                .map_err(|e| io_err("stat", &shard.path(), e))?
                .is_dir()
            {
                continue;
            }
            let prefix = shard.file_name().to_string_lossy().into_owned();
            for entry in fs::read_dir(shard.path()).map_err(|e| io_err("list", &shard.path(), e))? {
                let entry = entry.map_err(|e| io_err("list", &shard.path(), e))?;
                let rest = entry.file_name().to_string_lossy().into_owned();
                if rest.starts_with(".tmp-") {
                    continue;
                }
                if let Some(d) = Digest::from_hex(&format!("{prefix}{rest}")) {
                    out.push(d);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Delete the object with `digest` (idempotent).
    pub fn remove(&self, digest: &Digest) -> Result<(), StoreError> {
        let path = self.path_of(digest);
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", &path, e)),
        }
    }
}

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

const MANIFEST_MAGIC: &str = "ion-store-manifest";

/// The dependency-key map: stage key → digest of the artifact object.
///
/// Keys are structured strings (see the crate docs for the scheme); a
/// manifest from a future format version is rejected rather than
/// silently misread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    entries: BTreeMap<String, Digest>,
}

impl Manifest {
    /// Empty manifest.
    #[must_use]
    pub fn new() -> Manifest {
        Manifest::default()
    }

    /// Look a key up.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Digest> {
        self.entries.get(key)
    }

    /// Bind `key` to `digest`, returning the previous binding.
    pub fn insert(&mut self, key: &str, digest: Digest) -> Option<Digest> {
        self.entries.insert(key.to_owned(), digest)
    }

    /// Remove a binding.
    pub fn remove(&mut self, key: &str) -> Option<Digest> {
        self.entries.remove(key)
    }

    /// Number of bindings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no bindings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(key, digest)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Digest)> {
        self.entries.iter().map(|(k, d)| (k.as_str(), d))
    }

    /// Every digest referenced by some key.
    #[must_use]
    pub fn referenced(&self) -> std::collections::BTreeSet<Digest> {
        self.entries.values().copied().collect()
    }

    /// Serialize to the on-disk text format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!("{MANIFEST_MAGIC} v{MANIFEST_VERSION}\n");
        for (k, d) in &self.entries {
            out.push_str(k);
            out.push('\t');
            out.push_str(&d.hex());
            out.push('\n');
        }
        out.into_bytes()
    }

    /// Parse the on-disk text format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Manifest, StoreError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| StoreError::Corrupt("manifest is not UTF-8".into()))?;
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| StoreError::Corrupt("empty manifest".into()))?;
        let version = header
            .strip_prefix(MANIFEST_MAGIC)
            .and_then(|rest| rest.trim().strip_prefix('v'))
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| StoreError::Corrupt(format!("bad manifest header `{header}`")))?;
        if version != MANIFEST_VERSION {
            return Err(StoreError::Version {
                found: version,
                supported: MANIFEST_VERSION,
            });
        }
        let mut m = Manifest::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (key, hex) = line.split_once('\t').ok_or_else(|| {
                StoreError::Corrupt(format!("manifest line without tab: `{line}`"))
            })?;
            let digest = Digest::from_hex(hex)
                .ok_or_else(|| StoreError::Corrupt(format!("bad digest for key `{key}`")))?;
            m.entries.insert(key.to_owned(), digest);
        }
        Ok(m)
    }

    /// Load the manifest at `root` (empty if none exists yet).
    pub fn load(root: &Path) -> Result<Manifest, StoreError> {
        let path = root.join("MANIFEST");
        match fs::read(&path) {
            Ok(bytes) => Manifest::from_bytes(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Manifest::new()),
            Err(e) => Err(io_err("read", &path, e)),
        }
    }

    /// Persist the manifest at `root` atomically.
    pub fn save(&self, root: &Path) -> Result<(), StoreError> {
        atomic_write(&root.join("MANIFEST"), &self.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ion-store-disk-{tag}-{}", temp_name("t")));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn object_round_trip_and_dedup() {
        let dir = tmpdir("rt");
        let objects = ObjectDir::new(&dir);
        let d1 = objects.put(b"hello").unwrap();
        let d2 = objects.put(b"hello").unwrap();
        assert_eq!(d1, d2);
        assert_eq!(objects.get(&d1).unwrap().unwrap(), b"hello");
        assert_eq!(objects.list().unwrap(), vec![d1]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_object_is_none() {
        let dir = tmpdir("miss");
        let objects = ObjectDir::new(&dir);
        assert!(objects.get(&digest_bytes(b"nope")).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_object_is_detected() {
        let dir = tmpdir("corrupt");
        let objects = ObjectDir::new(&dir);
        let d = objects.put(b"payload").unwrap();
        fs::write(objects.path_of(&d), b"tampered").unwrap();
        assert!(matches!(objects.get(&d), Err(StoreError::Corrupt(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trip() {
        let mut m = Manifest::new();
        m.insert("trace/abc", digest_bytes(b"x"));
        m.insert("issue/small-io/k", digest_bytes(b"y"));
        let parsed = Manifest::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn future_manifest_version_is_rejected() {
        let bytes = b"ion-store-manifest v99\nk\t0000\n";
        assert!(matches!(
            Manifest::from_bytes(bytes),
            Err(StoreError::Version { found: 99, .. })
        ));
    }

    #[test]
    fn manifest_load_save() {
        let dir = tmpdir("manifest");
        let mut m = Manifest::new();
        m.insert("k", digest_bytes(b"v"));
        m.save(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_root_loads_empty_manifest() {
        let dir = tmpdir("empty");
        assert!(Manifest::load(&dir).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
