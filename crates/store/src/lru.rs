//! Byte-capped LRU cache for hot artifacts.
//!
//! The store keeps recently used artifact bytes in memory so repeated
//! lookups (the batch front-end hammering one tables artifact, say) skip
//! the disk entirely. Capacity is measured in payload *bytes*, not entry
//! count, because artifacts range from a 40-byte params record to a
//! multi-megabyte DXT table.
//!
//! Recency is tracked with a monotonically increasing tick per access;
//! eviction scans for the minimum tick. The scan is O(entries), which is
//! fine at the store's working-set sizes (hundreds of artifacts) and
//! keeps the structure obviously correct — no unsafe, no intrusive
//! lists.

use std::collections::HashMap;
use std::sync::Arc;

/// A byte-capped least-recently-used cache.
#[derive(Debug)]
pub struct ByteLru {
    entries: HashMap<String, Entry>,
    capacity: usize,
    used: usize,
    tick: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Entry {
    bytes: Arc<[u8]>,
    last_used: u64,
}

impl ByteLru {
    /// Cache holding at most `capacity` payload bytes.
    #[must_use]
    pub fn new(capacity: usize) -> ByteLru {
        ByteLru {
            entries: HashMap::new(),
            capacity,
            used: 0,
            tick: 0,
            evictions: 0,
        }
    }

    /// Fetch and touch an entry.
    pub fn get(&mut self, key: &str) -> Option<Arc<[u8]>> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.entries.get_mut(key)?;
        e.last_used = tick;
        Some(Arc::clone(&e.bytes))
    }

    /// Insert an entry, evicting least-recently-used entries as needed.
    /// Payloads larger than the whole capacity are not cached at all.
    pub fn put(&mut self, key: &str, bytes: Arc<[u8]>) {
        if bytes.len() > self.capacity {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.entries.remove(key) {
            self.used -= old.bytes.len();
        }
        while self.used + bytes.len() > self.capacity {
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(e) = self.entries.remove(&victim) {
                self.used -= e.bytes.len();
                self.evictions += 1;
            }
        }
        self.used += bytes.len();
        self.entries.insert(
            key.to_owned(),
            Entry {
                bytes,
                last_used: self.tick,
            },
        );
    }

    /// Payload bytes currently cached.
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total evictions since creation.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(n: usize) -> Arc<[u8]> {
        vec![0u8; n].into()
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut lru = ByteLru::new(100);
        lru.put("a", bytes(40));
        lru.put("b", bytes(40));
        let _ = lru.get("a"); // b is now the LRU entry
        lru.put("c", bytes(40));
        assert!(lru.get("a").is_some());
        assert!(lru.get("b").is_none());
        assert!(lru.get("c").is_some());
        assert_eq!(lru.evictions(), 1);
    }

    #[test]
    fn byte_cap_is_respected() {
        let mut lru = ByteLru::new(100);
        for i in 0..50 {
            lru.put(&format!("k{i}"), bytes(30));
            assert!(lru.used_bytes() <= 100);
        }
        assert_eq!(lru.len(), 3);
    }

    #[test]
    fn oversized_payloads_are_not_cached() {
        let mut lru = ByteLru::new(10);
        lru.put("big", bytes(11));
        assert!(lru.get("big").is_none());
        assert_eq!(lru.used_bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut lru = ByteLru::new(100);
        lru.put("a", bytes(60));
        lru.put("a", bytes(30));
        assert_eq!(lru.used_bytes(), 30);
        assert_eq!(lru.len(), 1);
    }
}
