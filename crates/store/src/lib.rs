//! `ion-store` — content-addressed analysis store with salsa-style
//! incremental re-analysis and a batch serving front-end.
//!
//! ION's diagnosis is a pure function of `(trace, issue context,
//! parameters, model)`; this crate makes the pipeline stop paying for
//! work whose inputs did not change. Every pipeline artifact lives in a
//! content-addressed object store under one `--store` directory, and
//! every stage is memoized under a dependency key — a digest of that
//! stage's true inputs, in the spirit of salsa's dependency-keyed
//! memoization for compilers:
//!
//! * `trace/<digest>/meta/<schema fingerprint>` → per-module table
//!   digests + derived parameters (memoizes Darshan decode +
//!   extraction), with the table bytes in per-module
//!   `trace/<digest>/table/<module>/…` artifacts;
//! * `diag/<id>/<model>/<input fingerprint>` → one diagnosis (memoizes
//!   a model run), where the fingerprint folds the parameters, the
//!   per-module table digests the issue maps to, and the context's
//!   *statement* fingerprint (whitespace-inert);
//! * `memo/<id>/<trace digest>/<model>` → the analysis' recorded
//!   dependency set ([`memo::IssueMemo`]) — which knowledge statements
//!   it consulted, at which revisions;
//! * `summary/<digest of diagnosis texts + model>` → the global summary.
//!
//! Lookups run a red-green revalidation pass over the memo instead of
//! comparing one monolithic key: equal inputs are *green* (serve the
//! cached diagnosis without touching table bytes); a context edit that
//! leaves every consulted statement's revision unchanged — whitespace,
//! comments, templates of rules that never fired — is *backdated* (the
//! old diagnosis is rebound under the new fingerprint, still no model
//! run); only a dirty consulted input goes *red* and re-runs the model.
//! Re-analyzing an unchanged trace therefore performs zero extractions
//! and zero model runs; editing one knowledge statement re-runs exactly
//! the issues that consulted it.
//!
//! Layered storage: a byte-capped in-memory LRU ([`lru::ByteLru`]) over
//! atomic-rename on-disk objects and a versioned manifest ([`disk`]),
//! with singleflight deduplication ([`singleflight`]) so concurrent
//! identical requests — the batch front-end ([`batch`]) analyzing
//! duplicate traces, say — share one computation. All layers emit
//! `ion-obs` metrics (`store.hit` / `store.miss` / `store.evict` /
//! `store.recompute.*`) and spans, so cache behavior is provable from a
//! metrics snapshot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod codec;
pub mod digest;
pub mod disk;
pub mod driver;
pub mod lru;
pub mod memo;
pub mod singleflight;
pub mod spill;
pub mod store;

pub use batch::{analyze_dir, analyze_dir_with, BatchReport};
pub use digest::{digest_bytes, Digest};
pub use driver::StoredPipeline;
pub use spill::SpillDir;
pub use store::{GcReport, Store};

use std::fmt;

/// Errors from the store and its drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O operation failed.
    Io {
        /// What the store was doing.
        action: String,
        /// The path involved.
        path: String,
        /// The underlying error text.
        message: String,
    },
    /// On-disk state failed validation (bad framing, hash mismatch…).
    Corrupt(String),
    /// The manifest was written by an unsupported format version.
    Version {
        /// Version found on disk.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A pipeline stage failed (undecodable trace, empty batch…).
    Pipeline(String),
    /// A memoized computation failed (stringified through singleflight).
    Compute(String),
    /// The analysis was cancelled before completing (typed so callers can
    /// classify the terminal state without parsing message text).
    Cancelled,
    /// The analysis exceeded its execution deadline.
    Deadlined,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io {
                action,
                path,
                message,
            } => write!(f, "cannot {action} {path}: {message}"),
            StoreError::Corrupt(msg) => write!(f, "store corruption: {msg}"),
            StoreError::Version { found, supported } => write!(
                f,
                "manifest version v{found} is newer than supported v{supported}"
            ),
            StoreError::Pipeline(msg) => f.write_str(msg),
            StoreError::Compute(msg) => f.write_str(msg),
            StoreError::Cancelled => f.write_str("analysis cancelled"),
            StoreError::Deadlined => f.write_str("analysis deadlined"),
        }
    }
}

impl std::error::Error for StoreError {}
