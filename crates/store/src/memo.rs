//! Per-issue memoization records — the dependency sets behind red-green
//! revalidation.
//!
//! A memo is written after every issue analysis under an *identity*
//! key (`memo/<issue>/<trace>/<model>`), so it is found again no matter
//! how the context has been edited since. It records everything the run
//! actually read:
//!
//! * the non-context inputs — system parameters digest, the `has_mpiio`
//!   flag, and one content digest per module the context maps to;
//! * the context, twice — the coarse whole-text revision (the green fast
//!   path) and the statement-set fingerprint — plus the *consulted
//!   statement* dependency list `(key, revision)`;
//! * the content-addressed key of the diagnosis artifact the run
//!   produced, and the [`Durability`] of its context input.
//!
//! On the next lookup the driver walks this record instead of re-running
//! the model: equal inputs → green; changed coarse revision but equal
//! consulted statements → backdate (rebind the old diagnosis, still no
//! model run); a dirty consulted statement or non-context input → red.

use crate::codec::{corrupt, take_line};
use crate::digest::Digest;
use crate::StoreError;

/// How easily a memo's context input can be dirtied.
///
/// `High` marks analyses whose context was a pristine builtin: the text
/// is compiled into the binary, so revalidation may short-circuit the
/// context check against a process-wide cache of builtin revisions
/// instead of splitting statements. Trace tables are always effectively
/// high-durability — they are content-addressed under the trace digest,
/// so their recorded digests can only change through an extractor schema
/// bump, which the digest comparison itself detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Context is a pristine builtin (byte-identical to the compiled-in
    /// library).
    High,
    /// Context is user-supplied or edited; validate through statements.
    Low,
}

impl Durability {
    fn as_str(self) -> &'static str {
        match self {
            Durability::High => "high",
            Durability::Low => "low",
        }
    }
}

/// One consulted-statement dependency: the statement's positional key
/// and the revision it had when the analysis ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatementDep {
    /// Positional statement key (`prose/0`, `rule/2/text`, …).
    pub key: String,
    /// Statement revision hex at analysis time.
    pub revision: String,
}

/// The persisted dependency record of one issue analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssueMemo {
    /// Issue id.
    pub issue: String,
    /// Model id (key-safe form).
    pub model: String,
    /// Durability of the context input.
    pub durability: Durability,
    /// Coarse whole-text context revision hex (green fast path).
    pub raw_revision: String,
    /// Statement-set fingerprint hex of the context.
    pub ctx_fingerprint: String,
    /// System-parameters digest hex.
    pub params: String,
    /// Whether the trace recorded MPI-IO (a prompt-level input that is
    /// not part of any single table's content).
    pub has_mpiio: bool,
    /// Per-module content digests for the modules this issue maps to;
    /// `None` records that the module was absent from the trace.
    pub tables: Vec<(String, Option<Digest>)>,
    /// Manifest key of the diagnosis artifact this analysis produced.
    pub diag_key: String,
    /// Consulted statements, in rendering order.
    pub deps: Vec<StatementDep>,
}

/// Serialize an [`IssueMemo`].
#[must_use]
pub fn encode_memo(m: &IssueMemo) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"ion-memo v1\n");
    out.extend_from_slice(format!("issue {}\n", m.issue).as_bytes());
    out.extend_from_slice(format!("model {}\n", m.model).as_bytes());
    out.extend_from_slice(format!("durability {}\n", m.durability.as_str()).as_bytes());
    out.extend_from_slice(format!("revision {}\n", m.raw_revision).as_bytes());
    out.extend_from_slice(format!("ctxfp {}\n", m.ctx_fingerprint).as_bytes());
    out.extend_from_slice(format!("params {}\n", m.params).as_bytes());
    out.extend_from_slice(format!("mpiio {}\n", u8::from(m.has_mpiio)).as_bytes());
    out.extend_from_slice(format!("tables {}\n", m.tables.len()).as_bytes());
    for (name, digest) in &m.tables {
        let d = digest.map_or_else(|| "absent".to_owned(), |d| d.hex());
        out.extend_from_slice(format!("{name} {d}\n").as_bytes());
    }
    out.extend_from_slice(format!("diag {}\n", m.diag_key).as_bytes());
    out.extend_from_slice(format!("deps {}\n", m.deps.len()).as_bytes());
    for dep in &m.deps {
        out.extend_from_slice(format!("{}\t{}\n", dep.key, dep.revision).as_bytes());
    }
    out
}

/// Decode an [`IssueMemo`].
pub fn decode_memo(bytes: &[u8]) -> Result<IssueMemo, StoreError> {
    let mut rest = bytes;
    if take_line(&mut rest)? != "ion-memo v1" {
        return Err(corrupt("bad memo header"));
    }
    let mut field = |prefix: &str| -> Result<String, StoreError> {
        take_line(&mut rest)?
            .strip_prefix(prefix)
            .map(ToOwned::to_owned)
            .ok_or_else(|| corrupt(&format!("missing memo field {prefix}")))
    };
    let issue = field("issue ")?;
    let model = field("model ")?;
    let durability = match field("durability ")?.as_str() {
        "high" => Durability::High,
        "low" => Durability::Low,
        _ => return Err(corrupt("memo durability")),
    };
    let raw_revision = field("revision ")?;
    let ctx_fingerprint = field("ctxfp ")?;
    let params = field("params ")?;
    let has_mpiio = match field("mpiio ")?.as_str() {
        "1" => true,
        "0" => false,
        _ => return Err(corrupt("memo mpiio flag")),
    };
    let n_tables: usize = field("tables ")?
        .parse()
        .map_err(|_| corrupt("memo tables count"))?;
    let mut tables = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let line = take_line(&mut rest)?;
        let (name, d) = line
            .rsplit_once(' ')
            .ok_or_else(|| corrupt("memo table line"))?;
        let digest = if d == "absent" {
            None
        } else {
            Some(Digest::from_hex(d).ok_or_else(|| corrupt("memo table digest"))?)
        };
        tables.push((name.to_owned(), digest));
    }
    let diag_key = {
        take_line(&mut rest)?
            .strip_prefix("diag ")
            .map(ToOwned::to_owned)
            .ok_or_else(|| corrupt("missing memo field diag"))?
    };
    let n_deps: usize = take_line(&mut rest)?
        .strip_prefix("deps ")
        .ok_or_else(|| corrupt("missing memo field deps"))?
        .parse()
        .map_err(|_| corrupt("memo deps count"))?;
    let mut deps = Vec::with_capacity(n_deps);
    for _ in 0..n_deps {
        let line = take_line(&mut rest)?;
        let (key, revision) = line
            .split_once('\t')
            .ok_or_else(|| corrupt("memo dep line"))?;
        deps.push(StatementDep {
            key: key.to_owned(),
            revision: revision.to_owned(),
        });
    }
    Ok(IssueMemo {
        issue,
        model,
        durability,
        raw_revision,
        ctx_fingerprint,
        params,
        has_mpiio,
        tables,
        diag_key,
        deps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IssueMemo {
        IssueMemo {
            issue: "small-io".into(),
            model: "ion-deterministic-expert-v1".into(),
            durability: Durability::High,
            raw_revision: "a".repeat(32),
            ctx_fingerprint: "b".repeat(32),
            params: "c".repeat(64),
            has_mpiio: false,
            tables: vec![
                ("POSIX".into(), Some(Digest([7; 32]))),
                ("DXT".into(), None),
            ],
            diag_key: "diag/small-io/model/abcd".into(),
            deps: vec![
                StatementDep {
                    key: "header".into(),
                    revision: "d".repeat(32),
                },
                StatementDep {
                    key: "rule/0/text".into(),
                    revision: "e".repeat(32),
                },
            ],
        }
    }

    #[test]
    fn memo_round_trip() {
        let memo = sample();
        assert_eq!(decode_memo(&encode_memo(&memo)).unwrap(), memo);
        let mut low = sample();
        low.durability = Durability::Low;
        low.has_mpiio = true;
        low.deps.clear();
        assert_eq!(decode_memo(&encode_memo(&low)).unwrap(), low);
    }

    #[test]
    fn corrupt_memos_are_rejected() {
        let bytes = encode_memo(&sample());
        for cut in [0, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_memo(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        assert!(decode_memo(b"ion-memo v2\n").is_err());
        let tampered = String::from_utf8(bytes)
            .unwrap()
            .replace("durability high", "durability medium");
        assert!(decode_memo(tampered.as_bytes()).is_err());
    }
}
