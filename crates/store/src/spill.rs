//! Spill destination for out-of-core extraction: sealed chunks from
//! `extractor`'s [`ChunkedTableBuilder`](extractor::ChunkedTableBuilder)
//! land in a content-addressed [`ObjectDir`] and are reloaded on demand.
//!
//! The ticket key is the chunk's content digest, so identical chunks
//! (common in synthetic benchmarks and zero-filled regions) dedupe to a
//! single object on disk for free. Emits `store.chunks.spilled` and
//! `store.chunks.loaded` counters so the serve/CLI layers can report
//! how much of an ingest ran out of core.

use crate::digest::Digest;
use crate::disk::ObjectDir;
use crate::StoreError;
use extractor::{ChunkPager, ChunkTicket};
use std::io;
use std::path::Path;

/// A [`ChunkPager`] over a content-addressed object directory.
///
/// Chunks are opaque blobs here; encoding and decoding stay in
/// `extractor::chunked`. The directory may be shared with other spills
/// (content addressing keeps writers from clobbering each other), and
/// is typically a throwaway under the analysis scratch dir.
#[derive(Debug)]
pub struct SpillDir {
    objects: ObjectDir,
}

impl SpillDir {
    /// Open (creating lazily on first write) a spill directory rooted
    /// at `root`.
    #[must_use]
    pub fn new(root: &Path) -> SpillDir {
        SpillDir {
            objects: ObjectDir::new(root),
        }
    }

    /// The underlying object directory (e.g. for garbage collection).
    #[must_use]
    pub fn objects(&self) -> &ObjectDir {
        &self.objects
    }
}

fn to_io(err: StoreError) -> io::Error {
    io::Error::other(err.to_string())
}

impl ChunkPager for SpillDir {
    fn spill(&self, _table: &str, _seq: usize, bytes: &[u8]) -> io::Result<ChunkTicket> {
        let digest = self.objects.put(bytes).map_err(to_io)?;
        ion_obs::counter("store.chunks.spilled", 1);
        Ok(ChunkTicket {
            key: digest.hex(),
            rows: 0, // the builder stamps the row count
        })
    }

    fn load(&self, ticket: &ChunkTicket) -> io::Result<Vec<u8>> {
        let digest = Digest::from_hex(&ticket.key).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("spill ticket key is not a digest: {}", ticket.key),
            )
        })?;
        let bytes = self.objects.get(&digest).map_err(to_io)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("spilled chunk {} missing from object dir", ticket.key),
            )
        })?;
        ion_obs::counter("store.chunks.loaded", 1);
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::table_digest;
    use extractor::{ChunkedTableBuilder, Table, Value};
    use std::sync::Arc;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ion-spill-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_rows(n: i64) -> impl Iterator<Item = Vec<Value>> {
        (0..n).map(|i| {
            vec![
                Value::Int(i / 10),
                Value::Float(0.5 * ((i % 4) as f64)),
                Value::from(if i % 2 == 0 { "read" } else { "write" }),
            ]
        })
    }

    #[test]
    fn spilled_build_matches_in_memory_build() {
        let dir = scratch("roundtrip");
        let pager: Arc<dyn ChunkPager> = Arc::new(SpillDir::new(&dir));
        let cols = ["a", "x", "s"];
        let mut spilled = ChunkedTableBuilder::with_pager("T", &cols, 16, Arc::clone(&pager));
        let mut plain = Table::new("T", &cols);
        for row in sample_rows(100) {
            spilled.push_row(row.clone()).unwrap();
            plain.push_row(row);
        }
        let spilled = spilled.finish().unwrap();
        assert_eq!(spilled.len(), plain.len());
        for (a, b) in spilled.iter_rows().zip(plain.iter_rows()) {
            assert_eq!(a.to_vec(), b.to_vec());
        }
        // Digest stability: a table rebuilt through compressed, spilled
        // chunks hashes identically, so warm stores stay warm.
        assert_eq!(table_digest(&spilled), table_digest(&plain));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn identical_chunks_dedupe_by_content() {
        let dir = scratch("dedupe");
        let spill = SpillDir::new(&dir);
        let t0 = spill.spill("T", 0, b"same bytes").unwrap();
        let t1 = spill.spill("T", 1, b"same bytes").unwrap();
        assert_eq!(t0.key, t1.key);
        assert_eq!(spill.objects().list().unwrap().len(), 1);
        assert_eq!(spill.load(&t0).unwrap(), b"same bytes");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_or_malformed_tickets_error() {
        let dir = scratch("errors");
        let spill = SpillDir::new(&dir);
        let bogus = ChunkTicket {
            key: "not-a-digest".to_owned(),
            rows: 1,
        };
        assert_eq!(
            spill.load(&bogus).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        let gone = ChunkTicket {
            key: Digest([7; 32]).hex(),
            rows: 1,
        };
        assert_eq!(
            spill.load(&gone).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
