//! Spill destination for out-of-core extraction: sealed chunks from
//! `extractor`'s [`ChunkedTableBuilder`](extractor::ChunkedTableBuilder)
//! land in a content-addressed [`ObjectDir`] and are reloaded on demand.
//!
//! The ticket key is the chunk's content digest, so identical chunks
//! (common in synthetic benchmarks and zero-filled regions) dedupe to a
//! single object on disk for free. Emits `store.chunks.spilled` and
//! `store.chunks.loaded` counters so the serve/CLI layers can report
//! how much of an ingest ran out of core.
//!
//! A spill directory can share a [`Store`]'s object directory
//! ([`SpillDir::in_store`]). Spilled chunks have no manifest binding of
//! their own, so without care `Store::gc` would see live chunks as
//! unreferenced and delete them out from under their tickets. The
//! store-backed mode therefore *pins* each spilled chunk under a
//! session-scoped manifest key (`spill/<session>/<digest>`); dropping
//! the spill (or calling [`SpillDir::release`]) removes the pins so the
//! next gc can reclaim the dead chunks instead of leaking them.

use crate::digest::Digest;
use crate::disk::ObjectDir;
use crate::store::Store;
use crate::StoreError;
use extractor::{ChunkPager, ChunkTicket};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic per-process spill session counter, so two concurrent
/// spills into one store pin under distinct prefixes.
static SPILL_SESSIONS: AtomicU64 = AtomicU64::new(0);

/// A [`ChunkPager`] over a content-addressed object directory.
///
/// Chunks are opaque blobs here; encoding and decoding stay in
/// `extractor::chunked`. The directory may be shared with other spills
/// (content addressing keeps writers from clobbering each other), and
/// is typically a throwaway under the analysis scratch dir — or, via
/// [`SpillDir::in_store`], the store's own object directory with
/// gc-visible pins.
#[derive(Debug)]
pub struct SpillDir {
    objects: ObjectDir,
    pins: Option<SpillPins>,
}

#[derive(Debug)]
struct SpillPins {
    store: Arc<Store>,
    prefix: String,
    released: AtomicBool,
}

impl SpillDir {
    /// Open (creating lazily on first write) a spill directory rooted
    /// at `root`.
    #[must_use]
    pub fn new(root: &Path) -> SpillDir {
        SpillDir {
            objects: ObjectDir::new(root),
            pins: None,
        }
    }

    /// Spill into `store`'s object directory, pinning every spilled
    /// chunk under a session-scoped manifest key so `Store::gc` treats
    /// live spilled chunks as referenced. Pins are removed when the
    /// spill is dropped or [`SpillDir::release`]d.
    #[must_use]
    pub fn in_store(store: &Arc<Store>) -> SpillDir {
        let session = format!(
            "{}-{}",
            std::process::id(),
            SPILL_SESSIONS.fetch_add(1, Ordering::Relaxed)
        );
        SpillDir {
            objects: ObjectDir::new(store.root()),
            pins: Some(SpillPins {
                store: Arc::clone(store),
                prefix: format!("spill/{session}/"),
                released: AtomicBool::new(false),
            }),
        }
    }

    /// The underlying object directory (e.g. for garbage collection).
    #[must_use]
    pub fn objects(&self) -> &ObjectDir {
        &self.objects
    }

    /// Drop this spill's gc pins (store-backed mode only): the chunks
    /// become unreferenced and the next `Store::gc` reclaims them. Safe
    /// to call more than once; a no-op for plain directory spills.
    pub fn release(&self) -> Result<usize, StoreError> {
        let Some(pins) = &self.pins else {
            return Ok(0);
        };
        if pins.released.swap(true, Ordering::SeqCst) {
            return Ok(0);
        }
        pins.store.unbind_prefix(&pins.prefix)
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Best-effort: a pin left behind by a failed unbind only delays
        // reclamation until a future session's gc, never corrupts.
        let _ = self.release();
    }
}

fn to_io(err: StoreError) -> io::Error {
    io::Error::other(err.to_string())
}

impl ChunkPager for SpillDir {
    fn spill(&self, _table: &str, _seq: usize, bytes: &[u8]) -> io::Result<ChunkTicket> {
        let digest = self.objects.put(bytes).map_err(to_io)?;
        if let Some(pins) = &self.pins {
            pins.store
                .bind(&format!("{}{}", pins.prefix, digest.hex()), digest)
                .map_err(to_io)?;
        }
        ion_obs::counter("store.chunks.spilled", 1);
        Ok(ChunkTicket {
            key: digest.hex(),
            rows: 0, // the builder stamps the row count
        })
    }

    fn load(&self, ticket: &ChunkTicket) -> io::Result<Vec<u8>> {
        let digest = Digest::from_hex(&ticket.key).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("spill ticket key is not a digest: {}", ticket.key),
            )
        })?;
        let bytes = self.objects.get(&digest).map_err(to_io)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("spilled chunk {} missing from object dir", ticket.key),
            )
        })?;
        ion_obs::counter("store.chunks.loaded", 1);
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::table_digest;
    use extractor::{ChunkedTableBuilder, Table, Value};
    use std::sync::Arc;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ion-spill-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_rows(n: i64) -> impl Iterator<Item = Vec<Value>> {
        (0..n).map(|i| {
            vec![
                Value::Int(i / 10),
                Value::Float(0.5 * ((i % 4) as f64)),
                Value::from(if i % 2 == 0 { "read" } else { "write" }),
            ]
        })
    }

    #[test]
    fn spilled_build_matches_in_memory_build() {
        let dir = scratch("roundtrip");
        let pager: Arc<dyn ChunkPager> = Arc::new(SpillDir::new(&dir));
        let cols = ["a", "x", "s"];
        let mut spilled = ChunkedTableBuilder::with_pager("T", &cols, 16, Arc::clone(&pager));
        let mut plain = Table::new("T", &cols);
        for row in sample_rows(100) {
            spilled.push_row(row.clone()).unwrap();
            plain.push_row(row);
        }
        let spilled = spilled.finish().unwrap();
        assert_eq!(spilled.len(), plain.len());
        for (a, b) in spilled.iter_rows().zip(plain.iter_rows()) {
            assert_eq!(a.to_vec(), b.to_vec());
        }
        // Digest stability: a table rebuilt through compressed, spilled
        // chunks hashes identically, so warm stores stay warm.
        assert_eq!(table_digest(&spilled), table_digest(&plain));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn identical_chunks_dedupe_by_content() {
        let dir = scratch("dedupe");
        let spill = SpillDir::new(&dir);
        let t0 = spill.spill("T", 0, b"same bytes").unwrap();
        let t1 = spill.spill("T", 1, b"same bytes").unwrap();
        assert_eq!(t0.key, t1.key);
        assert_eq!(spill.objects().list().unwrap().len(), 1);
        assert_eq!(spill.load(&t0).unwrap(), b"same bytes");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_or_malformed_tickets_error() {
        let dir = scratch("errors");
        let spill = SpillDir::new(&dir);
        let bogus = ChunkTicket {
            key: "not-a-digest".to_owned(),
            rows: 1,
        };
        assert_eq!(
            spill.load(&bogus).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        let gone = ChunkTicket {
            key: Digest([7; 32]).hex(),
            rows: 1,
        };
        assert_eq!(
            spill.load(&gone).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_spares_live_spilled_chunks_and_reclaims_released_ones() {
        // Regression: SpillDir sharing a store's object dir used to
        // leave chunks unreferenced, so gc deleted them while tickets
        // were still live (and, conversely, a throwaway binding would
        // have leaked them forever).
        let dir = scratch("gc-pins");
        let store = Arc::new(Store::open(&dir).unwrap());
        store.put("artifact", b"ordinary store artifact").unwrap();
        let spill = SpillDir::in_store(&store);
        let ticket = spill.spill("T", 0, b"paged-out chunk bytes").unwrap();

        // Live spill: gc must not touch the chunk.
        let report = store.gc(false).unwrap();
        assert!(
            report.unreferenced.is_empty(),
            "gc stole live spilled chunks: {:?}",
            report.unreferenced
        );
        assert_eq!(spill.load(&ticket).unwrap(), b"paged-out chunk bytes");

        // Released spill: the pin is gone, gc reclaims the chunk, and
        // ordinary artifacts survive.
        let released = spill.release().unwrap();
        assert_eq!(released, 1);
        assert_eq!(spill.release().unwrap(), 0, "release is idempotent");
        let report = store.gc(false).unwrap();
        assert_eq!(report.unreferenced.len(), 1);
        assert!(spill.load(&ticket).is_err(), "dead chunk reclaimed");
        assert_eq!(
            &*store.get("artifact").unwrap().unwrap(),
            b"ordinary store artifact"
        );
        drop(spill);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropping_a_store_backed_spill_unpins_its_chunks() {
        let dir = scratch("gc-drop");
        let store = Arc::new(Store::open(&dir).unwrap());
        {
            let spill = SpillDir::in_store(&store);
            spill.spill("T", 0, b"short-lived chunk").unwrap();
            assert_eq!(store.gc(false).unwrap().unreferenced.len(), 0);
        }
        let report = store.gc(false).unwrap();
        assert_eq!(report.unreferenced.len(), 1, "drop released the pins");
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
