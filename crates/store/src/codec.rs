//! Artifact (de)serialization and domain digests.
//!
//! Three artifact kinds flow through the store:
//!
//! * **Tables** — the extracted [`TableSet`] plus the [`SystemParams`]
//!   derived from the decoded log, memoizing decode + extraction.
//! * **Diagnosis** — one per-issue [`Diagnosis`]. Only the raw
//!   completion, the typed metrics, the issue id and the context
//!   revision are stored; everything else is reconstructed through
//!   [`Diagnosis::parse`], exactly as the live analyzer does, so a
//!   cached diagnosis is bit-identical to a recomputed one.
//! * **Summary** — the global summary text.
//!
//! Formats are length-framed text (`magic v1` header, `\n`-separated
//! fields, byte-counted payloads) — human-greppable on disk, no
//! delimiter-escaping corner cases, versioned for forward rejection.
//!
//! Digests of domain objects live here too. Table digests fold rows
//! through [`UnorderedDigest`]: extraction may materialize rows in any
//! order under parallelism, and reordering rows must not invalidate
//! caches. Everything else (column sets, params, context text) hashes
//! in order, because order is meaning there.

use crate::digest::{Digest, Hasher, UnorderedDigest};
use crate::StoreError;
use extractor::csv::{from_csv, to_csv};
use extractor::TableSet;
use extractor::Value;
use ion::analyzer::SystemParams;
use ion::report::Diagnosis;

pub(crate) fn corrupt(what: &str) -> StoreError {
    StoreError::Corrupt(format!("malformed artifact: {what}"))
}

/// Split one `\n`-terminated header line off `rest`.
pub(crate) fn take_line<'a>(rest: &mut &'a [u8]) -> Result<&'a str, StoreError> {
    let pos = rest
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| corrupt("missing line terminator"))?;
    let (line, tail) = rest.split_at(pos);
    *rest = &tail[1..];
    std::str::from_utf8(line).map_err(|_| corrupt("non-UTF-8 header line"))
}

/// Split `len` payload bytes plus a trailing newline off `rest`.
pub(crate) fn take_payload<'a>(rest: &mut &'a [u8], len: usize) -> Result<&'a [u8], StoreError> {
    if rest.len() < len + 1 || rest[len] != b'\n' {
        return Err(corrupt("payload length mismatch"));
    }
    let (payload, tail) = rest.split_at(len);
    *rest = &tail[1..];
    Ok(payload)
}

// ---------------------------------------------------------------------
// System parameters
// ---------------------------------------------------------------------

/// Canonical single-line rendering of params. The runtime is encoded as
/// IEEE-754 bits so the round trip is exact (it participates in keys).
#[must_use]
pub fn params_line(p: &SystemParams) -> String {
    format!(
        "{} {} {} {:016x}",
        p.rpc_size,
        p.stripe_size,
        p.nprocs,
        p.runtime_seconds.to_bits()
    )
}

fn parse_params(line: &str) -> Result<SystemParams, StoreError> {
    let mut it = line.split(' ');
    let mut next = || it.next().ok_or_else(|| corrupt("short params line"));
    let rpc_size = next()?.parse().map_err(|_| corrupt("params rpc_size"))?;
    let stripe_size = next()?.parse().map_err(|_| corrupt("params stripe_size"))?;
    let nprocs = next()?.parse().map_err(|_| corrupt("params nprocs"))?;
    let bits = u64::from_str_radix(next()?, 16).map_err(|_| corrupt("params runtime"))?;
    Ok(SystemParams {
        rpc_size,
        stripe_size,
        nprocs,
        runtime_seconds: f64::from_bits(bits),
    })
}

/// Digest of the system parameters (part of every issue key: thresholds
/// reference `rpc_size` and friends, so different params are different
/// analyses).
#[must_use]
pub fn params_digest(p: &SystemParams) -> Digest {
    let mut h = Hasher::new();
    h.update(b"ion-store/params/1\n");
    h.update(params_line(p).as_bytes());
    h.finish()
}

// ---------------------------------------------------------------------
// Tables artifact
// ---------------------------------------------------------------------

/// Digest of one table: name and column set hash in order, rows fold
/// unordered (parallel extraction may emit them in any order).
#[must_use]
pub fn table_digest(table: &extractor::Table) -> Digest {
    let mut h = Hasher::new();
    h.update(b"ion-store/table/1");
    h.field(table.name.as_bytes());
    for c in &table.columns {
        h.field(c.name.as_bytes());
    }
    let mut rows = UnorderedDigest::new();
    for row in table.iter_rows() {
        let mut rh = Hasher::new();
        for v in row.values() {
            rh.field(v.to_string().as_bytes());
        }
        rows.absorb_digest(rh.finish());
    }
    h.update(&rows.finish().0);
    h.finish()
}

/// Digest of a whole table set: per-table digests combined in sorted
/// name order (the set is a map; name order carries no meaning, so a
/// canonical order makes the digest deterministic).
#[must_use]
pub fn tables_digest(tables: &TableSet) -> Digest {
    let mut h = Hasher::new();
    h.update(b"ion-store/tables/1");
    for (name, table) in tables.iter() {
        h.field(name.as_bytes());
        h.update(&table_digest(table).0);
    }
    h.finish()
}

/// Serialize the extraction stage's output: derived params + tables.
#[must_use]
pub fn encode_tables(tables: &TableSet, derived_params: &SystemParams) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"ion-tables v1\n");
    out.extend_from_slice(format!("params {}\n", params_line(derived_params)).as_bytes());
    for (name, table) in tables.iter() {
        let csv = to_csv(table);
        out.extend_from_slice(format!("table {name} {}\n", csv.len()).as_bytes());
        out.extend_from_slice(csv.as_bytes());
        out.push(b'\n');
    }
    out
}

/// Decode an extraction artifact.
pub fn decode_tables(bytes: &[u8]) -> Result<(TableSet, SystemParams), StoreError> {
    let mut rest = bytes;
    if take_line(&mut rest)? != "ion-tables v1" {
        return Err(corrupt("bad tables header"));
    }
    let params = parse_params(
        take_line(&mut rest)?
            .strip_prefix("params ")
            .ok_or_else(|| corrupt("missing params line"))?,
    )?;
    let mut tables = TableSet::default();
    while !rest.is_empty() {
        let line = take_line(&mut rest)?;
        let spec = line
            .strip_prefix("table ")
            .ok_or_else(|| corrupt("expected table line"))?;
        let (name, len) = spec
            .rsplit_once(' ')
            .ok_or_else(|| corrupt("bad table line"))?;
        let len: usize = len.parse().map_err(|_| corrupt("bad table length"))?;
        let csv = std::str::from_utf8(take_payload(&mut rest, len)?)
            .map_err(|_| corrupt("non-UTF-8 table payload"))?;
        let table = from_csv(name, csv).map_err(|e| corrupt(&format!("table {name}: {e}")))?;
        tables.insert(table);
    }
    Ok((tables, params))
}

// ---------------------------------------------------------------------
// Per-module table artifacts + trace meta (fine-grained stage 1)
// ---------------------------------------------------------------------

/// Serialize one extracted table on its own — the per-module stage-1
/// artifact. Issues that read only `POSIX` need never touch the bytes of
/// `DXT`, and a green revalidation pass needs no table bytes at all
/// (digests live in the [`TraceMeta`]).
#[must_use]
pub fn encode_table(table: &extractor::Table) -> Vec<u8> {
    let csv = to_csv(table);
    let mut out = Vec::with_capacity(csv.len() + 64);
    out.extend_from_slice(b"ion-table v1\n");
    out.extend_from_slice(format!("table {} {}\n", table.name, csv.len()).as_bytes());
    out.extend_from_slice(csv.as_bytes());
    out.push(b'\n');
    out
}

/// Decode a single-table artifact.
pub fn decode_table(bytes: &[u8]) -> Result<extractor::Table, StoreError> {
    let mut rest = bytes;
    if take_line(&mut rest)? != "ion-table v1" {
        return Err(corrupt("bad table header"));
    }
    let spec = take_line(&mut rest)?
        .strip_prefix("table ")
        .ok_or_else(|| corrupt("expected table line"))?;
    let (name, len) = spec
        .rsplit_once(' ')
        .ok_or_else(|| corrupt("bad table line"))?;
    let len: usize = len.parse().map_err(|_| corrupt("bad table length"))?;
    let name = name.to_owned();
    let csv = std::str::from_utf8(take_payload(&mut rest, len)?)
        .map_err(|_| corrupt("non-UTF-8 table payload"))?;
    from_csv(&name, csv).map_err(|e| corrupt(&format!("table {name}: {e}")))
}

/// One per-module table in a [`TraceMeta`]: the module name, the schema
/// version it was extracted under, and the content digest of its rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableEntry {
    /// Module/table name (`POSIX`, `DXT`, …).
    pub name: String,
    /// Extraction schema version ([`extractor::schema::module_version`]).
    pub version: u32,
    /// Content digest ([`table_digest`]) — what issue keys depend on.
    pub digest: Digest,
}

/// The fine-grained extraction record for one trace: derived system
/// parameters plus one [`TableEntry`] per recorded module. The table
/// *bytes* live in separate per-module artifacts; the meta alone is
/// enough to revalidate every downstream issue (digests compare equal →
/// green) without decoding a single row.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// System parameters derived from the decoded log.
    pub params: SystemParams,
    /// Per-module entries, in sorted table-name order.
    pub tables: Vec<TableEntry>,
}

impl TraceMeta {
    /// Content digest of one module's table, if recorded.
    #[must_use]
    pub fn digest_of(&self, module: &str) -> Option<Digest> {
        self.tables
            .iter()
            .find(|t| t.name == module)
            .map(|t| t.digest)
    }

    /// Whether the trace recorded `module` at all.
    #[must_use]
    pub fn has_module(&self, module: &str) -> bool {
        self.tables.iter().any(|t| t.name == module)
    }
}

/// Serialize a [`TraceMeta`].
#[must_use]
pub fn encode_trace_meta(meta: &TraceMeta) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"ion-trace-meta v1\n");
    out.extend_from_slice(format!("params {}\n", params_line(&meta.params)).as_bytes());
    for t in &meta.tables {
        out.extend_from_slice(
            format!("table {} {} {}\n", t.name, t.version, t.digest.hex()).as_bytes(),
        );
    }
    out
}

/// Decode a [`TraceMeta`].
pub fn decode_trace_meta(bytes: &[u8]) -> Result<TraceMeta, StoreError> {
    let mut rest = bytes;
    if take_line(&mut rest)? != "ion-trace-meta v1" {
        return Err(corrupt("bad trace-meta header"));
    }
    let params = parse_params(
        take_line(&mut rest)?
            .strip_prefix("params ")
            .ok_or_else(|| corrupt("missing params line"))?,
    )?;
    let mut tables = Vec::new();
    while !rest.is_empty() {
        let line = take_line(&mut rest)?;
        let spec = line
            .strip_prefix("table ")
            .ok_or_else(|| corrupt("expected meta table line"))?;
        let mut it = spec.split(' ');
        let name = it
            .next()
            .ok_or_else(|| corrupt("meta table name"))?
            .to_owned();
        let version: u32 = it
            .next()
            .ok_or_else(|| corrupt("meta table version"))?
            .parse()
            .map_err(|_| corrupt("meta table version"))?;
        let digest = it
            .next()
            .and_then(Digest::from_hex)
            .ok_or_else(|| corrupt("meta table digest"))?;
        tables.push(TableEntry {
            name,
            version,
            digest,
        });
    }
    Ok(TraceMeta { params, tables })
}

// ---------------------------------------------------------------------
// Diagnosis artifact
// ---------------------------------------------------------------------

fn encode_value(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("i\t{i}"),
        // Bit-exact float encoding: metric values flow back into Q&A and
        // must not drift through a decimal round trip.
        Value::Float(f) => format!("f\t{:016x}", f.to_bits()),
        Value::Str(s) => format!(
            "s\t{}",
            s.replace('\\', "\\\\")
                .replace('\n', "\\n")
                .replace('\t', "\\t")
        ),
        Value::Null => "n\t".to_owned(),
    }
}

fn decode_value(tag: &str, payload: &str) -> Result<Value, StoreError> {
    Ok(match tag {
        "i" => Value::Int(payload.parse().map_err(|_| corrupt("metric int"))?),
        "f" => Value::Float(f64::from_bits(
            u64::from_str_radix(payload, 16).map_err(|_| corrupt("metric float"))?,
        )),
        "s" => {
            let mut out = String::with_capacity(payload.len());
            let mut chars = payload.chars();
            while let Some(c) = chars.next() {
                if c != '\\' {
                    out.push(c);
                    continue;
                }
                match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('\\') => out.push('\\'),
                    _ => return Err(corrupt("metric string escape")),
                }
            }
            Value::Str(out.into())
        }
        "n" => Value::Null,
        _ => return Err(corrupt("metric tag")),
    })
}

/// Serialize a diagnosis as (issue, revision, metrics, raw completion).
#[must_use]
pub fn encode_diagnosis(d: &Diagnosis) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"ion-diagnosis v1\n");
    out.extend_from_slice(format!("issue {}\n", d.issue).as_bytes());
    out.extend_from_slice(format!("revision {}\n", d.context_revision).as_bytes());
    out.extend_from_slice(format!("metrics {}\n", d.metrics.len()).as_bytes());
    for (name, value) in &d.metrics {
        out.extend_from_slice(format!("{name}\t{}\n", encode_value(value)).as_bytes());
    }
    out.extend_from_slice(format!("raw {}\n", d.raw.len()).as_bytes());
    out.extend_from_slice(d.raw.as_bytes());
    out.push(b'\n');
    out
}

/// Decode a diagnosis artifact, reconstructing derived fields through
/// [`Diagnosis::parse`] just as the live analyzer does.
pub fn decode_diagnosis(bytes: &[u8]) -> Result<Diagnosis, StoreError> {
    let mut rest = bytes;
    if take_line(&mut rest)? != "ion-diagnosis v1" {
        return Err(corrupt("bad diagnosis header"));
    }
    let issue = take_line(&mut rest)?
        .strip_prefix("issue ")
        .ok_or_else(|| corrupt("missing issue line"))?
        .to_owned();
    let revision = take_line(&mut rest)?
        .strip_prefix("revision ")
        .ok_or_else(|| corrupt("missing revision line"))?
        .to_owned();
    let n_metrics: usize = take_line(&mut rest)?
        .strip_prefix("metrics ")
        .ok_or_else(|| corrupt("missing metrics line"))?
        .parse()
        .map_err(|_| corrupt("bad metrics count"))?;
    let mut metrics = Vec::with_capacity(n_metrics);
    for _ in 0..n_metrics {
        let line = take_line(&mut rest)?;
        let mut parts = line.splitn(3, '\t');
        let name = parts.next().ok_or_else(|| corrupt("metric name"))?;
        let tag = parts.next().ok_or_else(|| corrupt("metric tag"))?;
        let payload = parts.next().unwrap_or("");
        metrics.push((name.to_owned(), decode_value(tag, payload)?));
    }
    let raw_len: usize = take_line(&mut rest)?
        .strip_prefix("raw ")
        .ok_or_else(|| corrupt("missing raw line"))?
        .parse()
        .map_err(|_| corrupt("bad raw length"))?;
    let raw = std::str::from_utf8(take_payload(&mut rest, raw_len)?)
        .map_err(|_| corrupt("non-UTF-8 raw payload"))?;

    let mut d = Diagnosis::parse(raw);
    if d.issue.is_empty() {
        d.issue = issue;
    }
    d.context_revision = revision;
    d.metrics.extend(metrics);
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractor::Table;

    fn sample_tables() -> TableSet {
        let mut t = Table::new("POSIX", &["file_name", "rank", "POSIX_WRITES"]);
        t.push_row(vec!["/scratch/a".into(), Value::Int(0), Value::Int(12)]);
        t.push_row(vec!["/scratch/a".into(), Value::Int(1), Value::Int(3)]);
        let mut d = Table::new("DXT", &["rank", "offset", "length"]);
        d.push_row(vec![Value::Int(0), Value::Int(4096), Value::Int(17)]);
        let mut set = TableSet::default();
        set.insert(t);
        set.insert(d);
        set
    }

    #[test]
    fn tables_round_trip() {
        let tables = sample_tables();
        let params = SystemParams {
            rpc_size: 1 << 22,
            stripe_size: 1 << 20,
            nprocs: 64,
            runtime_seconds: 123.456,
        };
        let bytes = encode_tables(&tables, &params);
        let (back, back_params) = decode_tables(&bytes).unwrap();
        assert_eq!(back_params, params);
        assert_eq!(tables_digest(&back), tables_digest(&tables));
        assert_eq!(back.names(), tables.names());
        assert_eq!(back.get("POSIX").unwrap(), tables.get("POSIX").unwrap());
    }

    #[test]
    fn params_line_is_bit_exact() {
        let p = SystemParams {
            runtime_seconds: 0.1 + 0.2, // not representable exactly in decimal
            ..SystemParams::default()
        };
        assert_eq!(parse_params(&params_line(&p)).unwrap(), p);
    }

    #[test]
    fn table_digest_ignores_row_order() {
        let mut a = Table::new("T", &["x"]);
        a.push_row(vec![Value::Int(1)]);
        a.push_row(vec![Value::Int(2)]);
        let mut b = Table::new("T", &["x"]);
        b.push_row(vec![Value::Int(2)]);
        b.push_row(vec![Value::Int(1)]);
        assert_eq!(table_digest(&a), table_digest(&b));
    }

    #[test]
    fn table_digest_sees_content_and_schema() {
        let mut a = Table::new("T", &["x"]);
        a.push_row(vec![Value::Int(1)]);
        let mut b = Table::new("T", &["x"]);
        b.push_row(vec![Value::Int(2)]);
        assert_ne!(table_digest(&a), table_digest(&b));
        let c = Table::new("T", &["y"]);
        assert_ne!(table_digest(&Table::new("T", &["x"])), table_digest(&c));
    }

    #[test]
    fn diagnosis_round_trip() {
        let mut d = Diagnosis::parse(
            "ISSUE: small-io\nDETECTED: yes\nSEVERITY: high\nCONCLUSION: too many small ops\n",
        );
        d.issue = "small-io".into();
        d.context_revision = "abcdef012345".into();
        d.metrics.insert("small_pct".into(), Value::Float(81.25));
        d.metrics.insert("total_ops".into(), Value::Int(4096));
        d.metrics
            .insert("note".into(), Value::Str("line1\nline2\tend\\".into()));
        let back = decode_diagnosis(&encode_diagnosis(&d)).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn single_table_round_trip() {
        let tables = sample_tables();
        let posix = tables.get("POSIX").unwrap();
        let back = decode_table(&encode_table(posix)).unwrap();
        assert_eq!(&back, posix);
        assert_eq!(table_digest(&back), table_digest(posix));
    }

    #[test]
    fn trace_meta_round_trip() {
        let tables = sample_tables();
        let meta = TraceMeta {
            params: SystemParams {
                rpc_size: 1 << 22,
                stripe_size: 1 << 20,
                nprocs: 8,
                runtime_seconds: 0.1 + 0.2,
            },
            tables: tables
                .iter()
                .map(|(name, t)| TableEntry {
                    name: (*name).to_owned(),
                    version: 1,
                    digest: table_digest(t),
                })
                .collect(),
        };
        let back = decode_trace_meta(&encode_trace_meta(&meta)).unwrap();
        assert_eq!(back, meta);
        assert_eq!(
            back.digest_of("POSIX"),
            Some(table_digest(tables.get("POSIX").unwrap()))
        );
        assert!(back.has_module("DXT"));
        assert!(!back.has_module("MPIIO"));
        assert_eq!(back.digest_of("MPIIO"), None);
    }

    #[test]
    fn truncated_fine_artifacts_are_rejected() {
        let tables = sample_tables();
        let bytes = encode_table(tables.get("POSIX").unwrap());
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_table(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        assert!(decode_trace_meta(b"ion-trace-meta v2\n").is_err());
        assert!(decode_trace_meta(b"ion-trace-meta v1\nparams 1 2 3 zz\n").is_err());
        assert!(
            decode_trace_meta(b"ion-trace-meta v1\nparams 1 2 3 0000000000000000\ntable X\n")
                .is_err()
        );
    }

    #[test]
    fn truncated_artifacts_are_rejected() {
        let tables = sample_tables();
        let bytes = encode_tables(&tables, &SystemParams::default());
        for cut in [0, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_tables(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        assert!(decode_diagnosis(b"ion-diagnosis v1\n").is_err());
        assert!(decode_diagnosis(b"ion-diagnosis v2\nissue x\n").is_err());
    }
}
