//! The incremental driver: the ION pipeline with every stage memoized
//! through the store.
//!
//! Dependency keys (salsa-style, one per stage, each a digest of that
//! stage's *true* inputs):
//!
//! ```text
//! trace/<sha256(trace bytes)>
//!     → tables artifact (extracted TableSet + derived SystemParams)
//! issue/<id>/<tables digest>/<params digest>/<context revision>/<model>
//!     → diagnosis artifact
//! summary/<sha256(diagnosis raws…, model)>
//!     → summary text
//! ```
//!
//! Invalidation falls out of the keys: re-analyzing an unchanged trace
//! hits every stage; editing one issue context changes only that
//! context's revision, so exactly one issue key misses while every other
//! diagnosis (and usually the summary) is served from cache; changing
//! the model id or system parameters invalidates all analyses but not
//! the extraction.

use crate::codec::{
    decode_diagnosis, decode_tables, encode_diagnosis, encode_tables, params_digest, tables_digest,
};
use crate::digest::{digest_bytes, Hasher};
use crate::store::Store;
use crate::StoreError;
use darshan::log::LogReader;
use extractor::extract_tables;
use ion::analyzer::{applicable_contexts, Analyzer, SystemParams};
use ion::pipeline::{IonPipeline, IonReport};
use ion::report::Diagnosis;
use ion_llm::{DeterministicExpert, LanguageModel};
use std::path::Path;
use std::sync::Arc;

static DEFAULT_MODEL: DeterministicExpert = DeterministicExpert;

/// Model ids become key segments; forbid separator bytes.
fn key_safe(id: &str) -> String {
    id.replace(['/', '\t', '\n', ' '], "_")
}

/// The store-backed ION pipeline.
///
/// Configuration (parameter overrides, retrieval) is carried by an inner
/// [`IonPipeline`], so a stored run analyzes exactly what the plain
/// pipeline would — the store only decides what *not* to recompute.
pub struct StoredPipeline<'m> {
    store: Arc<Store>,
    pipeline: IonPipeline,
    model: &'m dyn LanguageModel,
    exec: ion_exec::Batch,
}

impl std::fmt::Debug for StoredPipeline<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoredPipeline")
            .field("store", &self.store.root())
            .field("model", &self.model.model_id())
            .finish()
    }
}

impl StoredPipeline<'static> {
    /// Store-backed pipeline with default configuration and the
    /// deterministic expert model.
    #[must_use]
    pub fn new(store: Arc<Store>) -> Self {
        StoredPipeline {
            store,
            pipeline: IonPipeline::new(),
            model: &DEFAULT_MODEL,
            exec: ion_exec::Batch::new(),
        }
    }
}

impl<'m> StoredPipeline<'m> {
    /// Replace the pipeline configuration (parameters, retrieval).
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: IonPipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Replace the execution policy (worker width, deadline, cancellation)
    /// for per-issue analysis dispatch.
    #[must_use]
    pub fn with_exec(mut self, exec: ion_exec::Batch) -> Self {
        self.exec = exec;
        self
    }

    /// Use a custom model backend (its `model_id` keys the cache).
    #[must_use]
    pub fn with_model<'n>(self, model: &'n dyn LanguageModel) -> StoredPipeline<'n> {
        StoredPipeline {
            store: self.store,
            pipeline: self.pipeline,
            model,
            exec: self.exec,
        }
    }

    /// The underlying store.
    #[must_use]
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Analyze serialized trace bytes, reusing every cached stage.
    pub fn analyze_bytes(&self, bytes: &[u8]) -> Result<IonReport, StoreError> {
        let mut run_span = ion_obs::span!("store.pipeline");
        let trace_digest = digest_bytes(bytes);
        run_span.attr("trace", trace_digest.short());

        // Stage 1 — decode + extract, keyed by the raw trace bytes.
        let trace_key = format!("trace/{}", trace_digest.hex());
        let tables_artifact = self.store.get_or_compute(&trace_key, || {
            ion_obs::counter("store.recompute.trace", 1);
            let mut span = ion_obs::span!("store.recompute", stage = "trace");
            span.attr("trace", trace_digest.short());
            let log = LogReader::read(bytes)
                .map_err(|e| StoreError::Pipeline(format!("cannot decode trace: {e}")))?;
            let tables = extract_tables(&log);
            let derived = SystemParams::from_log(&log);
            Ok(encode_tables(&tables, &derived))
        })?;
        let (tables, derived_params) = decode_tables(&tables_artifact)?;
        let params = self.pipeline.params_override().unwrap_or(derived_params);

        // Stage 2 — per-issue analyses, keyed by extracted content (not
        // trace bytes: two logs extracting identical tables share
        // analyses), parameters, context revision and model.
        let contexts = self.pipeline.contexts_for(&tables);
        let (applicable, skipped) = applicable_contexts(&contexts, &tables);
        let tables_d = tables_digest(&tables).hex();
        let params_d = params_digest(&params).hex();
        let model_id = key_safe(self.model.model_id());
        let analyzer = Analyzer::with_model(self.model);

        let parent = run_span.id();
        let outcomes = self.exec.map_ordered(&applicable, |context, ctx| {
            let key = format!(
                "issue/{}/{}/{}/{}/{}",
                context.id,
                tables_d,
                params_d,
                context.revision().hex(),
                model_id
            );
            let artifact = self.store.get_or_compute(&key, || {
                ion_obs::counter("store.recompute.issue", 1);
                let mut span = ion_obs::span_under(parent, "store.recompute");
                span.attr("stage", "issue");
                span.attr("issue", context.id);
                Ok(encode_diagnosis(&analyzer.analyze_issue_interruptible(
                    context,
                    &tables,
                    &params,
                    ctx.interrupt(),
                )))
            })?;
            decode_diagnosis(&artifact)
        });
        let mut diagnoses: Vec<Diagnosis> = Vec::with_capacity(applicable.len());
        for outcome in outcomes {
            diagnoses.push(match outcome {
                ion_exec::TaskOutcome::Ok(slot) => slot?,
                ion_exec::TaskOutcome::Panicked(msg) => {
                    return Err(StoreError::Pipeline(format!(
                        "analysis worker panicked: {msg}"
                    )))
                }
                ion_exec::TaskOutcome::Cancelled => return Err(StoreError::Cancelled),
                ion_exec::TaskOutcome::Deadlined => return Err(StoreError::Deadlined),
            });
        }

        // Stage 3 — summarization, keyed by what it actually reads: the
        // per-issue completions (not their revisions — a context edit
        // that leaves every diagnosis unchanged keeps the summary warm).
        let summary_key = {
            let mut h = Hasher::new();
            h.update(b"ion-store/summary/1");
            for d in &diagnoses {
                h.field(d.raw.as_bytes());
            }
            h.field(model_id.as_bytes());
            format!("summary/{}", h.finish().hex())
        };
        let summary_artifact = self.store.get_or_compute(&summary_key, || {
            ion_obs::counter("store.recompute.summary", 1);
            let mut span = ion_obs::span_under(parent, "store.recompute");
            span.attr("stage", "summary");
            Ok(analyzer.summarize(&diagnoses, &tables).into_bytes())
        })?;
        let summary = String::from_utf8(summary_artifact.to_vec())
            .map_err(|_| StoreError::Corrupt("summary artifact is not UTF-8".into()))?;

        Ok(IonReport {
            diagnoses,
            summary,
            skipped,
            params: Some(params),
        })
    }

    /// Analyze a trace file on disk.
    pub fn analyze_file(&self, path: impl AsRef<Path>) -> Result<IonReport, StoreError> {
        let path = path.as_ref();
        // Fault injection for integration tests: `ION_PANIC_TRACE=<name>`
        // panics the whole analysis of one trace, exercising batch-level
        // panic isolation (other traces must still produce reports).
        if let Ok(victim) = std::env::var("ION_PANIC_TRACE") {
            if path.file_name().is_some_and(|n| n == victim.as_str()) {
                panic!("injected panic for trace {victim}");
            }
        }
        let bytes = std::fs::read(path).map_err(|e| StoreError::Io {
            action: "read trace".into(),
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        self.analyze_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darshan::log::LogWriter;
    use iosim::{SimConfig, Simulation};

    fn trace_bytes() -> Vec<u8> {
        let mut sim = Simulation::new(SimConfig::default().with_ranks(2).with_exe("drv"));
        let f = sim.posix_open_all("/scratch/drv.dat").unwrap();
        for i in 0..16u64 {
            for rank in 0..2u32 {
                let base = u64::from(rank) * (8 << 20);
                sim.posix_write(rank, f, base + i * 1024, 1024).unwrap();
            }
        }
        sim.posix_close_all(f);
        LogWriter::from_log(sim.finish()).finish().unwrap()
    }

    fn tmp_store(tag: &str) -> Arc<Store> {
        let dir =
            std::env::temp_dir().join(format!("ion-store-driver-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(Store::open(dir).unwrap())
    }

    #[test]
    fn stored_report_matches_plain_pipeline() {
        let bytes = trace_bytes();
        let store = tmp_store("match");
        let driver = StoredPipeline::new(Arc::clone(&store));
        let cold = driver.analyze_bytes(&bytes).unwrap();
        let plain = IonPipeline::new().run_bytes(&bytes).unwrap();
        assert_eq!(cold.summary, plain.summary);
        assert_eq!(cold.skipped, plain.skipped);
        assert_eq!(cold.diagnoses, plain.diagnoses);
        // Warm run returns the identical report.
        let warm = driver.analyze_bytes(&bytes).unwrap();
        assert_eq!(warm, cold);
        let root = store.root().to_path_buf();
        drop((driver, store));
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn warm_store_survives_reopen() {
        let bytes = trace_bytes();
        let store = tmp_store("reopen");
        let root = store.root().to_path_buf();
        let cold = StoredPipeline::new(Arc::clone(&store))
            .analyze_bytes(&bytes)
            .unwrap();
        drop(store);
        let reopened = Arc::new(Store::open(&root).unwrap());
        let warm = StoredPipeline::new(reopened).analyze_bytes(&bytes).unwrap();
        assert_eq!(warm, cold);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn bad_trace_bytes_error_cleanly() {
        let store = tmp_store("bad");
        let driver = StoredPipeline::new(Arc::clone(&store));
        assert!(driver.analyze_bytes(&[0u8; 16]).is_err());
        let root = store.root().to_path_buf();
        drop((driver, store));
        let _ = std::fs::remove_dir_all(root);
    }
}
