//! The incremental driver: the ION pipeline with every stage memoized
//! through the store, revalidated red-green at statement granularity.
//!
//! Stage 1 (extraction) is keyed per module. One *meta* record per trace
//! lists the derived parameters and a content digest per recorded table,
//! with the table bytes in separate per-module artifacts:
//!
//! ```text
//! trace/<digest>/meta/<schema fingerprint>   → TraceMeta
//! trace/<digest>/table/<module>/<version>-<content digest> → one table
//! ```
//!
//! Warm paths read only the meta — digests are enough to prove every
//! downstream analysis green, so re-serving a warm report decodes zero
//! table rows. Bumping one module's schema version changes the schema
//! fingerprint and re-runs extraction once, but the re-extracted content
//! digests hash equal, so every dependent diagnosis stays green with
//! zero model runs (early cutoff at the extraction boundary).
//!
//! Stage 2 (per-issue analysis) is not looked up by one monolithic key.
//! Each analysis leaves an identity-keyed [`IssueMemo`] recording the
//! inputs it actually read — parameters digest, per-module table
//! digests, and the *consulted knowledge statements* of its context with
//! their revisions. Lookup walks the memo:
//!
//! * **green** — every recorded input revalidates equal; serve the
//!   cached diagnosis. High-durability memos (pristine builtin contexts)
//!   short-circuit the context check against a once-per-process revision
//!   cache instead of re-hashing text.
//! * **backdated** — the coarse context revision changed, but every
//!   *consulted* statement's revision is unchanged and no non-template
//!   statement was added or removed (whitespace edits, or edits to
//!   templates of rules that never fired). The old diagnosis is
//!   re-stamped and rebound under the new fingerprint: still no model
//!   run, and the next lookup is green.
//! * **red** — a consulted statement or non-context input is dirty;
//!   exactly those issues re-run the model.
//!
//! Revalidation runs inside the per-issue `ion-exec` dispatch, so a
//! report's issues revalidate in parallel. Stage 3 (summarization) stays
//! keyed by the diagnosis texts: backdated diagnoses have identical
//! text, so the summary stays warm through cosmetic context edits.

use crate::codec::{
    decode_diagnosis, decode_table, decode_tables, decode_trace_meta, encode_diagnosis,
    encode_table, encode_tables, encode_trace_meta, params_digest, table_digest, tables_digest,
    TableEntry, TraceMeta,
};
use crate::digest::{digest_bytes, Digest, Hasher};
use crate::memo::{decode_memo, encode_memo, Durability, IssueMemo, StatementDep};
use crate::store::Store;
use crate::StoreError;
use darshan::log::LogReader;
use extractor::{extract_tables, Table, TableSet};
use ion::analyzer::{applicable_contexts, Analyzer, SystemParams};
use ion::context::builtin_contexts;
use ion::pipeline::{IonPipeline, IonReport};
use ion::report::Diagnosis;
use ion::statements::{is_template_key, ContextStatements, StatementRevision};
use ion::IssueContext;
use ion_llm::{DeterministicExpert, LanguageModel};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, OnceLock};

static DEFAULT_MODEL: DeterministicExpert = DeterministicExpert;

/// Model ids become key segments; forbid separator bytes.
fn key_safe(id: &str) -> String {
    id.replace(['/', '\t', '\n', ' '], "_")
}

/// Once-per-process revision cache for the builtin context library: the
/// durability short-circuit. Builtin texts are compiled into the binary,
/// so their revisions cannot drift within a process; a high-durability
/// memo compares against this map instead of re-hashing context text on
/// every revalidation.
fn builtin_revisions() -> &'static BTreeMap<&'static str, String> {
    static CACHE: OnceLock<BTreeMap<&'static str, String>> = OnceLock::new();
    CACHE.get_or_init(|| {
        builtin_contexts()
            .iter()
            .map(|c| (c.id, c.revision().hex()))
            .collect()
    })
}

/// Whether `context` is byte-identical to the builtin of the same id —
/// the condition for recording a memo as high-durability.
fn is_pristine_builtin(context: &IssueContext) -> bool {
    ion::context::builtin_context(context.id).is_some_and(|b| b.text == context.text)
}

/// Statement split memoized on the exact text revision. Splitting costs
/// a spec parse plus one hash per statement, and a fleet rebuild
/// revalidates the same edited context once per trace — so the split is
/// computed once per (id, revision) and shared. Bounded at one entry
/// per context id: a newer revision of the same id evicts the older.
fn statements_for(context: &IssueContext) -> (String, Arc<ContextStatements>) {
    type SplitCache = BTreeMap<String, (String, Arc<ContextStatements>)>;
    static CACHE: OnceLock<parking_lot::Mutex<SplitCache>> = OnceLock::new();
    let revision = context.revision().hex();
    let cache = CACHE.get_or_init(|| parking_lot::Mutex::new(BTreeMap::new()));
    let mut map = cache.lock();
    if let Some((cached_revision, stmts)) = map.get(context.id) {
        if *cached_revision == revision {
            return (revision, Arc::clone(stmts));
        }
    }
    let stmts = Arc::new(ContextStatements::of(context));
    map.insert(
        context.id.to_owned(),
        (revision.clone(), Arc::clone(&stmts)),
    );
    (revision, stmts)
}

/// Manifest key of one per-module table artifact.
fn table_key(trace_hex: &str, entry: &TableEntry) -> String {
    format!(
        "trace/{trace_hex}/table/{}/{}-{}",
        entry.name,
        entry.version,
        entry.digest.hex()
    )
}

fn extract_from_bytes(bytes: &[u8]) -> Result<(TableSet, SystemParams), StoreError> {
    let log = LogReader::read(bytes)
        .map_err(|e| StoreError::Pipeline(format!("cannot decode trace: {e}")))?;
    let tables = extract_tables(&log);
    let derived = SystemParams::from_log(&log);
    Ok((tables, derived))
}

/// A table set with the right *names* but no rows: module presence is
/// all that applicability (and the prompt-level `has_mpiio` flag) needs,
/// and the meta carries presence without any table bytes.
fn skeleton_tables(meta: &TraceMeta) -> TableSet {
    let mut set = TableSet::default();
    for t in &meta.tables {
        set.insert(Table::new(&t.name, &[]));
    }
    set
}

/// Table bytes, loaded at most once per run and only when a cold or red
/// path actually needs rows (green and backdated paths never do).
struct LazyTables<'a> {
    store: &'a Store,
    bytes: &'a [u8],
    trace_hex: &'a str,
    meta: &'a TraceMeta,
    cell: OnceLock<TableSet>,
}

impl LazyTables<'_> {
    fn get(&self) -> Result<&TableSet, StoreError> {
        if let Some(tables) = self.cell.get() {
            return Ok(tables);
        }
        let loaded = self.load()?;
        Ok(self.cell.get_or_init(|| loaded))
    }

    fn load(&self) -> Result<TableSet, StoreError> {
        let mut set = TableSet::default();
        for entry in &self.meta.tables {
            let Some(artifact) = self.store.get(&table_key(self.trace_hex, entry))? else {
                return self.reextract();
            };
            set.insert(decode_table(&artifact)?);
        }
        Ok(set)
    }

    /// Self-heal: a per-module artifact was deleted externally (or by an
    /// over-eager gc). Re-extract from the trace bytes and rebind.
    fn reextract(&self) -> Result<TableSet, StoreError> {
        ion_obs::counter("store.recompute.trace", 1);
        let (tables, _params) = extract_from_bytes(self.bytes)?;
        for entry in &self.meta.tables {
            if let Some(table) = tables.get(&entry.name) {
                self.store
                    .put(&table_key(self.trace_hex, entry), &encode_table(table))?;
            }
        }
        Ok(tables)
    }
}

/// Fingerprint of everything one diagnosis depends on: parameters, the
/// prompt-level MPI-IO flag, the content digest of each module the issue
/// maps to (absent modules are a distinct input — the prompt says so),
/// and the context's statement fingerprint. Content-addresses the
/// diagnosis artifact, so flip-flopping an edit lands back on the
/// original artifact.
fn diag_fingerprint(
    params_d: &str,
    has_mpiio: bool,
    module_digests: &[(String, Option<Digest>)],
    ctx_fp: StatementRevision,
) -> String {
    let mut h = Hasher::new();
    h.update(b"ion-store/diag-fp/1");
    h.field(params_d.as_bytes());
    let mpiio_flag: &[u8] = if has_mpiio { b"mpiio" } else { b"no-mpiio" };
    h.field(mpiio_flag);
    for (name, digest) in module_digests {
        h.field(name.as_bytes());
        match digest {
            Some(d) => h.update(&d.0),
            None => h.field(b"absent"),
        }
    }
    h.field(ctx_fp.hex().as_bytes());
    h.finish().hex()
}

/// Outcome of walking one memo's recorded dependencies.
enum Verdict {
    Green,
    /// Context changed but no consulted statement did; carries the split
    /// statements so backdating doesn't re-split.
    Backdate(Arc<ContextStatements>),
    Red,
}

/// The store-backed ION pipeline.
///
/// Configuration (parameter overrides, retrieval) is carried by an inner
/// [`IonPipeline`], so a stored run analyzes exactly what the plain
/// pipeline would — the store only decides what *not* to recompute.
pub struct StoredPipeline<'m> {
    store: Arc<Store>,
    pipeline: IonPipeline,
    model: &'m dyn LanguageModel,
    exec: ion_exec::Batch,
    coarse: bool,
}

impl std::fmt::Debug for StoredPipeline<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoredPipeline")
            .field("store", &self.store.root())
            .field("model", &self.model.model_id())
            .field("coarse", &self.coarse)
            .finish()
    }
}

impl StoredPipeline<'static> {
    /// Store-backed pipeline with default configuration and the
    /// deterministic expert model.
    #[must_use]
    pub fn new(store: Arc<Store>) -> Self {
        StoredPipeline {
            store,
            pipeline: IonPipeline::new(),
            model: &DEFAULT_MODEL,
            exec: ion_exec::Batch::new(),
            coarse: false,
        }
    }
}

impl<'m> StoredPipeline<'m> {
    /// Replace the pipeline configuration (parameters, retrieval).
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: IonPipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Replace the execution policy (worker width, deadline, cancellation)
    /// for per-issue analysis dispatch.
    #[must_use]
    pub fn with_exec(mut self, exec: ion_exec::Batch) -> Self {
        self.exec = exec;
        self
    }

    /// Use the pre-statement coarse keying (one monolithic key per
    /// stage, whole-context revision, no memos, no revalidation). Kept
    /// as the baseline the `exp_incr` benchmark measures fine-grained
    /// red-green revalidation against.
    #[must_use]
    pub fn with_coarse(mut self, coarse: bool) -> Self {
        self.coarse = coarse;
        self
    }

    /// Use a custom model backend (its `model_id` keys the cache).
    #[must_use]
    pub fn with_model<'n>(self, model: &'n dyn LanguageModel) -> StoredPipeline<'n> {
        StoredPipeline {
            store: self.store,
            pipeline: self.pipeline,
            model,
            exec: self.exec,
            coarse: self.coarse,
        }
    }

    /// The underlying store.
    #[must_use]
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Analyze serialized trace bytes, reusing every cached stage.
    pub fn analyze_bytes(&self, bytes: &[u8]) -> Result<IonReport, StoreError> {
        let mut run_span = ion_obs::span!("store.pipeline");
        let trace_digest = digest_bytes(bytes);
        run_span.attr("trace", trace_digest.short());
        // Register the revalidation counters so a run with zero events
        // still exports them (metrics consumers assert on their values).
        for name in [
            "store.revalidate.green",
            "store.revalidate.red",
            "store.revalidate.backdated",
        ] {
            ion_obs::counter(name, 0);
        }
        // One trace touches a dozen keys (meta, tables, memos, diags,
        // summary); batch them into a single manifest save so warm
        // revalidation isn't dominated by whole-manifest rewrites.
        self.store.with_deferred_saves(|| {
            if self.coarse {
                self.analyze_coarse(bytes, &trace_digest, &run_span)
            } else {
                self.analyze_fine(bytes, &trace_digest, &run_span)
            }
        })
    }

    // -----------------------------------------------------------------
    // Fine-grained path (default): per-module stage 1, red-green stage 2
    // -----------------------------------------------------------------

    fn analyze_fine(
        &self,
        bytes: &[u8],
        trace_digest: &Digest,
        run_span: &ion_obs::SpanGuard<'_>,
    ) -> Result<IonReport, StoreError> {
        let trace_hex = trace_digest.hex();

        // Stage 1 — decode + extract, keyed per module under a schema
        // fingerprint. The meta alone (params + per-table digests) feeds
        // every warm path; table bytes load lazily below.
        let schema_fp = extractor::schema::schema_fingerprint();
        let meta_key = format!("trace/{trace_hex}/meta/{schema_fp}");
        let meta_artifact = self.store.get_or_compute(&meta_key, || {
            ion_obs::counter("store.recompute.trace", 1);
            let mut span = ion_obs::span!("store.recompute", stage = "trace");
            span.attr("trace", trace_digest.short());
            let (tables, derived) = extract_from_bytes(bytes)?;
            let mut entries = Vec::new();
            for (name, table) in tables.iter() {
                let entry = TableEntry {
                    name: (*name).to_owned(),
                    version: extractor::schema::module_version(name),
                    digest: table_digest(table),
                };
                // A schema bump re-keys the meta but re-extracted content
                // usually hashes equal: only write table bytes that are
                // actually new (early cutoff starts here).
                let key = table_key(&trace_hex, &entry);
                if self.store.get(&key)?.is_none() {
                    self.store.put(&key, &encode_table(table))?;
                }
                entries.push(entry);
            }
            Ok(encode_trace_meta(&TraceMeta {
                params: derived,
                tables: entries,
            }))
        })?;
        let meta = decode_trace_meta(&meta_artifact)?;
        let params = self.pipeline.params_override().unwrap_or(meta.params);

        let lazy = LazyTables {
            store: &self.store,
            bytes,
            trace_hex: &trace_hex,
            meta: &meta,
            cell: OnceLock::new(),
        };
        let skeleton = skeleton_tables(&meta);

        // Stage 2 — red-green revalidation per issue, in parallel over
        // the exec batch. Retrieval is the one configuration that needs
        // table contents before any issue runs.
        let contexts = if self.pipeline.retrieval_enabled() {
            self.pipeline.contexts_for(lazy.get()?)
        } else {
            self.pipeline.contexts_for(&skeleton)
        };
        let (applicable, skipped) = applicable_contexts(&contexts, &skeleton);
        let params_d = params_digest(&params).hex();
        let model_id = key_safe(self.model.model_id());
        let has_mpiio = meta.has_module("MPIIO");
        let builtin_library = self.pipeline.uses_builtin_contexts();
        let analyzer = Analyzer::with_model(self.model);

        let parent = run_span.id();
        let outcomes = self.exec.map_ordered(&applicable, |context, ctx| {
            let module_digests: Vec<(String, Option<Digest>)> = context
                .modules()
                .iter()
                .map(|m| (m.clone(), meta.digest_of(m)))
                .collect();
            let memo_key = format!("memo/{}/{}/{}", context.id, trace_hex, model_id);
            if let Some(memo_artifact) = self.store.get(&memo_key)? {
                if let Ok(memo) = decode_memo(&memo_artifact) {
                    match check_memo(
                        &memo,
                        context,
                        &model_id,
                        &params_d,
                        has_mpiio,
                        &module_digests,
                        builtin_library,
                    ) {
                        Verdict::Green => {
                            if let Some(artifact) = self.store.get(&memo.diag_key)? {
                                ion_obs::counter("store.revalidate.green", 1);
                                let mut d = decode_diagnosis(&artifact)?;
                                // The memo owns the revision stamp: after
                                // a backdate the artifact still carries
                                // the revision it was computed under.
                                d.context_revision = memo.raw_revision;
                                return Ok(d);
                            }
                            // Diagnosis artifact vanished externally:
                            // fall through and recompute below.
                        }
                        Verdict::Backdate(stmts) => {
                            if let Some(artifact) = self.store.get(&memo.diag_key)? {
                                ion_obs::counter("store.revalidate.backdated", 1);
                                let mut d = decode_diagnosis(&artifact)?;
                                // Re-stamp: the report is what a fresh
                                // run would produce, carrying the current
                                // context revision. The artifact itself
                                // stays put — immutable and still
                                // content-addressed by the inputs it was
                                // *computed* under — so backdating costs
                                // one memo write, no artifact rewrite.
                                d.context_revision = context.revision().hex();
                                // The consulted set is provably unchanged
                                // (every consulted revision revalidated
                                // equal), so the deps carry over.
                                let memo = IssueMemo {
                                    durability: if is_pristine_builtin(context) {
                                        Durability::High
                                    } else {
                                        Durability::Low
                                    },
                                    raw_revision: d.context_revision.clone(),
                                    ctx_fingerprint: stmts.fingerprint().hex(),
                                    ..memo
                                };
                                self.store.put(&memo_key, &encode_memo(&memo))?;
                                return Ok(d);
                            }
                        }
                        Verdict::Red => {
                            ion_obs::counter("store.revalidate.red", 1);
                        }
                    }
                }
            }
            self.compute_issue(
                context,
                &lazy,
                &params,
                &params_d,
                &model_id,
                has_mpiio,
                &module_digests,
                &memo_key,
                &analyzer,
                parent,
                ctx,
            )
        });
        let mut diagnoses: Vec<Diagnosis> = Vec::with_capacity(applicable.len());
        for outcome in outcomes {
            diagnoses.push(unwrap_outcome(outcome)?);
        }

        // Stage 3 — tables only back the tool runtime, so they load only
        // on a summary miss (never on a fully green re-serve).
        let summary = self.summary_stage(&diagnoses, &model_id, parent, || lazy.get())?;

        Ok(IonReport {
            diagnoses,
            summary,
            skipped,
            params: Some(params),
        })
    }

    /// Cold or red: run the model (memoized content-addressed), then
    /// record the dependency set the run consulted.
    #[allow(clippy::too_many_arguments)]
    fn compute_issue(
        &self,
        context: &IssueContext,
        lazy: &LazyTables<'_>,
        params: &SystemParams,
        params_d: &str,
        model_id: &str,
        has_mpiio: bool,
        module_digests: &[(String, Option<Digest>)],
        memo_key: &str,
        analyzer: &Analyzer<'_>,
        parent: Option<ion_obs::SpanId>,
        ctx: &ion_exec::TaskCtx,
    ) -> Result<Diagnosis, StoreError> {
        let (_, stmts) = statements_for(context);
        let diag_key = format!(
            "diag/{}/{}/{}",
            context.id,
            model_id,
            diag_fingerprint(params_d, has_mpiio, module_digests, stmts.fingerprint())
        );
        let artifact = self.store.get_or_compute(&diag_key, || {
            ion_obs::counter("store.recompute.issue", 1);
            let mut span = ion_obs::span_under(parent, "store.recompute");
            span.attr("stage", "issue");
            span.attr("issue", context.id);
            Ok(encode_diagnosis(&analyzer.analyze_issue_interruptible(
                context,
                lazy.get()?,
                params,
                ctx.interrupt(),
            )))
        })?;
        let diagnosis = decode_diagnosis(&artifact)?;

        // Record what the run consulted. The environment mirrors the
        // prompt builder's appended system parameters exactly, shadowed
        // by the metrics the run computed.
        let extra = [
            ("rpc_size", params.rpc_size as f64),
            ("stripe_size", params.stripe_size as f64),
            ("nprocs", f64::from(params.nprocs)),
            ("runtime", params.runtime_seconds),
            ("has_mpiio", if has_mpiio { 1.0 } else { 0.0 }),
        ];
        let deps = stmts
            .consulted(&extra, &diagnosis.metrics)
            .into_iter()
            .map(|key| {
                let revision = stmts.revision_of(&key).map(|r| r.hex()).unwrap_or_default();
                StatementDep { key, revision }
            })
            .collect();
        let memo = IssueMemo {
            issue: context.id.to_owned(),
            model: model_id.to_owned(),
            durability: if is_pristine_builtin(context) {
                Durability::High
            } else {
                Durability::Low
            },
            raw_revision: context.revision().hex(),
            ctx_fingerprint: stmts.fingerprint().hex(),
            params: params_d.to_owned(),
            has_mpiio,
            tables: module_digests.to_vec(),
            diag_key,
            deps,
        };
        self.store.put(memo_key, &encode_memo(&memo))?;
        Ok(diagnosis)
    }

    /// Stage 3 — summarization, keyed by what it actually reads: the
    /// per-issue completions (not their revisions — a context edit that
    /// leaves every diagnosis unchanged keeps the summary warm).
    fn summary_stage<'t>(
        &self,
        diagnoses: &[Diagnosis],
        model_id: &str,
        parent: Option<ion_obs::SpanId>,
        tables: impl FnOnce() -> Result<&'t TableSet, StoreError>,
    ) -> Result<String, StoreError> {
        let summary_key = {
            let mut h = Hasher::new();
            h.update(b"ion-store/summary/1");
            for d in diagnoses {
                h.field(d.raw.as_bytes());
            }
            h.field(model_id.as_bytes());
            format!("summary/{}", h.finish().hex())
        };
        let analyzer = Analyzer::with_model(self.model);
        let summary_artifact = self.store.get_or_compute(&summary_key, || {
            ion_obs::counter("store.recompute.summary", 1);
            let mut span = ion_obs::span_under(parent, "store.recompute");
            span.attr("stage", "summary");
            Ok(analyzer.summarize(diagnoses, tables()?).into_bytes())
        })?;
        String::from_utf8(summary_artifact.to_vec())
            .map_err(|_| StoreError::Corrupt("summary artifact is not UTF-8".into()))
    }

    // -----------------------------------------------------------------
    // Coarse baseline (pre-statement keying, `with_coarse(true)`)
    // -----------------------------------------------------------------

    fn analyze_coarse(
        &self,
        bytes: &[u8],
        trace_digest: &Digest,
        run_span: &ion_obs::SpanGuard<'_>,
    ) -> Result<IonReport, StoreError> {
        // Stage 1 — decode + extract, keyed by the raw trace bytes.
        let trace_key = format!("trace/{}", trace_digest.hex());
        let tables_artifact = self.store.get_or_compute(&trace_key, || {
            ion_obs::counter("store.recompute.trace", 1);
            let mut span = ion_obs::span!("store.recompute", stage = "trace");
            span.attr("trace", trace_digest.short());
            let (tables, derived) = extract_from_bytes(bytes)?;
            Ok(encode_tables(&tables, &derived))
        })?;
        let (tables, derived_params) = decode_tables(&tables_artifact)?;
        let params = self.pipeline.params_override().unwrap_or(derived_params);

        // Stage 2 — per-issue analyses under one monolithic key each:
        // extracted content, parameters, whole-context revision, model.
        let contexts = self.pipeline.contexts_for(&tables);
        let (applicable, skipped) = applicable_contexts(&contexts, &tables);
        let tables_d = tables_digest(&tables).hex();
        let params_d = params_digest(&params).hex();
        let model_id = key_safe(self.model.model_id());
        let analyzer = Analyzer::with_model(self.model);

        let parent = run_span.id();
        let outcomes = self.exec.map_ordered(&applicable, |context, ctx| {
            let key = format!(
                "issue/{}/{}/{}/{}/{}",
                context.id,
                tables_d,
                params_d,
                context.revision().hex(),
                model_id
            );
            let artifact = self.store.get_or_compute(&key, || {
                ion_obs::counter("store.recompute.issue", 1);
                let mut span = ion_obs::span_under(parent, "store.recompute");
                span.attr("stage", "issue");
                span.attr("issue", context.id);
                Ok(encode_diagnosis(&analyzer.analyze_issue_interruptible(
                    context,
                    &tables,
                    &params,
                    ctx.interrupt(),
                )))
            })?;
            decode_diagnosis(&artifact)
        });
        let mut diagnoses: Vec<Diagnosis> = Vec::with_capacity(applicable.len());
        for outcome in outcomes {
            diagnoses.push(unwrap_outcome(outcome)?);
        }

        let summary = self.summary_stage(&diagnoses, &model_id, parent, || Ok(&tables))?;

        Ok(IonReport {
            diagnoses,
            summary,
            skipped,
            params: Some(params),
        })
    }

    /// Analyze a trace file on disk.
    pub fn analyze_file(&self, path: impl AsRef<Path>) -> Result<IonReport, StoreError> {
        let path = path.as_ref();
        // Fault injection for integration tests: `ION_PANIC_TRACE=<name>`
        // panics the whole analysis of one trace, exercising batch-level
        // panic isolation (other traces must still produce reports).
        if let Ok(victim) = std::env::var("ION_PANIC_TRACE") {
            if path.file_name().is_some_and(|n| n == victim.as_str()) {
                panic!("injected panic for trace {victim}");
            }
        }
        let bytes = std::fs::read(path).map_err(|e| StoreError::Io {
            action: "read trace".into(),
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        self.analyze_bytes(&bytes)
    }
}

fn unwrap_outcome(
    outcome: ion_exec::TaskOutcome<Result<Diagnosis, StoreError>>,
) -> Result<Diagnosis, StoreError> {
    match outcome {
        ion_exec::TaskOutcome::Ok(slot) => slot,
        ion_exec::TaskOutcome::Panicked(msg) => Err(StoreError::Pipeline(format!(
            "analysis worker panicked: {msg}"
        ))),
        ion_exec::TaskOutcome::Cancelled => Err(StoreError::Cancelled),
        ion_exec::TaskOutcome::Deadlined => Err(StoreError::Deadlined),
    }
}

/// Walk one memo's recorded dependencies against the current inputs.
fn check_memo(
    memo: &IssueMemo,
    context: &IssueContext,
    model_id: &str,
    params_d: &str,
    has_mpiio: bool,
    module_digests: &[(String, Option<Digest>)],
    builtin_library: bool,
) -> Verdict {
    // Non-context inputs: parameters and per-module table digests. Table
    // digests come straight from the trace meta — content-addressed, so
    // this comparison is the whole validation (no row hashing).
    if memo.model != model_id
        || memo.params != params_d
        || memo.has_mpiio != has_mpiio
        || memo.tables != module_digests
    {
        return Verdict::Red;
    }
    // Context green fast path. High durability + the builtin library in
    // use means the context provably is the compiled-in builtin: compare
    // against the once-per-process cache without hashing any text.
    // Context green fast path first (no statement split): the builtin
    // short-circuit avoids even hashing text, and the revision from the
    // split cache is one hash of the whole context.
    if builtin_library && memo.durability == Durability::High {
        if builtin_revisions().get(context.id).map(String::as_str)
            == Some(memo.raw_revision.as_str())
        {
            return Verdict::Green;
        }
    } else if context.revision().hex() == memo.raw_revision {
        return Verdict::Green;
    }
    // The context text changed. Split it into statements (memoized per
    // revision) and walk the recorded consulted set: unchanged consulted
    // statements (plus no unconsulted-statement additions/removals
    // beyond rule templates) mean the completion is provably identical —
    // backdate.
    let (_, stmts) = statements_for(context);
    for dep in &memo.deps {
        match stmts.revision_of(&dep.key) {
            Some(rev) if rev.hex() == dep.revision => {}
            _ => return Verdict::Red,
        }
    }
    // Reverse direction: every current statement the expert renders
    // unconditionally must have been consulted (at the same revision —
    // checked above). A template only matters if its rule fired last
    // time, in which case it is in the deps.
    for s in stmts.statements() {
        if !is_template_key(&s.key) && !memo.deps.iter().any(|d| d.key == s.key) {
            return Verdict::Red;
        }
    }
    Verdict::Backdate(stmts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darshan::log::LogWriter;
    use iosim::{SimConfig, Simulation};

    fn trace_bytes() -> Vec<u8> {
        let mut sim = Simulation::new(SimConfig::default().with_ranks(2).with_exe("drv"));
        let f = sim.posix_open_all("/scratch/drv.dat").unwrap();
        for i in 0..16u64 {
            for rank in 0..2u32 {
                let base = u64::from(rank) * (8 << 20);
                sim.posix_write(rank, f, base + i * 1024, 1024).unwrap();
            }
        }
        sim.posix_close_all(f);
        LogWriter::from_log(sim.finish()).finish().unwrap()
    }

    fn tmp_store(tag: &str) -> Arc<Store> {
        let dir =
            std::env::temp_dir().join(format!("ion-store-driver-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(Store::open(dir).unwrap())
    }

    #[test]
    fn stored_report_matches_plain_pipeline() {
        let bytes = trace_bytes();
        let store = tmp_store("match");
        let driver = StoredPipeline::new(Arc::clone(&store));
        let cold = driver.analyze_bytes(&bytes).unwrap();
        let plain = IonPipeline::new().run_bytes(&bytes).unwrap();
        assert_eq!(cold.summary, plain.summary);
        assert_eq!(cold.skipped, plain.skipped);
        assert_eq!(cold.diagnoses, plain.diagnoses);
        // Warm run returns the identical report.
        let warm = driver.analyze_bytes(&bytes).unwrap();
        assert_eq!(warm, cold);
        let root = store.root().to_path_buf();
        drop((driver, store));
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn coarse_and_fine_agree() {
        let bytes = trace_bytes();
        let store = tmp_store("coarse");
        let fine = StoredPipeline::new(Arc::clone(&store))
            .analyze_bytes(&bytes)
            .unwrap();
        let coarse = StoredPipeline::new(Arc::clone(&store))
            .with_coarse(true)
            .analyze_bytes(&bytes)
            .unwrap();
        assert_eq!(coarse, fine);
        let root = store.root().to_path_buf();
        drop(store);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn warm_store_survives_reopen() {
        let bytes = trace_bytes();
        let store = tmp_store("reopen");
        let root = store.root().to_path_buf();
        let cold = StoredPipeline::new(Arc::clone(&store))
            .analyze_bytes(&bytes)
            .unwrap();
        drop(store);
        let reopened = Arc::new(Store::open(&root).unwrap());
        let warm = StoredPipeline::new(reopened).analyze_bytes(&bytes).unwrap();
        assert_eq!(warm, cold);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn bad_trace_bytes_error_cleanly() {
        let store = tmp_store("bad");
        let driver = StoredPipeline::new(Arc::clone(&store));
        assert!(driver.analyze_bytes(&[0u8; 16]).is_err());
        let root = store.root().to_path_buf();
        drop((driver, store));
        let _ = std::fs::remove_dir_all(root);
    }
}
