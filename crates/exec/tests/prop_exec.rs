//! Property/stress tests for `ion-exec`: under random task durations,
//! injected panics and every width from 1 to 8, `map_ordered` must
//! return exactly the outcomes of sequential execution, in input order.

use ion_exec::{Batch, TaskOutcome};
use proptest::prelude::*;
use std::time::Duration;

/// One synthetic task: busy-ish duration plus whether it panics.
#[derive(Debug, Clone)]
struct Spec {
    sleep_us: u64,
    panics: bool,
}

/// What sequential execution of `spec` at index `i` must produce.
fn expected(i: usize, spec: &Spec) -> TaskOutcome<usize> {
    if spec.panics {
        TaskOutcome::Panicked(format!("injected panic in task {i}"))
    } else {
        TaskOutcome::Ok(i * 7 + 1)
    }
}

fn run_spec(i: usize, spec: &Spec) -> usize {
    if spec.sleep_us > 0 {
        std::thread::sleep(Duration::from_micros(spec.sleep_us));
    }
    assert!(!spec.panics, "injected panic in task {i}");
    i * 7 + 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_outcomes_match_sequential(
        specs in proptest::collection::vec(
            (0u64..400, 0u32..100)
                .prop_map(|(sleep_us, p)| Spec { sleep_us, panics: p < 15 }),
            0..24,
        ),
        width in 1usize..=8,
    ) {
        let want: Vec<TaskOutcome<usize>> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| expected(i, s))
            .collect();
        let got = Batch::new()
            .with_width(width)
            .map_ordered(&specs, |spec, ctx| run_spec(ctx.index(), spec));
        prop_assert_eq!(got, want);
    }
}

/// A fixed high-contention stress case run outside proptest so `--release`
/// CI exercises it with many iterations: every width, panics sprinkled in,
/// results always identical to the sequential oracle.
#[test]
fn stress_every_width_agrees_with_sequential() {
    let specs: Vec<Spec> = (0u64..64)
        .map(|i| Spec {
            sleep_us: (i % 13) * 37,
            panics: i % 11 == 4,
        })
        .collect();
    let want: Vec<TaskOutcome<usize>> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| expected(i, s))
        .collect();
    for width in 1..=8 {
        let got = Batch::new()
            .with_width(width)
            .map_ordered(&specs, |spec, ctx| run_spec(ctx.index(), spec));
        assert_eq!(got, want, "width {width}");
    }
}
