//! Deadline semantics: a deadlined batch returns promptly with partial
//! results — completed items keep their values, un-started items resolve
//! to `Deadlined`, and nothing blocks on the work that was never begun.

use ion_exec::{Batch, CancelToken, Interrupt, TaskOutcome};
use std::time::{Duration, Instant};

#[test]
fn deadlined_batch_returns_partial_results_within_tolerance() {
    // 16 tasks × 40ms at width 2 would take ~320ms start to finish; a
    // 60ms deadline must cut the queue off long before that.
    let items: Vec<u32> = (0..16).collect();
    let t0 = Instant::now();
    let out = Batch::new()
        .with_width(2)
        .with_deadline(Duration::from_millis(60))
        .map_ordered(&items, |&i, _| {
            std::thread::sleep(Duration::from_millis(40));
            i
        });
    let elapsed = t0.elapsed();

    // Tolerance: the deadline plus one in-flight task per worker (tasks
    // already running are finished, not killed), with generous slack for
    // slow CI machines.
    assert!(
        elapsed < Duration::from_millis(60 + 40 + 400),
        "deadlined batch took {elapsed:?}"
    );

    let done = out.iter().filter(|o| o.is_ok()).count();
    let deadlined = out
        .iter()
        .filter(|o| matches!(o, TaskOutcome::Deadlined))
        .count();
    assert_eq!(done + deadlined, items.len());
    // Both workers finish their first task before the 60ms mark, and the
    // full batch can never finish inside it.
    assert!(done >= 2, "outcomes: {out:?}");
    assert!(deadlined >= 1, "outcomes: {out:?}");
    // Completed slots hold the right values in the right positions.
    for (i, o) in out.iter().enumerate() {
        if let TaskOutcome::Ok(v) = o {
            assert_eq!(*v, i as u32);
        }
    }
}

#[test]
fn running_task_observes_deadline_at_its_safe_point() {
    // One long task polls the interrupt mid-flight and stops itself.
    let items = [()];
    let out = Batch::new()
        .with_width(1)
        .with_deadline(Duration::from_millis(20))
        .map_ordered(&items, |(), ctx| {
            let mut polls = 0u32;
            loop {
                polls += 1;
                if ctx.check().is_err() || polls > 10_000 {
                    return polls;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        });
    match out[0] {
        TaskOutcome::Ok(polls) => assert!(polls <= 10_000, "interrupt never fired"),
        ref other => panic!("unexpected outcome {other:?}"),
    }
}

#[test]
fn interrupt_prefers_cancellation_over_deadline() {
    let token = CancelToken::new();
    token.cancel();
    let interrupt = Interrupt::none()
        .with_cancel(token)
        .with_deadline_at(Instant::now() - Duration::from_secs(1));
    assert_eq!(interrupt.check(), Err(ion_exec::Interrupted::Cancelled));
}
