//! Multi-tenant fair queue with admission control: the dispatch spine of
//! the `ion-serve` daemon.
//!
//! A [`FairQueue`] holds one FIFO per tenant and serves them by
//! **deficit round robin**: each tenant in the active ring accrues
//! `weight` units of deficit per scheduling round and spends one unit per
//! item served, so a tenant with weight 2 drains twice as fast as a
//! weight-1 peer while both are backlogged — and a single heavy tenant
//! can never starve a light one, whose items keep getting scheduled at
//! its fair share regardless of the heavy tenant's backlog.
//!
//! Admission is enforced at [`FairQueue::push`]: a global cap bounds the
//! whole queue and a per-tenant cap bounds each tenant's backlog, each
//! rejection typed ([`Rejected`]) so an HTTP front-end can map it to
//! `429 Too Many Requests` with an honest `Retry-After`.
//!
//! Shutdown is cooperative: [`FairQueue::close`] wakes every blocked
//! consumer, [`FairQueue::drain`] empties what never ran (so the caller
//! can mark those jobs cancelled), and [`FairQueue::pop`] returns `None`
//! once the queue is closed and empty.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The whole queue is at its global cap.
    QueueFull {
        /// Items currently queued.
        depth: usize,
        /// The global cap.
        cap: usize,
    },
    /// This tenant's backlog is at its per-tenant cap.
    TenantFull {
        /// The tenant at cap.
        tenant: String,
        /// Items this tenant has queued.
        depth: usize,
        /// The per-tenant cap.
        cap: usize,
    },
    /// The queue is closed (shutting down).
    Closed,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull { depth, cap } => {
                write!(f, "queue full ({depth} queued, cap {cap})")
            }
            Rejected::TenantFull { tenant, depth, cap } => {
                write!(f, "tenant {tenant} full ({depth} queued, cap {cap})")
            }
            Rejected::Closed => f.write_str("queue closed"),
        }
    }
}

impl std::error::Error for Rejected {}

struct TenantQueue<T> {
    items: VecDeque<T>,
    weight: u32,
    deficit: u32,
}

struct State<T> {
    tenants: HashMap<String, TenantQueue<T>>,
    /// Tenants with queued items, in scheduling order.
    ring: VecDeque<String>,
    len: usize,
    closed: bool,
}

/// A multi-tenant bounded queue with deficit-round-robin service order.
pub struct FairQueue<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    global_cap: usize,
    tenant_cap: usize,
}

impl<T> std::fmt::Debug for FairQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FairQueue")
            .field("global_cap", &self.global_cap)
            .field("tenant_cap", &self.tenant_cap)
            .field("len", &self.len())
            .finish()
    }
}

fn lock<'a, T>(m: &'a Mutex<State<T>>) -> std::sync::MutexGuard<'a, State<T>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<T> FairQueue<T> {
    /// A queue bounded to `global_cap` items total and `tenant_cap` items
    /// per tenant (`0` = unbounded for either).
    #[must_use]
    pub fn new(global_cap: usize, tenant_cap: usize) -> FairQueue<T> {
        FairQueue {
            state: Mutex::new(State {
                tenants: HashMap::new(),
                ring: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            global_cap,
            tenant_cap,
        }
    }

    /// Enqueue `item` for `tenant` at `weight` (clamped to ≥ 1; the
    /// latest weight a tenant pushes with wins). Returns the tenant's
    /// queue depth after the push.
    ///
    /// # Errors
    ///
    /// [`Rejected`] when the queue is closed or a cap is hit; the item is
    /// handed back untouched inside no state change.
    pub fn push(&self, tenant: &str, weight: u32, item: T) -> Result<usize, Rejected> {
        let mut state = lock(&self.state);
        if state.closed {
            return Err(Rejected::Closed);
        }
        if self.global_cap > 0 && state.len >= self.global_cap {
            ion_obs::counter("exec.fair.rejected", 1);
            return Err(Rejected::QueueFull {
                depth: state.len,
                cap: self.global_cap,
            });
        }
        let tenant_depth = state.tenants.get(tenant).map_or(0, |q| q.items.len());
        if self.tenant_cap > 0 && tenant_depth >= self.tenant_cap {
            ion_obs::counter("exec.fair.rejected", 1);
            return Err(Rejected::TenantFull {
                tenant: tenant.to_owned(),
                depth: tenant_depth,
                cap: self.tenant_cap,
            });
        }
        let weight = weight.max(1);
        match state.tenants.get_mut(tenant) {
            Some(q) => {
                q.weight = weight;
                q.items.push_back(item);
            }
            None => {
                let mut items = VecDeque::new();
                items.push_back(item);
                state.tenants.insert(
                    tenant.to_owned(),
                    TenantQueue {
                        items,
                        weight,
                        deficit: 0,
                    },
                );
                state.ring.push_back(tenant.to_owned());
            }
        }
        state.len += 1;
        let depth = state.tenants[tenant].items.len();
        ion_obs::gauge("exec.fair.depth", state.len as f64);
        drop(state);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Dequeue the next item in deficit-round-robin order, blocking up to
    /// `timeout` for one to arrive. `None` on timeout, or immediately
    /// once the queue is closed *and* empty (use [`FairQueue::is_closed`]
    /// to tell the cases apart).
    pub fn pop(&self, timeout: Duration) -> Option<(String, T)> {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.state);
        loop {
            if let Some(hit) = Self::pop_locked(&mut state) {
                ion_obs::gauge("exec.fair.depth", state.len as f64);
                return Some(hit);
            }
            if state.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timed_out) = self
                .cv
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = next;
            if timed_out.timed_out() && state.len == 0 && !state.closed {
                return None;
            }
        }
    }

    /// One DRR scheduling step over the active ring.
    fn pop_locked(state: &mut State<T>) -> Option<(String, T)> {
        loop {
            let tenant = state.ring.front()?.clone();
            let Some(q) = state.tenants.get_mut(&tenant) else {
                state.ring.pop_front();
                continue;
            };
            if q.items.is_empty() {
                // Fully drained tenant: retire it (weight re-registers on
                // its next push, deficit resets so idle tenants cannot
                // bank credit).
                state.ring.pop_front();
                state.tenants.remove(&tenant);
                continue;
            }
            if q.deficit == 0 {
                // New round for this tenant: grant its weight and move to
                // the back so peers get their grants too.
                q.deficit = q.weight;
                state.ring.rotate_left(1);
                continue;
            }
            q.deficit -= 1;
            let item = q.items.pop_front().expect("checked non-empty");
            if q.items.is_empty() {
                state.ring.pop_front();
                state.tenants.remove(&tenant);
            }
            state.len -= 1;
            return Some((tenant, item));
        }
    }

    /// Close the queue: pushes fail with [`Rejected::Closed`], blocked
    /// pops wake, and pops return `None` once the backlog is gone.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.cv.notify_all();
    }

    /// Remove and return every queued item (tenant, item), in DRR order.
    /// Typically called right after [`FairQueue::close`] so a shutting-
    /// down daemon can mark never-started work as cancelled.
    pub fn drain(&self) -> Vec<(String, T)> {
        let mut state = lock(&self.state);
        let mut out = Vec::with_capacity(state.len);
        while let Some(hit) = Self::pop_locked(&mut state) {
            out.push(hit);
        }
        ion_obs::gauge("exec.fair.depth", 0.0);
        out
    }

    /// Items queued across all tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.state).len
    }

    /// Is the queue empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items queued for one tenant.
    #[must_use]
    pub fn tenant_depth(&self, tenant: &str) -> usize {
        lock(&self.state)
            .tenants
            .get(tenant)
            .map_or(0, |q| q.items.len())
    }

    /// Has [`FairQueue::close`] been called?
    #[must_use]
    pub fn is_closed(&self) -> bool {
        lock(&self.state).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_single_tenant() {
        let q = FairQueue::new(0, 0);
        for i in 0..5 {
            q.push("a", 1, i).unwrap();
        }
        let popped: Vec<i32> = (0..5)
            .map(|_| q.pop(Duration::from_millis(10)).unwrap().1)
            .collect();
        assert_eq!(popped, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_weights_interleave() {
        let q = FairQueue::new(0, 0);
        for i in 0..3 {
            q.push("a", 1, format!("a{i}")).unwrap();
        }
        for i in 0..3 {
            q.push("b", 1, format!("b{i}")).unwrap();
        }
        let order: Vec<String> = (0..6)
            .map(|_| q.pop(Duration::from_millis(10)).unwrap().0)
            .collect();
        // Strict alternation while both are backlogged.
        assert_eq!(order, vec!["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn weights_bias_service_two_to_one() {
        let q = FairQueue::new(0, 0);
        for i in 0..6 {
            q.push("light", 1, format!("l{i}")).unwrap();
            q.push("heavy", 2, format!("h{i}")).unwrap();
        }
        // While both tenants are backlogged, every 3-item window serves
        // heavy twice and light once.
        let served: Vec<String> = (0..9)
            .map(|_| q.pop(Duration::from_millis(10)).unwrap().0)
            .collect();
        for window in served.chunks(3) {
            let heavy = window.iter().filter(|t| *t == "heavy").count();
            assert_eq!(heavy, 2, "window {window:?} of {served:?}");
        }
    }

    #[test]
    fn admission_caps_reject_typed() {
        let q = FairQueue::new(3, 2);
        q.push("a", 1, 0).unwrap();
        q.push("a", 1, 1).unwrap();
        assert_eq!(
            q.push("a", 1, 2),
            Err(Rejected::TenantFull {
                tenant: "a".into(),
                depth: 2,
                cap: 2
            })
        );
        q.push("b", 1, 3).unwrap();
        assert_eq!(
            q.push("c", 1, 4),
            Err(Rejected::QueueFull { depth: 3, cap: 3 })
        );
        // Service frees capacity again.
        let _ = q.pop(Duration::from_millis(10)).unwrap();
        q.push("c", 1, 5).unwrap();
    }

    #[test]
    fn close_wakes_and_drains() {
        let q: std::sync::Arc<FairQueue<u32>> = std::sync::Arc::new(FairQueue::new(0, 0));
        let waiter = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop(Duration::from_secs(60)))
        };
        q.push("a", 1, 1).unwrap();
        // The waiter takes the only item (or we race it and it blocks
        // again); either way close() must release it promptly.
        q.push("a", 1, 2).unwrap();
        q.close();
        assert!(q.push("a", 1, 3).is_err());
        let _ = waiter.join().unwrap();
        let rest = q.drain();
        assert!(rest.len() <= 2);
        assert!(q.pop(Duration::from_millis(1)).is_none());
        assert!(q.is_closed());
    }

    #[test]
    fn heavy_backlog_cannot_starve_light_tenant() {
        let q = FairQueue::new(0, 0);
        for i in 0..100 {
            q.push("heavy", 1, format!("h{i}")).unwrap();
        }
        q.push("light", 1, "l0".to_owned()).unwrap();
        // The light item is served within one round of the ring: at most
        // one heavy item (its deficit grant) can precede it.
        let mut position = None;
        for served in 0..3 {
            let (tenant, _) = q.pop(Duration::from_millis(10)).unwrap();
            if tenant == "light" {
                position = Some(served);
                break;
            }
        }
        assert!(
            position.is_some(),
            "light tenant not served within 3 pops of a 100-deep heavy backlog"
        );
    }
}
