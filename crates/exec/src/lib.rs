//! `ion-exec` — the shared execution layer for every parallel stage in
//! the ION pipeline.
//!
//! Before this crate existed the analyzer, the store driver and the
//! batch front-end each carried a private copy of the same chunked
//! scoped-thread loop: split the items into `width`-sized chunks, spawn
//! one thread per item, join the whole chunk before starting the next.
//! That shape has two structural problems this crate removes:
//!
//! - **Chunk barriers.** Joining per chunk means the slowest item gates
//!   every item in its chunk; with skewed per-item durations most
//!   workers idle at each barrier. Here a batch is a single shared
//!   injector queue (an atomic cursor over the input slice): a worker
//!   pulls the next item the moment it finishes the previous one, so
//!   wall clock tracks the critical path, not the sum of chunk maxima.
//! - **Panic aborts.** `handle.join().expect(…)` turns one panicking
//!   item into a crash of the whole run. Here every task runs under
//!   [`std::panic::catch_unwind`] and yields a [`TaskOutcome`]; the
//!   caller decides whether a panicked item degrades one result or the
//!   whole batch.
//!
//! On top of that the batch carries cooperative interruption — a
//! [`CancelToken`] and an optional deadline, checked before each task
//! starts and exposed to the task body (via [`TaskCtx`]) so long-running
//! work can stop at its own safe points — and publishes queue-depth,
//! wait-time and run-time instrumentation through the `ion-obs` registry
//! (`exec.*` gauges, counters and histograms; visible on the `/metrics`
//! endpoint like every other metric).
//!
//! [`Batch::map_ordered`] preserves input order and sequential
//! determinism: outcome `i` always corresponds to item `i`, and a batch
//! at width 1 produces exactly the outcomes of a plain sequential loop.
//!
//! Worker width follows one policy everywhere ([`width`]): the
//! `ION_WORKERS` environment variable when set, hardware parallelism
//! otherwise.

pub mod fair;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The pool width policy shared by every execution site: `ION_WORKERS`
/// (positive integer) when set, otherwise hardware parallelism with a
/// fallback of 2 when the hardware cannot be queried.
#[must_use]
pub fn width() -> usize {
    if let Ok(v) = std::env::var("ION_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
}

/// A cooperative cancellation handle. Clones share one flag; any clone
/// can cancel, and cancellation is permanent for the token's lifetime.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Tasks not yet started resolve to
    /// [`TaskOutcome::Cancelled`]; running tasks observe it at their next
    /// [`Interrupt::check`].
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a computation was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupted {
    /// The batch's [`CancelToken`] was cancelled.
    Cancelled,
    /// The batch's deadline passed.
    Deadlined,
}

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Interrupted::Cancelled => "cancelled",
            Interrupted::Deadlined => "deadlined",
        })
    }
}

impl std::error::Error for Interrupted {}

/// A cancellation token plus an absolute deadline, bundled so deep call
/// stacks (the LLM run loop, long extractions) can poll one object at
/// their safe points. The empty interrupt never fires, so plumbing it
/// unconditionally costs two branches per check.
#[derive(Clone, Debug, Default)]
pub struct Interrupt {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
}

impl Interrupt {
    /// An interrupt that never fires.
    #[must_use]
    pub fn none() -> Interrupt {
        Interrupt::default()
    }

    /// Fire when `token` is cancelled.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Interrupt {
        self.cancel = Some(token);
        self
    }

    /// Fire once `deadline` has passed.
    #[must_use]
    pub fn with_deadline_at(mut self, deadline: Instant) -> Interrupt {
        self.deadline = Some(deadline);
        self
    }

    /// `Err` when the computation should stop: cancellation wins over a
    /// deadline when both have fired (the caller asked first).
    pub fn check(&self) -> Result<(), Interrupted> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Err(Interrupted::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(Interrupted::Deadlined);
        }
        Ok(())
    }
}

/// The outcome of one task in a batch. `map_ordered` never loses a slot:
/// every input item gets exactly one outcome, in input order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskOutcome<T> {
    /// The task ran to completion.
    Ok(T),
    /// The task panicked; the payload is the rendered panic message.
    /// The rest of the batch is unaffected.
    Panicked(String),
    /// The batch was cancelled before this task started.
    Cancelled,
    /// The batch deadline passed before this task started.
    Deadlined,
}

impl<T> TaskOutcome<T> {
    /// The value, if the task completed.
    pub fn ok(self) -> Option<T> {
        match self {
            TaskOutcome::Ok(v) => Some(v),
            _ => None,
        }
    }

    /// Did the task complete?
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, TaskOutcome::Ok(_))
    }
}

/// Per-task context handed to the task body: the batch interrupt (for
/// cooperative checks at safe points), the task's input index, and the
/// request trace the task runs under (already installed on the worker
/// thread — exposed for explicit hand-offs to further threads).
#[derive(Debug)]
pub struct TaskCtx {
    interrupt: Interrupt,
    index: usize,
    trace: Option<ion_obs::TraceContext>,
}

impl TaskCtx {
    /// The batch interrupt, for handing down to inner loops.
    #[must_use]
    pub fn interrupt(&self) -> &Interrupt {
        &self.interrupt
    }

    /// Convenience for `self.interrupt().check()`.
    pub fn check(&self) -> Result<(), Interrupted> {
        self.interrupt.check()
    }

    /// Index of this task's item in the input slice.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The trace this task is attributed to, if any.
    #[must_use]
    pub fn trace(&self) -> Option<ion_obs::TraceContext> {
        self.trace
    }
}

/// Configuration for one batch of tasks: width, deadline, cancellation.
/// Cheap to clone; carries no threads of its own (workers are scoped to
/// each [`Batch::map_ordered`] call, so borrowed task state needs no
/// `'static` bound).
#[derive(Clone, Debug, Default)]
pub struct Batch {
    width: usize,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
    trace: Option<ion_obs::TraceContext>,
}

impl Batch {
    /// A batch at the default [`width`], no deadline, no cancellation.
    #[must_use]
    pub fn new() -> Batch {
        Batch::default()
    }

    /// Fix the worker count. `0` restores the [`width`] policy.
    #[must_use]
    pub fn with_width(mut self, width: usize) -> Batch {
        self.width = width;
        self
    }

    /// Give every `map_ordered` call this long from its start; items not
    /// begun by then resolve to [`TaskOutcome::Deadlined`].
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Batch {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Batch {
        self.cancel = Some(token);
        self
    }

    /// Attribute every task to `trace` explicitly. Without this, the
    /// calling thread's installed trace (if any) is captured at
    /// `map_ordered` time and propagated onto the workers, so spans and
    /// events from worker threads land in the submitting request's tree.
    #[must_use]
    pub fn with_trace(mut self, trace: ion_obs::TraceContext) -> Batch {
        self.trace = Some(trace);
        self
    }

    /// The configured deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The worker count a batch of `tasks` items would actually use:
    /// the configured (or policy) width, never more than the item count.
    #[must_use]
    pub fn effective_width(&self, tasks: usize) -> usize {
        let w = if self.width == 0 { width() } else { self.width };
        w.min(tasks.max(1))
    }

    /// Run `f` over every item of `items`, returning one [`TaskOutcome`]
    /// per item **in input order**.
    ///
    /// Items feed a shared injector queue: each worker takes the next
    /// un-started item as soon as it finishes its current one — no chunk
    /// barriers. A panicking task is caught and reported as
    /// [`TaskOutcome::Panicked`] without disturbing its peers. At an
    /// effective width of 1 the batch degenerates to a sequential loop
    /// on the calling thread with identical semantics, which is what
    /// makes `sequential == parallel` determinism tests meaningful.
    pub fn map_ordered<I, T, F>(&self, items: &[I], f: F) -> Vec<TaskOutcome<T>>
    where
        I: Sync,
        T: Send,
        F: Fn(&I, &TaskCtx) -> T + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let started = Instant::now();
        let mut interrupt = Interrupt::default();
        interrupt.cancel.clone_from(&self.cancel);
        interrupt.deadline = self.deadline.map(|d| started + d);
        let width = self.effective_width(items.len());
        let instrument = ion_obs::enabled();
        // Capture the request trace once on the submitting thread; each
        // worker installs it so spans/events attribute to the request.
        let trace = self.trace.or_else(ion_obs::current_trace);
        if instrument {
            ion_obs::gauge("exec.width", width as f64);
            ion_obs::gauge("exec.queue_depth", items.len() as f64);
        }

        let mut slots: Vec<Option<TaskOutcome<T>>> = Vec::new();
        slots.resize_with(items.len(), || None);
        if width <= 1 {
            for (i, slot) in slots.iter_mut().enumerate() {
                *slot = Some(run_task(
                    &items[i], i, &interrupt, &f, started, instrument, trace,
                ));
            }
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for _ in 0..width {
                    let (cursor, interrupt, f) = (&cursor, &interrupt, &f);
                    handles.push(scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            if instrument {
                                let left = items.len().saturating_sub(i + 1);
                                ion_obs::gauge("exec.queue_depth", left as f64);
                            }
                            local.push((
                                i,
                                run_task(&items[i], i, interrupt, f, started, instrument, trace),
                            ));
                        }
                        local
                    }));
                }
                for h in handles {
                    // Task panics are caught inside run_task, so a worker
                    // thread itself panicking would be a bug in this crate.
                    for (i, outcome) in h.join().expect("ion-exec worker panicked") {
                        slots[i] = Some(outcome);
                    }
                }
            });
        }
        if instrument {
            ion_obs::gauge("exec.queue_depth", 0.0);
        }
        slots.into_iter().flatten().collect()
    }
}

/// Render a panic payload the way the default hook would.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn run_task<I, T, F>(
    item: &I,
    index: usize,
    interrupt: &Interrupt,
    f: &F,
    batch_start: Instant,
    instrument: bool,
    trace: Option<ion_obs::TraceContext>,
) -> TaskOutcome<T>
where
    F: Fn(&I, &TaskCtx) -> T,
{
    // Install the request trace for the task's whole lifetime (restored
    // on return), so even the exec.* bookkeeping attributes correctly.
    let _trace_scope = trace.map(ion_obs::install_trace);
    match interrupt.check() {
        Err(Interrupted::Cancelled) => {
            ion_obs::counter("exec.cancelled", 1);
            return TaskOutcome::Cancelled;
        }
        Err(Interrupted::Deadlined) => {
            ion_obs::counter("exec.deadlined", 1);
            return TaskOutcome::Deadlined;
        }
        Ok(()) => {}
    }
    if instrument {
        ion_obs::counter("exec.tasks", 1);
        let wait = u64::try_from(batch_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        ion_obs::observe("exec.wait_ns", wait);
    }
    let ctx = TaskCtx {
        interrupt: interrupt.clone(),
        index,
        trace,
    };
    let run_start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| f(item, &ctx)));
    if instrument {
        let ns = u64::try_from(run_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        ion_obs::observe("exec.run_ns", ns);
    }
    match outcome {
        Ok(v) => TaskOutcome::Ok(v),
        Err(payload) => {
            ion_obs::counter("exec.tasks.panicked", 1);
            TaskOutcome::Panicked(panic_message(payload.as_ref()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ion_workers_overrides_width() {
        // This is the only test in this binary touching the env var, so
        // the set/remove pair cannot race another width() call.
        std::env::set_var("ION_WORKERS", "3");
        assert_eq!(width(), 3);
        std::env::set_var("ION_WORKERS", "not a number");
        assert!(width() >= 1);
        std::env::remove_var("ION_WORKERS");
        // Hardware parallelism: at least one worker, whatever the host.
        assert!(width() >= 1);
    }

    #[test]
    fn map_ordered_preserves_order() {
        for w in [1, 2, 7] {
            let items: Vec<usize> = (0..23).collect();
            let out = Batch::new()
                .with_width(w)
                .map_ordered(&items, |&i, _| i * 10);
            let values: Vec<usize> = out.into_iter().map(|o| o.ok().unwrap()).collect();
            let expected: Vec<usize> = (0..23).map(|i| i * 10).collect();
            assert_eq!(values, expected, "width {w}");
        }
    }

    #[test]
    fn panics_are_isolated_per_task() {
        let items: Vec<u32> = (0..8).collect();
        let out = Batch::new().with_width(4).map_ordered(&items, |&i, _| {
            assert!(i != 3, "boom on 3");
            i + 100
        });
        for (i, o) in out.iter().enumerate() {
            match o {
                TaskOutcome::Ok(v) => assert_eq!(*v, i as u32 + 100),
                TaskOutcome::Panicked(msg) => {
                    assert_eq!(i, 3);
                    assert!(msg.contains("boom on 3"), "{msg}");
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn cancellation_skips_unstarted_tasks() {
        let token = CancelToken::new();
        let items: Vec<usize> = (0..4).collect();
        let cancel_from_task = token.clone();
        let out =
            Batch::new()
                .with_width(1)
                .with_cancel(token)
                .map_ordered(&items, move |&i, _| {
                    if i == 0 {
                        cancel_from_task.cancel();
                    }
                    i
                });
        assert_eq!(out[0], TaskOutcome::Ok(0));
        for o in &out[1..] {
            assert_eq!(*o, TaskOutcome::Cancelled);
        }
    }

    #[test]
    fn task_ctx_reports_index_and_interrupt() {
        let items = [10u8, 20u8];
        let out = Batch::new().with_width(1).map_ordered(&items, |&v, ctx| {
            assert!(ctx.check().is_ok());
            (v, ctx.index())
        });
        assert_eq!(out[0], TaskOutcome::Ok((10, 0)));
        assert_eq!(out[1], TaskOutcome::Ok((20, 1)));
    }

    #[test]
    fn empty_batch_is_empty() {
        let out = Batch::new().map_ordered(&[] as &[u8], |&v, _| v);
        assert!(out.is_empty());
    }

    #[test]
    fn effective_width_is_bounded_by_items() {
        let b = Batch::new().with_width(8);
        assert_eq!(b.effective_width(3), 3);
        assert_eq!(b.effective_width(100), 8);
        assert_eq!(b.effective_width(0), 1);
    }
}
