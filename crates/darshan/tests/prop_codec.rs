//! Property-based tests for the binary log codec.

use darshan::accum::{AlignmentSpec, PosixAccumulator};
use darshan::dxt::{DxtLayer, DxtRecord, DxtSegment, OpKind};
use darshan::log::{
    get_ivarint, get_string, get_uvarint, put_ivarint, put_string, put_uvarint, LogReader,
    LogWriter,
};
use darshan::records::{JobRecord, LustreRecord, MpiioRecord, PosixRecord, StdioRecord};
use proptest::prelude::*;

proptest! {
    #[test]
    fn uvarint_round_trips(v in any::<u64>()) {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, v);
        prop_assert_eq!(get_uvarint(&mut &buf[..]).unwrap(), v);
        // LEB128 of a u64 is at most 10 bytes.
        prop_assert!(buf.len() <= 10);
    }

    #[test]
    fn ivarint_round_trips(v in any::<i64>()) {
        let mut buf = Vec::new();
        put_ivarint(&mut buf, v);
        prop_assert_eq!(get_ivarint(&mut &buf[..]).unwrap(), v);
    }

    #[test]
    fn small_magnitudes_encode_short(v in -63i64..=63) {
        let mut buf = Vec::new();
        put_ivarint(&mut buf, v);
        prop_assert_eq!(buf.len(), 1);
    }

    #[test]
    fn string_round_trips(s in "\\PC{0,200}") {
        let mut buf = Vec::new();
        put_string(&mut buf, &s).unwrap();
        prop_assert_eq!(get_string(&mut &buf[..]).unwrap(), s);
    }

    #[test]
    fn varint_decoding_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
        let _ = get_uvarint(&mut &bytes[..]);
        let _ = get_ivarint(&mut &bytes[..]);
        let _ = get_string(&mut &bytes[..]);
    }
}

fn arb_segment() -> impl Strategy<Value = DxtSegment> {
    (0u64..1 << 44, 0u64..1 << 30, 0.0f64..1e6, 0.0f64..1e6).prop_map(|(offset, length, a, b)| {
        DxtSegment {
            offset,
            length,
            start_time: a.min(b),
            end_time: a.max(b),
        }
    })
}

fn arb_dxt_record() -> impl Strategy<Value = DxtRecord> {
    (
        any::<u64>(),
        0i32..4096,
        prop_oneof![Just(DxtLayer::Posix), Just(DxtLayer::MpiIo)],
        "[a-z0-9]{1,12}",
        proptest::collection::vec(arb_segment(), 0..24),
        proptest::collection::vec(arb_segment(), 0..24),
    )
        .prop_map(|(file_id, rank, layer, host, writes, reads)| {
            let mut r = DxtRecord::new(file_id, rank, layer, &host);
            for s in writes {
                r.push(OpKind::Write, s);
            }
            for s in reads {
                r.push(OpKind::Read, s);
            }
            r
        })
}

fn arb_posix_record() -> impl Strategy<Value = PosixRecord> {
    (
        any::<u64>(),
        -1i32..4096,
        proptest::collection::vec(any::<i64>(), darshan::counters::PosixCounter::COUNT),
        proptest::collection::vec(-1e12f64..1e12, darshan::counters::PosixFCounter::COUNT),
    )
        .prop_map(|(file_id, rank, counters, fcounters)| PosixRecord {
            file_id,
            rank,
            counters,
            fcounters,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_logs_round_trip(
        uid in any::<u32>(),
        job_id in any::<u64>(),
        nprocs in 1u32..4096,
        start in 0.0f64..2e9,
        dur in 0.0f64..1e5,
        exe in "[ -~]{0,80}",
        posix in proptest::collection::vec(arb_posix_record(), 0..8),
        dxt in proptest::collection::vec(arb_dxt_record(), 0..6),
        names in proptest::collection::vec((any::<u64>(), "[ -~]{1,60}"), 0..8),
        osts in proptest::collection::vec(0i64..512, 0..8),
    ) {
        let mut job = JobRecord::new(uid, job_id, nprocs);
        job.start_time = start;
        job.end_time = start + dur;
        job.exe = exe;
        let mut w = LogWriter::new(job);
        for (id, path) in names {
            w.register_name(id, &path);
        }
        for r in posix {
            w.add_posix_record(r);
        }
        for r in dxt {
            w.add_dxt_record(r);
        }
        w.add_mpiio_record(MpiioRecord::new(7, 0));
        w.add_stdio_record(StdioRecord::new(8, 1));
        w.add_lustre_record(LustreRecord::new(9, 0, 1 << 20, osts));
        let original = w.log().clone();
        let bytes = w.finish().unwrap();
        let decoded = LogReader::read(&bytes).unwrap();
        prop_assert_eq!(decoded, original);
    }

    #[test]
    fn truncation_never_panics_and_always_errors(
        cut in 0usize..200,
    ) {
        let mut w = LogWriter::new(JobRecord::new(1, 2, 3));
        w.register_name(5, "/a/b");
        let mut acc = PosixAccumulator::new(5, 0);
        acc.write(0, 100, 0.0, 0.1, true);
        w.add_posix_record(acc.finish());
        let bytes = w.finish().unwrap();
        let cut = cut.min(bytes.len().saturating_sub(1));
        // Any strict prefix must fail to decode, never panic.
        prop_assert!(LogReader::read(&bytes[..cut]).is_err());
    }

    #[test]
    fn single_byte_corruption_is_detected_or_changes_content(
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut w = LogWriter::new(JobRecord::new(1, 2, 3));
        w.register_name(5, "/a/b");
        let mut acc = PosixAccumulator::with_alignment(5, 0, AlignmentSpec::default());
        acc.write(0, 100, 0.0, 0.1, true);
        w.add_posix_record(acc.finish());
        let original = w.log().clone();
        let mut bytes = w.finish().unwrap();
        // Corrupt one byte past the 8-byte header.
        let pos = 8 + pos_seed % (bytes.len() - 8);
        bytes[pos] ^= flip;
        match LogReader::read(&bytes) {
            // Either the corruption is caught...
            Err(_) => {}
            // ...or it must not silently decode back to the original
            // (flipping a length byte can shift framing, but CRC guards
            // payload content).
            Ok(decoded) => prop_assert_ne!(decoded, original),
        }
    }
}
