//! Property-based tests for the instrumentation accumulators: the
//! invariants Darshan counters must satisfy for any operation stream.

use darshan::accum::{reduce_posix, AlignmentSpec, PosixAccumulator};
use darshan::counters::PosixCounter as C;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Op {
    write: bool,
    offset: u64,
    size: u64,
    mem_aligned: bool,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (any::<bool>(), 0u64..1 << 30, 0u64..1 << 22, any::<bool>()).prop_map(
            |(write, offset, size, mem_aligned)| Op {
                write,
                offset,
                size,
                mem_aligned,
            },
        ),
        0..64,
    )
}

fn run(ops: &[Op], alignment: AlignmentSpec) -> darshan::records::PosixRecord {
    let mut acc = PosixAccumulator::with_alignment(1, 0, alignment);
    acc.open(0.0, 0.001);
    let mut t = 0.001;
    for op in ops {
        let end = t + 0.001;
        if op.write {
            acc.write(op.offset, op.size, t, end, op.mem_aligned);
        } else {
            acc.read(op.offset, op.size, t, end, op.mem_aligned);
        }
        t = end;
    }
    acc.close(t, t + 0.001);
    acc.finish()
}

proptest! {
    #[test]
    fn counter_invariants_hold_for_any_stream(ops in arb_ops()) {
        let rec = run(&ops, AlignmentSpec::default());
        let reads = rec.get(C::POSIX_READS);
        let writes = rec.get(C::POSIX_WRITES);
        let n_reads = ops.iter().filter(|o| !o.write).count() as i64;
        let n_writes = ops.iter().filter(|o| o.write).count() as i64;
        prop_assert_eq!(reads, n_reads);
        prop_assert_eq!(writes, n_writes);

        // Bytes match the stream.
        let rbytes: u64 = ops.iter().filter(|o| !o.write).map(|o| o.size).sum();
        let wbytes: u64 = ops.iter().filter(|o| o.write).map(|o| o.size).sum();
        prop_assert_eq!(rec.get(C::POSIX_BYTES_READ), rbytes as i64);
        prop_assert_eq!(rec.get(C::POSIX_BYTES_WRITTEN), wbytes as i64);

        // Consecutive ⊆ sequential ⊆ (ops - 1) per direction.
        prop_assert!(rec.get(C::POSIX_CONSEC_READS) <= rec.get(C::POSIX_SEQ_READS));
        prop_assert!(rec.get(C::POSIX_CONSEC_WRITES) <= rec.get(C::POSIX_SEQ_WRITES));
        prop_assert!(rec.get(C::POSIX_SEQ_READS) <= (reads - 1).max(0));
        prop_assert!(rec.get(C::POSIX_SEQ_WRITES) <= (writes - 1).max(0));

        // Histograms partition the operations.
        let read_hist: i64 = (0..10)
            .map(|i| rec.counters[C::POSIX_SIZE_READ_0_100.index() + i])
            .sum();
        let write_hist: i64 = (0..10)
            .map(|i| rec.counters[C::POSIX_SIZE_WRITE_0_100.index() + i])
            .sum();
        prop_assert_eq!(read_hist, reads);
        prop_assert_eq!(write_hist, writes);

        // Alignment counters bounded by op count.
        prop_assert!(rec.get(C::POSIX_FILE_NOT_ALIGNED) <= reads + writes);
        prop_assert!(rec.get(C::POSIX_MEM_NOT_ALIGNED) <= reads + writes);

        // RW switches bounded by ops - 1.
        prop_assert!(rec.get(C::POSIX_RW_SWITCHES) <= (reads + writes - 1).max(0));

        // Top-4 access counts sum to at most the op count and are sorted.
        let a: Vec<i64> = [
            C::POSIX_ACCESS1_COUNT,
            C::POSIX_ACCESS2_COUNT,
            C::POSIX_ACCESS3_COUNT,
            C::POSIX_ACCESS4_COUNT,
        ]
        .iter()
        .map(|&c| rec.get(c))
        .collect();
        prop_assert!(a[0] >= a[1] && a[1] >= a[2] && a[2] >= a[3]);
        prop_assert!(a.iter().sum::<i64>() <= reads + writes);

        // Max byte counters reflect the stream.
        let max_w = ops
            .iter()
            .filter(|o| o.write && o.size > 0)
            .map(|o| o.offset + o.size - 1)
            .max()
            .map_or(0, |m| m as i64);
        prop_assert_eq!(rec.get(C::POSIX_MAX_BYTE_WRITTEN), max_w);

        // Time counters are non-negative and bounded by wall time.
        let ftime = rec.fget(darshan::counters::PosixFCounter::POSIX_F_READ_TIME)
            + rec.fget(darshan::counters::PosixFCounter::POSIX_F_WRITE_TIME);
        prop_assert!(ftime >= 0.0);
        prop_assert!(ftime <= 0.001 * ops.len() as f64 + 1e-9);
    }

    #[test]
    fn alignment_counter_matches_direct_computation(
        ops in arb_ops(),
        alignment_pow in 10u32..22,
    ) {
        let alignment = AlignmentSpec {
            file_alignment: 1 << alignment_pow,
            mem_alignment: 8,
        };
        let rec = run(&ops, alignment);
        let expected = ops
            .iter()
            .filter(|o| o.offset % (1 << alignment_pow) != 0)
            .count() as i64;
        prop_assert_eq!(rec.get(C::POSIX_FILE_NOT_ALIGNED), expected);
    }

    #[test]
    fn reduction_is_sum_preserving(
        streams in proptest::collection::vec(arb_ops(), 1..6),
    ) {
        let records: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(rank, ops)| {
                let mut acc = PosixAccumulator::new(1, rank as i32);
                let mut t = 0.0;
                for op in ops {
                    let end = t + 0.001;
                    if op.write {
                        acc.write(op.offset, op.size, t, end, op.mem_aligned);
                    } else {
                        acc.read(op.offset, op.size, t, end, op.mem_aligned);
                    }
                    t = end;
                }
                acc.finish()
            })
            .collect();
        let shared = reduce_posix(&records).unwrap();
        let total_ops: i64 = records
            .iter()
            .map(|r| r.get(C::POSIX_READS) + r.get(C::POSIX_WRITES))
            .sum();
        prop_assert_eq!(
            shared.get(C::POSIX_READS) + shared.get(C::POSIX_WRITES),
            total_ops
        );
        let total_bytes: i64 = records
            .iter()
            .map(|r| r.get(C::POSIX_BYTES_READ) + r.get(C::POSIX_BYTES_WRITTEN))
            .sum();
        prop_assert_eq!(
            shared.get(C::POSIX_BYTES_READ) + shared.get(C::POSIX_BYTES_WRITTEN),
            total_bytes
        );
        // Fastest/slowest are members of the rank set.
        let fastest = shared.get(C::POSIX_FASTEST_RANK);
        let slowest = shared.get(C::POSIX_SLOWEST_RANK);
        prop_assert!((0..records.len() as i64).contains(&fastest));
        prop_assert!((0..records.len() as i64).contains(&slowest));
        // Variance is non-negative.
        prop_assert!(
            shared.fget(darshan::counters::PosixFCounter::POSIX_F_VARIANCE_RANK_BYTES) >= 0.0
        );
    }
}
