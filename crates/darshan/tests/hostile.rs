//! Hostile-input tests for the binary log decoder: truncation at every
//! region boundary must surface as a typed [`DarshanError::Truncated`]
//! carrying the region name and offset, and lenient decoding must keep
//! the valid prefix.

use darshan::accum::{reduce_posix, try_reduce_posix, PosixAccumulator};
use darshan::counters::{ModuleId, PosixCounter};
use darshan::dxt::{DxtLayer, DxtRecord, DxtSegment, OpKind};
use darshan::heatmap::HeatmapAccumulator;
use darshan::log::{get_uvarint, LogReader, LogWriter};
use darshan::records::{JobRecord, LustreRecord, MpiioRecord, PosixRecord, StdioRecord};
use darshan::DarshanError;
use proptest::prelude::*;

/// A log exercising every region type: job, names, and all six modules.
fn full_log_bytes() -> Vec<u8> {
    let mut job = JobRecord::new(100, 42, 2).with_metadata("k", "v");
    job.start_time = 10.0;
    job.end_time = 20.0;
    job.exe = "ior".into();
    let mut w = LogWriter::new(job);
    let fid = darshan::record_id("/scratch/a.dat");
    w.register_name(fid, "/scratch/a.dat");

    let mut acc = PosixAccumulator::new(fid, 0);
    acc.open(0.0, 0.01);
    acc.write(0, 4096, 0.01, 0.02, true);
    acc.close(0.02, 0.03);
    w.add_posix_record(acc.finish());

    w.add_mpiio_record(MpiioRecord::new(fid, 0));
    w.add_stdio_record(StdioRecord::new(fid, 0));
    w.add_lustre_record(LustreRecord::new(fid, 0, 1 << 20, vec![0, 1]));

    let mut dxt = DxtRecord::new(fid, 0, DxtLayer::Posix, "n0");
    dxt.push(
        OpKind::Write,
        DxtSegment {
            offset: 0,
            length: 4096,
            start_time: 0.01,
            end_time: 0.02,
        },
    );
    w.add_dxt_record(dxt);

    let mut hm = HeatmapAccumulator::new(0);
    hm.observe(true, 4096, 0.01, 0.02);
    w.add_heatmap_record(hm.finish());

    w.finish().unwrap()
}

/// Walk the serialized frame sequence, returning `(tag, frame_start)` for
/// every region (frame_start is the byte offset of the tag byte).
fn region_frames(bytes: &[u8]) -> Vec<(u8, usize)> {
    let mut frames = Vec::new();
    let mut pos = 8usize; // skip header
    while pos < bytes.len() {
        let tag = bytes[pos];
        if tag == 0xff {
            break;
        }
        let mut p = &bytes[pos + 1..];
        let before = p.len();
        let len = get_uvarint(&mut p).unwrap() as usize;
        let varint_len = before - p.len();
        frames.push((tag, pos));
        pos += 1 + varint_len + len + 4;
    }
    frames
}

#[test]
fn full_log_has_all_region_types() {
    let bytes = full_log_bytes();
    let tags: Vec<u8> = region_frames(&bytes).iter().map(|&(t, _)| t).collect();
    assert!(tags.contains(&0x10), "job region present");
    assert!(tags.contains(&0x11), "names region present");
    for m in ModuleId::ALL {
        assert!(tags.contains(&m.code()), "{} region present", m.name());
    }
}

/// Truncating inside any region's frame yields `Truncated` naming that
/// region and its start offset.
#[test]
fn truncation_in_each_region_is_typed_with_context() {
    let bytes = full_log_bytes();
    for (tag, start) in region_frames(&bytes) {
        let expected_region = match tag {
            0x10 => "job",
            0x11 => "names",
            t => ModuleId::from_code(t).unwrap().name(),
        };
        // Cut a few bytes into the frame: the tag survives but the
        // declared payload extends past the new EOF.
        let cut = start + 3;
        let err = LogReader::read(&bytes[..cut]).unwrap_err();
        match err {
            DarshanError::Truncated { region, offset } => {
                assert_eq!(region, expected_region, "cut at {cut}");
                assert_eq!(offset, start, "cut at {cut}");
            }
            other => panic!("expected Truncated for {expected_region}, got {other:?}"),
        }
    }
}

/// Every possible truncation point decodes to a typed error, never a panic,
/// and lenient decoding always succeeds past the header.
#[test]
fn every_truncation_point_is_survivable() {
    let bytes = full_log_bytes();
    for cut in 0..bytes.len() {
        let prefix = &bytes[..cut];
        // Strict: typed error (the log is incomplete by construction).
        assert!(LogReader::read(prefix).is_err(), "cut at {cut}");
        // Lenient: header intact ⇒ a partial log comes back.
        if cut >= 8 {
            let partial = LogReader::read_lenient(prefix).unwrap();
            assert!(!partial.is_complete(), "cut at {cut}");
        }
    }
}

/// Lenient decode of a log cut after the POSIX region still yields the job
/// record, names, and POSIX records — the valid prefix survives.
#[test]
fn lenient_decode_keeps_valid_prefix() {
    let bytes = full_log_bytes();
    let frames = region_frames(&bytes);
    // Find where the POSIX region ends (= start of the next frame).
    let posix_idx = frames
        .iter()
        .position(|&(t, _)| t == ModuleId::Posix.code())
        .unwrap();
    let cut = frames[posix_idx + 1].1 + 2; // a couple bytes into the next frame
    let partial = LogReader::read_lenient(&bytes[..cut]).unwrap();
    assert_eq!(partial.log.posix.len(), 1);
    assert_eq!(partial.log.names.len(), 1);
    assert_eq!(partial.log.job.job_id, 42);
    assert!(partial
        .errors
        .iter()
        .any(|e| matches!(e, DarshanError::Truncated { .. })));
}

/// A corrupt region in the middle is skipped leniently; later regions decode.
#[test]
fn lenient_decode_skips_corrupt_region_and_continues() {
    let bytes = full_log_bytes();
    let frames = region_frames(&bytes);
    let posix_start = frames
        .iter()
        .find(|&&(t, _)| t == ModuleId::Posix.code())
        .unwrap()
        .1;
    let mut corrupted = bytes.clone();
    corrupted[posix_start + 4] ^= 0xff; // damage the POSIX payload
    let partial = LogReader::read_lenient(&corrupted).unwrap();
    assert!(partial.log.posix.is_empty(), "corrupt region skipped");
    assert_eq!(partial.log.dxt.len(), 1, "later regions still decoded");
    assert_eq!(partial.log.heatmap.len(), 1);
    assert_eq!(partial.errors.len(), 1);
}

/// Declared region length near usize::MAX must not wrap the bounds check.
#[test]
fn huge_declared_length_is_truncation_not_panic() {
    let mut bytes = vec![b'D', b'S', b'H', b'N', 1, 0, 0, 0];
    bytes.push(0x10); // job tag
    bytes.extend_from_slice(&[0xff; 10]); // uvarint ~ u64::MAX
    let err = LogReader::read(&bytes).unwrap_err();
    assert!(
        matches!(
            err,
            DarshanError::Truncated { .. } | DarshanError::VarintOverflow
        ),
        "got {err:?}"
    );
}

proptest! {
    // Random extreme counters: infallible reduction saturates, checked
    // reduction reports a typed overflow — never a panic either way.
    #[test]
    fn reduction_of_extreme_counters_never_panics(
        seeds in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![
                    Just(i64::MAX),
                    Just(i64::MAX - 1),
                    Just(i64::MIN),
                    Just(0i64),
                    any::<i64>(),
                ],
                PosixCounter::COUNT..=PosixCounter::COUNT,
            ),
            1..5,
        ),
    ) {
        let records: Vec<PosixRecord> = seeds
            .iter()
            .enumerate()
            .map(|(rank, counters)| {
                let mut r = PosixRecord::new(7, rank as i32);
                r.counters.clone_from(counters);
                r
            })
            .collect();
        // Saturating path: must always produce a record.
        let reduced = reduce_posix(&records);
        prop_assert!(reduced.is_some());
        // Checked path: Ok or a typed Overflow, never a panic.
        match try_reduce_posix(&records) {
            Ok(r) => prop_assert!(r.is_some()),
            Err(e) => prop_assert!(matches!(e, DarshanError::Overflow { .. })),
        }
    }

    // Two maxed-out records always overflow the checked reducer on a
    // summed counter, and the saturating reducer pins at i64::MAX.
    #[test]
    fn checked_reduction_reports_overflow(rank_count in 2usize..5) {
        let records: Vec<PosixRecord> = (0..rank_count)
            .map(|rank| {
                let mut r = PosixRecord::new(7, rank as i32);
                for c in &mut r.counters {
                    *c = i64::MAX;
                }
                r
            })
            .collect();
        let err = try_reduce_posix(&records).unwrap_err();
        prop_assert!(matches!(err, DarshanError::Overflow { .. }));
        let reduced = reduce_posix(&records).unwrap();
        prop_assert_eq!(reduced.get(PosixCounter::POSIX_READS), i64::MAX);
    }
}
