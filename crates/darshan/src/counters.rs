//! Counter vocabularies of the Darshan instrumentation modules.
//!
//! Each Darshan module records a fixed array of integer counters and a fixed
//! array of floating-point counters per `(file, rank)` pair. The counter
//! names here follow the upstream Darshan definitions so that downstream
//! tooling (the ION extractor, Drishti triggers, issue contexts) can refer
//! to the exact identifiers that appear in real `darshan-parser` output.

use std::fmt;

/// Identifies a Darshan instrumentation module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModuleId {
    /// POSIX interface instrumentation (`read`, `write`, `open`, …).
    Posix,
    /// MPI-IO interface instrumentation (independent + collective ops).
    MpiIo,
    /// Standard C buffered I/O (`fread`, `fwrite`, …).
    Stdio,
    /// Lustre striping metadata captured at file open.
    Lustre,
    /// Darshan eXtended Tracing: per-operation segments.
    Dxt,
    /// Temporal heatmap: per-rank I/O volume binned over time.
    Heatmap,
}

impl ModuleId {
    /// All module ids, in log-serialization order.
    pub const ALL: [ModuleId; 6] = [
        ModuleId::Posix,
        ModuleId::MpiIo,
        ModuleId::Stdio,
        ModuleId::Lustre,
        ModuleId::Dxt,
        ModuleId::Heatmap,
    ];

    /// Stable numeric id used in the binary log format.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            ModuleId::Posix => 1,
            ModuleId::MpiIo => 2,
            ModuleId::Stdio => 3,
            ModuleId::Lustre => 4,
            ModuleId::Dxt => 5,
            ModuleId::Heatmap => 6,
        }
    }

    /// Inverse of [`ModuleId::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<ModuleId> {
        match code {
            1 => Some(ModuleId::Posix),
            2 => Some(ModuleId::MpiIo),
            3 => Some(ModuleId::Stdio),
            4 => Some(ModuleId::Lustre),
            5 => Some(ModuleId::Dxt),
            6 => Some(ModuleId::Heatmap),
            _ => None,
        }
    }

    /// Module name as it appears in `darshan-parser` output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ModuleId::Posix => "POSIX",
            ModuleId::MpiIo => "MPI-IO",
            ModuleId::Stdio => "STDIO",
            ModuleId::Lustre => "LUSTRE",
            ModuleId::Dxt => "DXT",
            ModuleId::Heatmap => "HEATMAP",
        }
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

macro_rules! define_counters {
    (
        $(#[$meta:meta])*
        $vis:vis enum $name:ident {
            $($(#[$vmeta:meta])* $variant:ident),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[allow(missing_docs)]
        // Variants deliberately mirror Darshan's SCREAMING_SNAKE counter names
        // so `stringify!` yields the exact identifiers of darshan-parser output.
        #[allow(non_camel_case_types)]
        #[repr(usize)]
        $vis enum $name {
            $($(#[$vmeta])* $variant),+
        }

        impl $name {
            /// Number of counters in this module.
            $vis const COUNT: usize = [$($name::$variant),+].len();

            /// All counters, in record order.
            $vis const ALL: [$name; $name::COUNT] = [$($name::$variant),+];

            /// The Darshan counter name (e.g. `POSIX_READS`).
            #[must_use]
            $vis fn name(self) -> &'static str {
                match self {
                    $($name::$variant => stringify!($variant)),+
                }
            }

            /// Position of this counter within the record array.
            #[must_use]
            $vis fn index(self) -> usize {
                self as usize
            }

            /// Counter at a given record-array position.
            #[must_use]
            $vis fn from_index(index: usize) -> Option<$name> {
                $name::ALL.get(index).copied()
            }

            /// Look a counter up by its Darshan name.
            #[must_use]
            $vis fn from_name(name: &str) -> Option<$name> {
                match name {
                    $(stringify!($variant) => Some($name::$variant),)+
                    _ => None,
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.name())
            }
        }
    };
}

define_counters! {
    /// Integer counters of the POSIX module.
    pub enum PosixCounter {
        POSIX_OPENS,
        POSIX_FILENOS,
        POSIX_DUPS,
        POSIX_READS,
        POSIX_WRITES,
        POSIX_SEEKS,
        POSIX_STATS,
        POSIX_MMAPS,
        POSIX_FSYNCS,
        POSIX_FDSYNCS,
        POSIX_RENAME_SOURCES,
        POSIX_RENAME_TARGETS,
        POSIX_MODE,
        POSIX_BYTES_READ,
        POSIX_BYTES_WRITTEN,
        POSIX_MAX_BYTE_READ,
        POSIX_MAX_BYTE_WRITTEN,
        POSIX_CONSEC_READS,
        POSIX_CONSEC_WRITES,
        POSIX_SEQ_READS,
        POSIX_SEQ_WRITES,
        POSIX_RW_SWITCHES,
        POSIX_MEM_NOT_ALIGNED,
        POSIX_MEM_ALIGNMENT,
        POSIX_FILE_NOT_ALIGNED,
        POSIX_FILE_ALIGNMENT,
        POSIX_MAX_READ_TIME_SIZE,
        POSIX_MAX_WRITE_TIME_SIZE,
        POSIX_SIZE_READ_0_100,
        POSIX_SIZE_READ_100_1K,
        POSIX_SIZE_READ_1K_10K,
        POSIX_SIZE_READ_10K_100K,
        POSIX_SIZE_READ_100K_1M,
        POSIX_SIZE_READ_1M_4M,
        POSIX_SIZE_READ_4M_10M,
        POSIX_SIZE_READ_10M_100M,
        POSIX_SIZE_READ_100M_1G,
        POSIX_SIZE_READ_1G_PLUS,
        POSIX_SIZE_WRITE_0_100,
        POSIX_SIZE_WRITE_100_1K,
        POSIX_SIZE_WRITE_1K_10K,
        POSIX_SIZE_WRITE_10K_100K,
        POSIX_SIZE_WRITE_100K_1M,
        POSIX_SIZE_WRITE_1M_4M,
        POSIX_SIZE_WRITE_4M_10M,
        POSIX_SIZE_WRITE_10M_100M,
        POSIX_SIZE_WRITE_100M_1G,
        POSIX_SIZE_WRITE_1G_PLUS,
        POSIX_STRIDE1_STRIDE,
        POSIX_STRIDE2_STRIDE,
        POSIX_STRIDE3_STRIDE,
        POSIX_STRIDE4_STRIDE,
        POSIX_STRIDE1_COUNT,
        POSIX_STRIDE2_COUNT,
        POSIX_STRIDE3_COUNT,
        POSIX_STRIDE4_COUNT,
        POSIX_ACCESS1_ACCESS,
        POSIX_ACCESS2_ACCESS,
        POSIX_ACCESS3_ACCESS,
        POSIX_ACCESS4_ACCESS,
        POSIX_ACCESS1_COUNT,
        POSIX_ACCESS2_COUNT,
        POSIX_ACCESS3_COUNT,
        POSIX_ACCESS4_COUNT,
        POSIX_FASTEST_RANK,
        POSIX_FASTEST_RANK_BYTES,
        POSIX_SLOWEST_RANK,
        POSIX_SLOWEST_RANK_BYTES,
    }
}

define_counters! {
    /// Floating-point counters of the POSIX module.
    pub enum PosixFCounter {
        POSIX_F_OPEN_START_TIMESTAMP,
        POSIX_F_READ_START_TIMESTAMP,
        POSIX_F_WRITE_START_TIMESTAMP,
        POSIX_F_CLOSE_START_TIMESTAMP,
        POSIX_F_OPEN_END_TIMESTAMP,
        POSIX_F_READ_END_TIMESTAMP,
        POSIX_F_WRITE_END_TIMESTAMP,
        POSIX_F_CLOSE_END_TIMESTAMP,
        POSIX_F_READ_TIME,
        POSIX_F_WRITE_TIME,
        POSIX_F_META_TIME,
        POSIX_F_MAX_READ_TIME,
        POSIX_F_MAX_WRITE_TIME,
        POSIX_F_FASTEST_RANK_TIME,
        POSIX_F_SLOWEST_RANK_TIME,
        POSIX_F_VARIANCE_RANK_TIME,
        POSIX_F_VARIANCE_RANK_BYTES,
    }
}

define_counters! {
    /// Integer counters of the MPI-IO module.
    pub enum MpiioCounter {
        MPIIO_INDEP_OPENS,
        MPIIO_COLL_OPENS,
        MPIIO_INDEP_READS,
        MPIIO_INDEP_WRITES,
        MPIIO_COLL_READS,
        MPIIO_COLL_WRITES,
        MPIIO_SPLIT_READS,
        MPIIO_SPLIT_WRITES,
        MPIIO_NB_READS,
        MPIIO_NB_WRITES,
        MPIIO_SYNCS,
        MPIIO_HINTS,
        MPIIO_VIEWS,
        MPIIO_MODE,
        MPIIO_BYTES_READ,
        MPIIO_BYTES_WRITTEN,
        MPIIO_RW_SWITCHES,
        MPIIO_MAX_READ_TIME_SIZE,
        MPIIO_MAX_WRITE_TIME_SIZE,
        MPIIO_SIZE_READ_AGG_0_100,
        MPIIO_SIZE_READ_AGG_100_1K,
        MPIIO_SIZE_READ_AGG_1K_10K,
        MPIIO_SIZE_READ_AGG_10K_100K,
        MPIIO_SIZE_READ_AGG_100K_1M,
        MPIIO_SIZE_READ_AGG_1M_4M,
        MPIIO_SIZE_READ_AGG_4M_10M,
        MPIIO_SIZE_READ_AGG_10M_100M,
        MPIIO_SIZE_READ_AGG_100M_1G,
        MPIIO_SIZE_READ_AGG_1G_PLUS,
        MPIIO_SIZE_WRITE_AGG_0_100,
        MPIIO_SIZE_WRITE_AGG_100_1K,
        MPIIO_SIZE_WRITE_AGG_1K_10K,
        MPIIO_SIZE_WRITE_AGG_10K_100K,
        MPIIO_SIZE_WRITE_AGG_100K_1M,
        MPIIO_SIZE_WRITE_AGG_1M_4M,
        MPIIO_SIZE_WRITE_AGG_4M_10M,
        MPIIO_SIZE_WRITE_AGG_10M_100M,
        MPIIO_SIZE_WRITE_AGG_100M_1G,
        MPIIO_SIZE_WRITE_AGG_1G_PLUS,
        MPIIO_ACCESS1_ACCESS,
        MPIIO_ACCESS2_ACCESS,
        MPIIO_ACCESS3_ACCESS,
        MPIIO_ACCESS4_ACCESS,
        MPIIO_ACCESS1_COUNT,
        MPIIO_ACCESS2_COUNT,
        MPIIO_ACCESS3_COUNT,
        MPIIO_ACCESS4_COUNT,
        MPIIO_FASTEST_RANK,
        MPIIO_FASTEST_RANK_BYTES,
        MPIIO_SLOWEST_RANK,
        MPIIO_SLOWEST_RANK_BYTES,
    }
}

define_counters! {
    /// Floating-point counters of the MPI-IO module.
    pub enum MpiioFCounter {
        MPIIO_F_OPEN_START_TIMESTAMP,
        MPIIO_F_READ_START_TIMESTAMP,
        MPIIO_F_WRITE_START_TIMESTAMP,
        MPIIO_F_CLOSE_START_TIMESTAMP,
        MPIIO_F_OPEN_END_TIMESTAMP,
        MPIIO_F_READ_END_TIMESTAMP,
        MPIIO_F_WRITE_END_TIMESTAMP,
        MPIIO_F_CLOSE_END_TIMESTAMP,
        MPIIO_F_READ_TIME,
        MPIIO_F_WRITE_TIME,
        MPIIO_F_META_TIME,
        MPIIO_F_MAX_READ_TIME,
        MPIIO_F_MAX_WRITE_TIME,
        MPIIO_F_FASTEST_RANK_TIME,
        MPIIO_F_SLOWEST_RANK_TIME,
        MPIIO_F_VARIANCE_RANK_TIME,
        MPIIO_F_VARIANCE_RANK_BYTES,
    }
}

define_counters! {
    /// Integer counters of the STDIO module.
    pub enum StdioCounter {
        STDIO_OPENS,
        STDIO_FDOPENS,
        STDIO_READS,
        STDIO_WRITES,
        STDIO_SEEKS,
        STDIO_FLUSHES,
        STDIO_BYTES_WRITTEN,
        STDIO_BYTES_READ,
        STDIO_MAX_BYTE_READ,
        STDIO_MAX_BYTE_WRITTEN,
        STDIO_FASTEST_RANK,
        STDIO_FASTEST_RANK_BYTES,
        STDIO_SLOWEST_RANK,
        STDIO_SLOWEST_RANK_BYTES,
    }
}

define_counters! {
    /// Floating-point counters of the STDIO module.
    pub enum StdioFCounter {
        STDIO_F_META_TIME,
        STDIO_F_WRITE_TIME,
        STDIO_F_READ_TIME,
        STDIO_F_OPEN_START_TIMESTAMP,
        STDIO_F_CLOSE_START_TIMESTAMP,
        STDIO_F_WRITE_START_TIMESTAMP,
        STDIO_F_READ_START_TIMESTAMP,
        STDIO_F_OPEN_END_TIMESTAMP,
        STDIO_F_CLOSE_END_TIMESTAMP,
        STDIO_F_WRITE_END_TIMESTAMP,
        STDIO_F_READ_END_TIMESTAMP,
        STDIO_F_FASTEST_RANK_TIME,
        STDIO_F_SLOWEST_RANK_TIME,
        STDIO_F_VARIANCE_RANK_TIME,
        STDIO_F_VARIANCE_RANK_BYTES,
    }
}

define_counters! {
    /// Integer counters of the Lustre module (striping metadata).
    pub enum LustreCounter {
        LUSTRE_OSTS,
        LUSTRE_MDTS,
        LUSTRE_STRIPE_OFFSET,
        LUSTRE_STRIPE_SIZE,
        LUSTRE_STRIPE_WIDTH,
    }
}

/// Size-histogram bin boundaries shared by the POSIX and MPI-IO modules.
///
/// Bin `i` counts operations whose size `s` satisfies
/// `SIZE_BIN_BOUNDS[i] <= s < SIZE_BIN_BOUNDS[i + 1]` (the last bin is
/// unbounded above).
pub const SIZE_BIN_BOUNDS: [u64; 10] = [
    0,
    100,
    1_024,
    10_240,
    102_400,
    1_048_576,
    4_194_304,
    10_485_760,
    104_857_600,
    1_073_741_824,
];

/// Index of the size-histogram bin a transfer of `size` bytes falls in.
///
/// ```
/// use darshan::counters::size_bin;
/// assert_eq!(size_bin(0), 0);
/// assert_eq!(size_bin(99), 0);
/// assert_eq!(size_bin(100), 1);
/// assert_eq!(size_bin(1 << 30), 9);
/// ```
#[must_use]
pub fn size_bin(size: u64) -> usize {
    match SIZE_BIN_BOUNDS.binary_search(&size) {
        Ok(i) => i,
        Err(i) => i - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_code_round_trips() {
        for m in ModuleId::ALL {
            assert_eq!(ModuleId::from_code(m.code()), Some(m));
        }
        assert_eq!(ModuleId::from_code(0), None);
        assert_eq!(ModuleId::from_code(99), None);
    }

    #[test]
    fn posix_counter_names_match_variants() {
        assert_eq!(PosixCounter::POSIX_READS.name(), "POSIX_READS");
        assert_eq!(
            PosixCounter::from_name("POSIX_FILE_NOT_ALIGNED"),
            Some(PosixCounter::POSIX_FILE_NOT_ALIGNED)
        );
        assert_eq!(PosixCounter::from_name("NOPE"), None);
    }

    #[test]
    fn counter_indices_are_dense_and_round_trip() {
        for (i, c) in PosixCounter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(PosixCounter::from_index(i), Some(*c));
        }
        assert_eq!(PosixCounter::from_index(PosixCounter::COUNT), None);
    }

    #[test]
    fn counter_counts() {
        assert_eq!(PosixCounter::COUNT, 68);
        assert_eq!(PosixFCounter::COUNT, 17);
        assert_eq!(MpiioCounter::COUNT, 51);
        assert_eq!(MpiioFCounter::COUNT, 17);
        assert_eq!(StdioCounter::COUNT, 14);
        assert_eq!(StdioFCounter::COUNT, 15);
        assert_eq!(LustreCounter::COUNT, 5);
    }

    #[test]
    fn size_bins_cover_all_boundaries() {
        assert_eq!(size_bin(0), 0);
        assert_eq!(size_bin(100), 1);
        assert_eq!(size_bin(1023), 1);
        assert_eq!(size_bin(1024), 2);
        assert_eq!(size_bin(10_240), 3);
        assert_eq!(size_bin(102_400), 4);
        assert_eq!(size_bin(1_048_576), 5);
        assert_eq!(size_bin(4_194_303), 5);
        assert_eq!(size_bin(4_194_304), 6);
        assert_eq!(size_bin(10_485_760), 7);
        assert_eq!(size_bin(104_857_600), 8);
        assert_eq!(size_bin(1_073_741_824), 9);
        assert_eq!(size_bin(u64::MAX), 9);
    }

    #[test]
    fn size_bin_counts_match_histogram_counters() {
        // The POSIX module dedicates exactly 10 bins to reads and 10 to writes.
        let read_bins = PosixCounter::ALL
            .iter()
            .filter(|c| c.name().starts_with("POSIX_SIZE_READ_"))
            .count();
        let write_bins = PosixCounter::ALL
            .iter()
            .filter(|c| c.name().starts_with("POSIX_SIZE_WRITE_"))
            .count();
        assert_eq!(read_bins, SIZE_BIN_BOUNDS.len());
        assert_eq!(write_bins, SIZE_BIN_BOUNDS.len());
    }

    #[test]
    fn histogram_counters_are_contiguous() {
        // accum relies on bin index arithmetic from the first histogram bin.
        let first = PosixCounter::POSIX_SIZE_READ_0_100.index();
        for i in 0..10 {
            let c = PosixCounter::from_index(first + i).unwrap();
            assert!(c.name().starts_with("POSIX_SIZE_READ_"), "{c}");
        }
        let first_w = PosixCounter::POSIX_SIZE_WRITE_0_100.index();
        assert_eq!(first_w, first + 10);
    }

    #[test]
    fn module_display_matches_parser_names() {
        assert_eq!(ModuleId::MpiIo.to_string(), "MPI-IO");
        assert_eq!(ModuleId::Posix.to_string(), "POSIX");
    }
}
