use std::fmt;

/// Error type for Darshan log encoding, decoding and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DarshanError {
    /// The log does not start with the expected magic bytes.
    BadMagic {
        /// The magic value found in the input.
        found: u32,
    },
    /// The log was written with a format version this reader cannot decode.
    UnsupportedVersion {
        /// The version found in the input.
        found: u16,
    },
    /// A checksummed region failed CRC verification.
    ChecksumMismatch {
        /// Name of the region that failed verification.
        region: &'static str,
        /// CRC stored in the log.
        expected: u32,
        /// CRC computed over the region contents.
        actual: u32,
    },
    /// The input ended before a complete value could be decoded.
    UnexpectedEof {
        /// What was being decoded when input ran out.
        decoding: &'static str,
    },
    /// A region's frame (tag, declared length, or trailing CRC) extends
    /// past the end of the log. Unlike [`DarshanError::UnexpectedEof`],
    /// this carries where in the byte stream the truncation was detected,
    /// so a corrupt artifact can be located and minimized.
    Truncated {
        /// Name of the region whose frame ran past EOF.
        region: &'static str,
        /// Byte offset (from the start of the log) where the region began.
        offset: usize,
    },
    /// An arithmetic accumulation overflowed its integer type. Hostile
    /// logs can carry `i64::MAX` counters or delta chains that no sum can
    /// hold; decoding and analysis surface this instead of panicking.
    Overflow {
        /// What was being accumulated when the overflow occurred.
        what: &'static str,
    },
    /// A varint was longer than the maximum encodable width.
    VarintOverflow,
    /// A record referenced an unknown module id.
    UnknownModule {
        /// The raw module id found in the input.
        id: u8,
    },
    /// A counter record carried the wrong number of counters for its module.
    CounterCountMismatch {
        /// Module whose record was malformed.
        module: &'static str,
        /// Number of counters expected by the module schema.
        expected: usize,
        /// Number of counters found in the record.
        found: usize,
    },
    /// A name record contained invalid UTF-8.
    InvalidName,
    /// A string field exceeded the maximum permitted length.
    StringTooLong {
        /// Length found.
        len: usize,
        /// Maximum permitted.
        max: usize,
    },
    /// An underlying I/O source or sink failed during streaming decode
    /// or encode. Never produced when decoding from an in-memory slice.
    Io {
        /// What the codec was doing when the I/O failed.
        action: &'static str,
        /// The underlying error text.
        message: String,
    },
}

impl fmt::Display for DarshanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DarshanError::BadMagic { found } => {
                write!(f, "bad log magic 0x{found:08x}, not a darshan log")
            }
            DarshanError::UnsupportedVersion { found } => {
                write!(f, "unsupported log format version {found}")
            }
            DarshanError::ChecksumMismatch {
                region,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in {region} region: stored 0x{expected:08x}, computed 0x{actual:08x}"
            ),
            DarshanError::UnexpectedEof { decoding } => {
                write!(f, "unexpected end of input while decoding {decoding}")
            }
            DarshanError::Truncated { region, offset } => {
                write!(
                    f,
                    "log truncated: {region} region at byte offset {offset} extends past end of input"
                )
            }
            DarshanError::Overflow { what } => {
                write!(f, "arithmetic overflow while accumulating {what}")
            }
            DarshanError::VarintOverflow => write!(f, "varint exceeds 64-bit range"),
            DarshanError::UnknownModule { id } => write!(f, "unknown module id {id}"),
            DarshanError::CounterCountMismatch {
                module,
                expected,
                found,
            } => write!(
                f,
                "{module} record carries {found} counters, schema expects {expected}"
            ),
            DarshanError::InvalidName => write!(f, "name record is not valid utf-8"),
            DarshanError::StringTooLong { len, max } => {
                write!(f, "string of length {len} exceeds maximum {max}")
            }
            DarshanError::Io { action, message } => {
                write!(f, "i/o failure while trying to {action}: {message}")
            }
        }
    }
}

impl std::error::Error for DarshanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants: Vec<DarshanError> = vec![
            DarshanError::BadMagic { found: 1 },
            DarshanError::UnsupportedVersion { found: 9 },
            DarshanError::ChecksumMismatch {
                region: "posix",
                expected: 1,
                actual: 2,
            },
            DarshanError::UnexpectedEof { decoding: "header" },
            DarshanError::Truncated {
                region: "posix",
                offset: 42,
            },
            DarshanError::Overflow {
                what: "dxt segment offset",
            },
            DarshanError::VarintOverflow,
            DarshanError::UnknownModule { id: 200 },
            DarshanError::CounterCountMismatch {
                module: "POSIX",
                expected: 10,
                found: 2,
            },
            DarshanError::InvalidName,
            DarshanError::StringTooLong { len: 10, max: 4 },
            DarshanError::Io {
                action: "read region payload",
                message: "pipe closed".into(),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DarshanError>();
    }
}
