//! Darshan-compatible I/O characterization data model and log codec.
//!
//! [Darshan](https://www.mcs.anl.gov/research/projects/darshan/) is the de
//! facto HPC I/O profiling tool: it records, per application run, a compact
//! statistical record for every file accessed through each I/O interface
//! (POSIX, MPI-IO, STDIO), plus Lustre striping metadata, and — with
//! Darshan eXtended Tracing (DXT) — a fine-grained record of every read and
//! write operation.
//!
//! This crate reimplements the parts of Darshan that the ION pipeline
//! depends on, from scratch:
//!
//! * [`counters`] — the counter vocabularies of the POSIX, MPI-IO, STDIO and
//!   Lustre modules, using Darshan's own counter names
//!   (`POSIX_SIZE_READ_0_100`, `POSIX_FILE_NOT_ALIGNED`, …).
//! * [`records`] — per-file-per-rank counter records, the job record, and
//!   the name-record table mapping hashed record ids to file paths.
//! * [`dxt`] — DXT trace segments (offset, length, start/end timestamps).
//! * [`accum`] — the *instrumentation accumulators* that turn a stream of
//!   I/O operations into counter records exactly the way the Darshan
//!   runtime library does (sequential/consecutive classification, size
//!   histograms, alignment counters, common access sizes, strides…).
//! * [`log`] — a compact binary log format (varint + delta encoding,
//!   CRC-32-checksummed regions) with a writer and a reader.
//! * [`parser`] — text renderers equivalent to `darshan-parser` and
//!   `darshan-dxt-parser`.
//!
//! # Example
//!
//! ```
//! use darshan::accum::PosixAccumulator;
//! use darshan::records::JobRecord;
//! use darshan::log::{LogWriter, LogReader};
//!
//! # fn main() -> Result<(), darshan::DarshanError> {
//! // Record two writes to one file on rank 0, as instrumentation would.
//! let mut acc = PosixAccumulator::new(7001, 0);
//! acc.open(0.0, 0.001);
//! acc.write(0, 4096, 0.0015, 0.002, true);
//! acc.write(4096, 4096, 0.002, 0.0025, true);
//! acc.close(0.003, 0.0031);
//!
//! let mut writer = LogWriter::new(JobRecord::new(1000, 42, 1));
//! writer.register_name(7001, "/scratch/out.dat");
//! writer.add_posix_record(acc.finish());
//! let bytes = writer.finish()?;
//!
//! let log = LogReader::read(&bytes)?;
//! assert_eq!(log.posix.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accum;
pub mod counters;
pub mod dxt;
pub mod heatmap;
pub mod log;
pub mod parser;
pub mod records;

mod error;

pub use error::DarshanError;

/// Hash a file path into a Darshan record id.
///
/// Darshan identifies files by a 64-bit hash of the path so that records
/// from different ranks can be reduced without exchanging strings. We use
/// FNV-1a, which is stable, dependency-free and collision-resistant enough
/// for the small file populations of a single job.
///
/// ```
/// let id = darshan::record_id("/scratch/data.h5");
/// assert_eq!(id, darshan::record_id("/scratch/data.h5"));
/// assert_ne!(id, darshan::record_id("/scratch/data2.h5"));
/// ```
#[must_use]
pub fn record_id(path: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in path.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_id_is_deterministic() {
        assert_eq!(record_id("a"), record_id("a"));
    }

    #[test]
    fn record_id_distinguishes_paths() {
        assert_ne!(record_id("/a/b"), record_id("/a/c"));
        assert_ne!(record_id(""), record_id("/"));
    }

    #[test]
    fn record_id_empty_is_fnv_offset() {
        assert_eq!(record_id(""), 0xcbf2_9ce4_8422_2325);
    }
}
