//! Instrumentation accumulators: from operation streams to counter records.
//!
//! The Darshan runtime library intercepts I/O calls and folds them into the
//! per-file counter records on the fly. The accumulators in this module
//! reproduce that logic: sequential/consecutive classification, alignment
//! counters, size histograms, common access sizes, stride detection,
//! read/write switches, and operation timing, plus the cross-rank *reduction*
//! that produces shared (`rank == -1`) records with fastest/slowest-rank and
//! variance counters.

use crate::counters::{
    size_bin, MpiioCounter, MpiioFCounter, PosixCounter, PosixFCounter, StdioCounter, StdioFCounter,
};
use crate::records::{MpiioRecord, PosixRecord, StdioRecord, SHARED_RANK};
use std::collections::HashMap;

/// Tracks the four most common values of a quantity (access sizes, strides).
///
/// Darshan reports the four most frequently observed access sizes per file
/// (`*_ACCESS{1..4}_ACCESS` / `_COUNT`) and likewise for strides.
#[derive(Debug, Clone, Default)]
pub struct CommonValueTracker {
    counts: HashMap<u64, u64>,
}

impl CommonValueTracker {
    /// Create an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation of `value`.
    pub fn observe(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
    }

    /// The four most common `(value, count)` pairs, most frequent first.
    /// Ties are broken by smaller value for determinism.
    #[must_use]
    pub fn top4(&self) -> [(u64, u64); 4] {
        let mut pairs: Vec<(u64, u64)> = self.counts.iter().map(|(&v, &c)| (v, c)).collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut out = [(0u64, 0u64); 4];
        for (slot, pair) in out.iter_mut().zip(pairs) {
            *slot = pair;
        }
        out
    }

    /// Number of distinct values observed.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }
}

/// Common parameters the runtime needs to classify operations.
#[derive(Debug, Clone, Copy)]
pub struct AlignmentSpec {
    /// File alignment in bytes (Lustre stripe size on Lustre systems).
    pub file_alignment: u64,
    /// Memory buffer alignment in bytes.
    pub mem_alignment: u64,
}

impl Default for AlignmentSpec {
    fn default() -> Self {
        AlignmentSpec {
            file_alignment: 1 << 20,
            mem_alignment: 8,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LastOp {
    None,
    Read,
    Write,
}

/// Accumulates POSIX-layer operations for one `(file, rank)` pair.
#[derive(Debug, Clone)]
pub struct PosixAccumulator {
    record: PosixRecord,
    alignment: AlignmentSpec,
    last_read_end: Option<u64>,
    last_write_end: Option<u64>,
    last_offset: Option<u64>,
    last_op: LastOp,
    accesses: CommonValueTracker,
    strides: CommonValueTracker,
    max_read_time: f64,
    max_read_size: u64,
    max_write_time: f64,
    max_write_size: u64,
    first_read_start: Option<f64>,
    first_write_start: Option<f64>,
    first_open_start: Option<f64>,
    first_close_start: Option<f64>,
}

impl PosixAccumulator {
    /// Start accumulating for `file_id` on `rank` with default alignment.
    #[must_use]
    pub fn new(file_id: u64, rank: i32) -> Self {
        Self::with_alignment(file_id, rank, AlignmentSpec::default())
    }

    /// Start accumulating with an explicit alignment specification.
    #[must_use]
    pub fn with_alignment(file_id: u64, rank: i32, alignment: AlignmentSpec) -> Self {
        let mut record = PosixRecord::new(file_id, rank);
        record.set(PosixCounter::POSIX_MODE, 0o644);
        record.set(
            PosixCounter::POSIX_FILE_ALIGNMENT,
            alignment.file_alignment as i64,
        );
        record.set(
            PosixCounter::POSIX_MEM_ALIGNMENT,
            alignment.mem_alignment as i64,
        );
        record.set(PosixCounter::POSIX_FASTEST_RANK, -1);
        record.set(PosixCounter::POSIX_SLOWEST_RANK, -1);
        PosixAccumulator {
            record,
            alignment,
            last_read_end: None,
            last_write_end: None,
            last_offset: None,
            last_op: LastOp::None,
            accesses: CommonValueTracker::new(),
            strides: CommonValueTracker::new(),
            max_read_time: 0.0,
            max_read_size: 0,
            max_write_time: 0.0,
            max_write_size: 0,
            first_read_start: None,
            first_write_start: None,
            first_open_start: None,
            first_close_start: None,
        }
    }

    /// Record an `open` call.
    pub fn open(&mut self, start: f64, end: f64) {
        self.record.add(PosixCounter::POSIX_OPENS, 1);
        self.meta(start, end);
        if self.first_open_start.is_none() {
            self.first_open_start = Some(start);
            self.record
                .fset(PosixFCounter::POSIX_F_OPEN_START_TIMESTAMP, start);
        }
        self.record
            .fset(PosixFCounter::POSIX_F_OPEN_END_TIMESTAMP, end);
    }

    /// Record a `close` call.
    pub fn close(&mut self, start: f64, end: f64) {
        self.meta(start, end);
        if self.first_close_start.is_none() {
            self.first_close_start = Some(start);
            self.record
                .fset(PosixFCounter::POSIX_F_CLOSE_START_TIMESTAMP, start);
        }
        self.record
            .fset(PosixFCounter::POSIX_F_CLOSE_END_TIMESTAMP, end);
    }

    /// Record an explicit seek.
    pub fn seek(&mut self, start: f64, end: f64) {
        self.record.add(PosixCounter::POSIX_SEEKS, 1);
        self.meta(start, end);
    }

    /// Record a `stat`-family call.
    pub fn stat(&mut self, start: f64, end: f64) {
        self.record.add(PosixCounter::POSIX_STATS, 1);
        self.meta(start, end);
    }

    /// Record an `fsync` call.
    pub fn fsync(&mut self, start: f64, end: f64) {
        self.record.add(PosixCounter::POSIX_FSYNCS, 1);
        self.meta(start, end);
    }

    /// Record a read of `size` bytes at `offset`.
    ///
    /// `mem_aligned` reports whether the user buffer met the memory
    /// alignment requirement (instrumentation knows the pointer; callers of
    /// the simulator decide).
    pub fn read(&mut self, offset: u64, size: u64, start: f64, end: f64, mem_aligned: bool) {
        self.record.add(PosixCounter::POSIX_READS, 1);
        self.record.add(PosixCounter::POSIX_BYTES_READ, size as i64);
        let max_byte = offset.saturating_add(size).saturating_sub(1);
        if size > 0 && max_byte as i64 > self.record.get(PosixCounter::POSIX_MAX_BYTE_READ) {
            self.record
                .set(PosixCounter::POSIX_MAX_BYTE_READ, max_byte as i64);
        }
        if let Some(last_end) = self.last_read_end {
            if offset == last_end {
                self.record.add(PosixCounter::POSIX_CONSEC_READS, 1);
            }
            if offset >= last_end {
                self.record.add(PosixCounter::POSIX_SEQ_READS, 1);
            }
        }
        self.last_read_end = Some(offset.saturating_add(size));
        self.common(offset, size, mem_aligned, LastOp::Read);
        let hist_base = PosixCounter::POSIX_SIZE_READ_0_100.index() + size_bin(size);
        self.record.counters[hist_base] = self.record.counters[hist_base].saturating_add(1);
        let dur = (end - start).max(0.0);
        self.record.fadd(PosixFCounter::POSIX_F_READ_TIME, dur);
        if dur > self.max_read_time {
            self.max_read_time = dur;
            self.max_read_size = size;
        }
        if self.first_read_start.is_none() {
            self.first_read_start = Some(start);
            self.record
                .fset(PosixFCounter::POSIX_F_READ_START_TIMESTAMP, start);
        }
        let prev = self.record.fget(PosixFCounter::POSIX_F_READ_END_TIMESTAMP);
        if end > prev {
            self.record
                .fset(PosixFCounter::POSIX_F_READ_END_TIMESTAMP, end);
        }
    }

    /// Record a write of `size` bytes at `offset`.
    pub fn write(&mut self, offset: u64, size: u64, start: f64, end: f64, mem_aligned: bool) {
        self.record.add(PosixCounter::POSIX_WRITES, 1);
        self.record
            .add(PosixCounter::POSIX_BYTES_WRITTEN, size as i64);
        let max_byte = offset.saturating_add(size).saturating_sub(1);
        if size > 0 && max_byte as i64 > self.record.get(PosixCounter::POSIX_MAX_BYTE_WRITTEN) {
            self.record
                .set(PosixCounter::POSIX_MAX_BYTE_WRITTEN, max_byte as i64);
        }
        if let Some(last_end) = self.last_write_end {
            if offset == last_end {
                self.record.add(PosixCounter::POSIX_CONSEC_WRITES, 1);
            }
            if offset >= last_end {
                self.record.add(PosixCounter::POSIX_SEQ_WRITES, 1);
            }
        }
        self.last_write_end = Some(offset.saturating_add(size));
        self.common(offset, size, mem_aligned, LastOp::Write);
        let hist_base = PosixCounter::POSIX_SIZE_WRITE_0_100.index() + size_bin(size);
        self.record.counters[hist_base] = self.record.counters[hist_base].saturating_add(1);
        let dur = (end - start).max(0.0);
        self.record.fadd(PosixFCounter::POSIX_F_WRITE_TIME, dur);
        if dur > self.max_write_time {
            self.max_write_time = dur;
            self.max_write_size = size;
        }
        if self.first_write_start.is_none() {
            self.first_write_start = Some(start);
            self.record
                .fset(PosixFCounter::POSIX_F_WRITE_START_TIMESTAMP, start);
        }
        let prev = self.record.fget(PosixFCounter::POSIX_F_WRITE_END_TIMESTAMP);
        if end > prev {
            self.record
                .fset(PosixFCounter::POSIX_F_WRITE_END_TIMESTAMP, end);
        }
    }

    fn common(&mut self, offset: u64, size: u64, mem_aligned: bool, op: LastOp) {
        if !offset.is_multiple_of(self.alignment.file_alignment) {
            self.record.add(PosixCounter::POSIX_FILE_NOT_ALIGNED, 1);
        }
        if !mem_aligned {
            self.record.add(PosixCounter::POSIX_MEM_NOT_ALIGNED, 1);
        }
        if self.last_op != LastOp::None && self.last_op != op {
            self.record.add(PosixCounter::POSIX_RW_SWITCHES, 1);
        }
        self.last_op = op;
        self.accesses.observe(size);
        if let Some(last) = self.last_offset {
            let stride = offset.abs_diff(last);
            if stride > 0 {
                self.strides.observe(stride);
            }
        }
        self.last_offset = Some(offset);
    }

    fn meta(&mut self, start: f64, end: f64) {
        self.record
            .fadd(PosixFCounter::POSIX_F_META_TIME, (end - start).max(0.0));
    }

    /// Total read + write operations recorded so far.
    #[must_use]
    pub fn op_count(&self) -> i64 {
        self.record
            .get(PosixCounter::POSIX_READS)
            .saturating_add(self.record.get(PosixCounter::POSIX_WRITES))
    }

    /// Finalize the record: fill in top-4 access sizes / strides and max
    /// operation times.
    #[must_use]
    pub fn finish(mut self) -> PosixRecord {
        let top_access = self.accesses.top4();
        let top_stride = self.strides.top4();
        use PosixCounter::*;
        let access_slots = [
            (POSIX_ACCESS1_ACCESS, POSIX_ACCESS1_COUNT),
            (POSIX_ACCESS2_ACCESS, POSIX_ACCESS2_COUNT),
            (POSIX_ACCESS3_ACCESS, POSIX_ACCESS3_COUNT),
            (POSIX_ACCESS4_ACCESS, POSIX_ACCESS4_COUNT),
        ];
        for ((a, c), (value, count)) in access_slots.iter().zip(top_access) {
            self.record.set(*a, value as i64);
            self.record.set(*c, count as i64);
        }
        let stride_slots = [
            (POSIX_STRIDE1_STRIDE, POSIX_STRIDE1_COUNT),
            (POSIX_STRIDE2_STRIDE, POSIX_STRIDE2_COUNT),
            (POSIX_STRIDE3_STRIDE, POSIX_STRIDE3_COUNT),
            (POSIX_STRIDE4_STRIDE, POSIX_STRIDE4_COUNT),
        ];
        for ((s, c), (value, count)) in stride_slots.iter().zip(top_stride) {
            self.record.set(*s, value as i64);
            self.record.set(*c, count as i64);
        }
        self.record
            .set(POSIX_MAX_READ_TIME_SIZE, self.max_read_size as i64);
        self.record
            .set(POSIX_MAX_WRITE_TIME_SIZE, self.max_write_size as i64);
        self.record
            .fset(PosixFCounter::POSIX_F_MAX_READ_TIME, self.max_read_time);
        self.record
            .fset(PosixFCounter::POSIX_F_MAX_WRITE_TIME, self.max_write_time);
        self.record
    }
}

/// Accumulates MPI-IO-layer operations for one `(file, rank)` pair.
#[derive(Debug, Clone)]
pub struct MpiioAccumulator {
    record: MpiioRecord,
    accesses: CommonValueTracker,
    last_op: LastOp,
    max_read_time: f64,
    max_read_size: u64,
    max_write_time: f64,
    max_write_size: u64,
    first_read_start: Option<f64>,
    first_write_start: Option<f64>,
}

impl MpiioAccumulator {
    /// Start accumulating for `file_id` on `rank`.
    #[must_use]
    pub fn new(file_id: u64, rank: i32) -> Self {
        let mut record = MpiioRecord::new(file_id, rank);
        record.set(MpiioCounter::MPIIO_FASTEST_RANK, -1);
        record.set(MpiioCounter::MPIIO_SLOWEST_RANK, -1);
        MpiioAccumulator {
            record,
            accesses: CommonValueTracker::new(),
            last_op: LastOp::None,
            max_read_time: 0.0,
            max_read_size: 0,
            max_write_time: 0.0,
            max_write_size: 0,
            first_read_start: None,
            first_write_start: None,
        }
    }

    /// Record a collective or independent open.
    pub fn open(&mut self, collective: bool, start: f64, end: f64) {
        if collective {
            self.record.add(MpiioCounter::MPIIO_COLL_OPENS, 1);
        } else {
            self.record.add(MpiioCounter::MPIIO_INDEP_OPENS, 1);
        }
        self.record
            .fadd(MpiioFCounter::MPIIO_F_META_TIME, (end - start).max(0.0));
        if self
            .record
            .fget(MpiioFCounter::MPIIO_F_OPEN_START_TIMESTAMP)
            == 0.0
        {
            self.record
                .fset(MpiioFCounter::MPIIO_F_OPEN_START_TIMESTAMP, start);
        }
        self.record
            .fset(MpiioFCounter::MPIIO_F_OPEN_END_TIMESTAMP, end);
    }

    /// Record a close.
    pub fn close(&mut self, start: f64, end: f64) {
        self.record
            .fadd(MpiioFCounter::MPIIO_F_META_TIME, (end - start).max(0.0));
        if self
            .record
            .fget(MpiioFCounter::MPIIO_F_CLOSE_START_TIMESTAMP)
            == 0.0
        {
            self.record
                .fset(MpiioFCounter::MPIIO_F_CLOSE_START_TIMESTAMP, start);
        }
        self.record
            .fset(MpiioFCounter::MPIIO_F_CLOSE_END_TIMESTAMP, end);
    }

    /// Record a read; `collective` selects `MPIIO_COLL_READS` vs
    /// `MPIIO_INDEP_READS`.
    pub fn read(&mut self, size: u64, collective: bool, start: f64, end: f64) {
        if collective {
            self.record.add(MpiioCounter::MPIIO_COLL_READS, 1);
        } else {
            self.record.add(MpiioCounter::MPIIO_INDEP_READS, 1);
        }
        self.record.add(MpiioCounter::MPIIO_BYTES_READ, size as i64);
        let hist = MpiioCounter::MPIIO_SIZE_READ_AGG_0_100.index() + size_bin(size);
        self.record.counters[hist] = self.record.counters[hist].saturating_add(1);
        self.rw_common(size, LastOp::Read);
        let dur = (end - start).max(0.0);
        self.record.fadd(MpiioFCounter::MPIIO_F_READ_TIME, dur);
        if dur > self.max_read_time {
            self.max_read_time = dur;
            self.max_read_size = size;
        }
        if self.first_read_start.is_none() {
            self.first_read_start = Some(start);
            self.record
                .fset(MpiioFCounter::MPIIO_F_READ_START_TIMESTAMP, start);
        }
        let prev = self.record.fget(MpiioFCounter::MPIIO_F_READ_END_TIMESTAMP);
        if end > prev {
            self.record
                .fset(MpiioFCounter::MPIIO_F_READ_END_TIMESTAMP, end);
        }
    }

    /// Record a write; `collective` selects the collective counters.
    pub fn write(&mut self, size: u64, collective: bool, start: f64, end: f64) {
        if collective {
            self.record.add(MpiioCounter::MPIIO_COLL_WRITES, 1);
        } else {
            self.record.add(MpiioCounter::MPIIO_INDEP_WRITES, 1);
        }
        self.record
            .add(MpiioCounter::MPIIO_BYTES_WRITTEN, size as i64);
        let hist = MpiioCounter::MPIIO_SIZE_WRITE_AGG_0_100.index() + size_bin(size);
        self.record.counters[hist] = self.record.counters[hist].saturating_add(1);
        self.rw_common(size, LastOp::Write);
        let dur = (end - start).max(0.0);
        self.record.fadd(MpiioFCounter::MPIIO_F_WRITE_TIME, dur);
        if dur > self.max_write_time {
            self.max_write_time = dur;
            self.max_write_size = size;
        }
        if self.first_write_start.is_none() {
            self.first_write_start = Some(start);
            self.record
                .fset(MpiioFCounter::MPIIO_F_WRITE_START_TIMESTAMP, start);
        }
        let prev = self.record.fget(MpiioFCounter::MPIIO_F_WRITE_END_TIMESTAMP);
        if end > prev {
            self.record
                .fset(MpiioFCounter::MPIIO_F_WRITE_END_TIMESTAMP, end);
        }
    }

    /// Record an `MPI_File_set_view` call.
    pub fn set_view(&mut self) {
        self.record.add(MpiioCounter::MPIIO_VIEWS, 1);
    }

    /// Record hint application at open time.
    pub fn hint(&mut self) {
        self.record.add(MpiioCounter::MPIIO_HINTS, 1);
    }

    fn rw_common(&mut self, size: u64, op: LastOp) {
        if self.last_op != LastOp::None && self.last_op != op {
            self.record.add(MpiioCounter::MPIIO_RW_SWITCHES, 1);
        }
        self.last_op = op;
        self.accesses.observe(size);
    }

    /// Finalize the record.
    #[must_use]
    pub fn finish(mut self) -> MpiioRecord {
        use MpiioCounter::*;
        let slots = [
            (MPIIO_ACCESS1_ACCESS, MPIIO_ACCESS1_COUNT),
            (MPIIO_ACCESS2_ACCESS, MPIIO_ACCESS2_COUNT),
            (MPIIO_ACCESS3_ACCESS, MPIIO_ACCESS3_COUNT),
            (MPIIO_ACCESS4_ACCESS, MPIIO_ACCESS4_COUNT),
        ];
        for ((a, c), (value, count)) in slots.iter().zip(self.accesses.top4()) {
            self.record.set(*a, value as i64);
            self.record.set(*c, count as i64);
        }
        self.record
            .set(MPIIO_MAX_READ_TIME_SIZE, self.max_read_size as i64);
        self.record
            .set(MPIIO_MAX_WRITE_TIME_SIZE, self.max_write_size as i64);
        self.record
            .fset(MpiioFCounter::MPIIO_F_MAX_READ_TIME, self.max_read_time);
        self.record
            .fset(MpiioFCounter::MPIIO_F_MAX_WRITE_TIME, self.max_write_time);
        self.record
    }
}

/// Accumulates STDIO-layer operations for one `(file, rank)` pair.
#[derive(Debug, Clone)]
pub struct StdioAccumulator {
    record: StdioRecord,
}

impl StdioAccumulator {
    /// Start accumulating for `file_id` on `rank`.
    #[must_use]
    pub fn new(file_id: u64, rank: i32) -> Self {
        let mut record = StdioRecord::new(file_id, rank);
        record.set(StdioCounter::STDIO_FASTEST_RANK, -1);
        record.set(StdioCounter::STDIO_SLOWEST_RANK, -1);
        StdioAccumulator { record }
    }

    /// Record an `fopen`.
    pub fn open(&mut self, start: f64, end: f64) {
        self.record.add(StdioCounter::STDIO_OPENS, 1);
        self.record
            .fadd(StdioFCounter::STDIO_F_META_TIME, (end - start).max(0.0));
        if self
            .record
            .fget(StdioFCounter::STDIO_F_OPEN_START_TIMESTAMP)
            == 0.0
        {
            self.record
                .fset(StdioFCounter::STDIO_F_OPEN_START_TIMESTAMP, start);
        }
        self.record
            .fset(StdioFCounter::STDIO_F_OPEN_END_TIMESTAMP, end);
    }

    /// Record an `fclose`.
    pub fn close(&mut self, start: f64, end: f64) {
        self.record
            .fadd(StdioFCounter::STDIO_F_META_TIME, (end - start).max(0.0));
        if self
            .record
            .fget(StdioFCounter::STDIO_F_CLOSE_START_TIMESTAMP)
            == 0.0
        {
            self.record
                .fset(StdioFCounter::STDIO_F_CLOSE_START_TIMESTAMP, start);
        }
        self.record
            .fset(StdioFCounter::STDIO_F_CLOSE_END_TIMESTAMP, end);
    }

    /// Record an `fread` ending at byte `offset + size - 1`.
    pub fn read(&mut self, offset: u64, size: u64, start: f64, end: f64) {
        self.record.add(StdioCounter::STDIO_READS, 1);
        self.record.add(StdioCounter::STDIO_BYTES_READ, size as i64);
        let max_byte = offset.saturating_add(size).saturating_sub(1);
        if size > 0 && max_byte as i64 > self.record.get(StdioCounter::STDIO_MAX_BYTE_READ) {
            self.record
                .set(StdioCounter::STDIO_MAX_BYTE_READ, max_byte as i64);
        }
        let dur = (end - start).max(0.0);
        self.record.fadd(StdioFCounter::STDIO_F_READ_TIME, dur);
        if self
            .record
            .fget(StdioFCounter::STDIO_F_READ_START_TIMESTAMP)
            == 0.0
        {
            self.record
                .fset(StdioFCounter::STDIO_F_READ_START_TIMESTAMP, start);
        }
        self.record
            .fset(StdioFCounter::STDIO_F_READ_END_TIMESTAMP, end);
    }

    /// Record an `fwrite` ending at byte `offset + size - 1`.
    pub fn write(&mut self, offset: u64, size: u64, start: f64, end: f64) {
        self.record.add(StdioCounter::STDIO_WRITES, 1);
        self.record
            .add(StdioCounter::STDIO_BYTES_WRITTEN, size as i64);
        let max_byte = offset.saturating_add(size).saturating_sub(1);
        if size > 0 && max_byte as i64 > self.record.get(StdioCounter::STDIO_MAX_BYTE_WRITTEN) {
            self.record
                .set(StdioCounter::STDIO_MAX_BYTE_WRITTEN, max_byte as i64);
        }
        let dur = (end - start).max(0.0);
        self.record.fadd(StdioFCounter::STDIO_F_WRITE_TIME, dur);
        if self
            .record
            .fget(StdioFCounter::STDIO_F_WRITE_START_TIMESTAMP)
            == 0.0
        {
            self.record
                .fset(StdioFCounter::STDIO_F_WRITE_START_TIMESTAMP, start);
        }
        self.record
            .fset(StdioFCounter::STDIO_F_WRITE_END_TIMESTAMP, end);
    }

    /// Record an `fseek`.
    pub fn seek(&mut self, start: f64, end: f64) {
        self.record.add(StdioCounter::STDIO_SEEKS, 1);
        self.record
            .fadd(StdioFCounter::STDIO_F_META_TIME, (end - start).max(0.0));
    }

    /// Record an `fflush`.
    pub fn flush(&mut self, start: f64, end: f64) {
        self.record.add(StdioCounter::STDIO_FLUSHES, 1);
        self.record
            .fadd(StdioFCounter::STDIO_F_META_TIME, (end - start).max(0.0));
    }

    /// Finalize the record.
    #[must_use]
    pub fn finish(self) -> StdioRecord {
        self.record
    }
}

fn variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n
}

/// Reduce per-rank POSIX records for one file into a shared record
/// (`rank == -1`) with fastest/slowest-rank and variance counters, the way
/// `darshan-core` reduces shared file records at shutdown.
///
/// Counter sums saturate at the `i64` bounds, so records decoded from
/// hostile logs (e.g. `i64::MAX` counters) reduce without panicking; use
/// [`try_reduce_posix`] when the overflow itself must be reported.
///
/// Returns `None` when `records` is empty.
#[must_use]
pub fn reduce_posix(records: &[PosixRecord]) -> Option<PosixRecord> {
    reduce_posix_impl(records, false).expect("saturating reduction cannot overflow")
}

/// [`reduce_posix`] with checked counter sums: the first overflowing
/// counter aborts the reduction with a typed
/// [`crate::DarshanError::Overflow`] naming the counter.
///
/// # Errors
///
/// Returns [`crate::DarshanError::Overflow`] when any summed counter
/// (or the per-rank byte total) exceeds `i64::MAX` in magnitude.
pub fn try_reduce_posix(
    records: &[PosixRecord],
) -> Result<Option<PosixRecord>, crate::DarshanError> {
    reduce_posix_impl(records, true)
}

fn reduce_posix_impl(
    records: &[PosixRecord],
    checked: bool,
) -> Result<Option<PosixRecord>, crate::DarshanError> {
    let Some(first) = records.first() else {
        return Ok(None);
    };
    let mut out = PosixRecord::new(first.file_id, SHARED_RANK);
    use PosixCounter::*;
    // Counters that are summed across ranks.
    let summed: Vec<usize> = PosixCounter::ALL
        .iter()
        .filter(|c| {
            !matches!(
                **c,
                POSIX_MODE
                    | POSIX_MEM_ALIGNMENT
                    | POSIX_FILE_ALIGNMENT
                    | POSIX_MAX_BYTE_READ
                    | POSIX_MAX_BYTE_WRITTEN
                    | POSIX_MAX_READ_TIME_SIZE
                    | POSIX_MAX_WRITE_TIME_SIZE
                    | POSIX_STRIDE1_STRIDE
                    | POSIX_STRIDE2_STRIDE
                    | POSIX_STRIDE3_STRIDE
                    | POSIX_STRIDE4_STRIDE
                    | POSIX_ACCESS1_ACCESS
                    | POSIX_ACCESS2_ACCESS
                    | POSIX_ACCESS3_ACCESS
                    | POSIX_ACCESS4_ACCESS
                    | POSIX_FASTEST_RANK
                    | POSIX_FASTEST_RANK_BYTES
                    | POSIX_SLOWEST_RANK
                    | POSIX_SLOWEST_RANK_BYTES
            )
        })
        .map(|c| c.index())
        .collect();
    out.set(POSIX_MODE, first.get(POSIX_MODE));
    out.set(POSIX_MEM_ALIGNMENT, first.get(POSIX_MEM_ALIGNMENT));
    out.set(POSIX_FILE_ALIGNMENT, first.get(POSIX_FILE_ALIGNMENT));
    let mut rank_times: Vec<f64> = Vec::with_capacity(records.len());
    let mut rank_bytes: Vec<f64> = Vec::with_capacity(records.len());
    let mut fastest: Option<(i32, f64, i64)> = None;
    let mut slowest: Option<(i32, f64, i64)> = None;
    for r in records {
        for &i in &summed {
            out.counters[i] = if checked {
                out.counters[i]
                    .checked_add(r.counters[i])
                    .ok_or(crate::DarshanError::Overflow {
                        what: PosixCounter::ALL[i].name(),
                    })?
            } else {
                out.counters[i].saturating_add(r.counters[i])
            };
        }
        for c in [POSIX_MAX_BYTE_READ, POSIX_MAX_BYTE_WRITTEN] {
            if r.get(c) > out.get(c) {
                out.set(c, r.get(c));
            }
        }
        let time = r.fget(PosixFCounter::POSIX_F_READ_TIME)
            + r.fget(PosixFCounter::POSIX_F_WRITE_TIME)
            + r.fget(PosixFCounter::POSIX_F_META_TIME);
        let bytes = if checked {
            r.get(POSIX_BYTES_READ)
                .checked_add(r.get(POSIX_BYTES_WRITTEN))
                .ok_or(crate::DarshanError::Overflow {
                    what: "per-rank byte total",
                })?
        } else {
            r.get(POSIX_BYTES_READ)
                .saturating_add(r.get(POSIX_BYTES_WRITTEN))
        };
        rank_times.push(time);
        rank_bytes.push(bytes as f64);
        if fastest.is_none_or(|(_, t, _)| time < t) {
            fastest = Some((r.rank, time, bytes));
        }
        if slowest.is_none_or(|(_, t, _)| time > t) {
            slowest = Some((r.rank, time, bytes));
        }
        for (fc, agg_max) in [
            (PosixFCounter::POSIX_F_MAX_READ_TIME, true),
            (PosixFCounter::POSIX_F_MAX_WRITE_TIME, true),
            (PosixFCounter::POSIX_F_READ_END_TIMESTAMP, true),
            (PosixFCounter::POSIX_F_WRITE_END_TIMESTAMP, true),
            (PosixFCounter::POSIX_F_CLOSE_END_TIMESTAMP, true),
            (PosixFCounter::POSIX_F_OPEN_END_TIMESTAMP, true),
        ] {
            debug_assert!(agg_max);
            if r.fget(fc) > out.fget(fc) {
                out.fset(fc, r.fget(fc));
            }
        }
        for fc in [
            PosixFCounter::POSIX_F_READ_TIME,
            PosixFCounter::POSIX_F_WRITE_TIME,
            PosixFCounter::POSIX_F_META_TIME,
        ] {
            out.fadd(fc, r.fget(fc));
        }
        for fc in [
            PosixFCounter::POSIX_F_OPEN_START_TIMESTAMP,
            PosixFCounter::POSIX_F_READ_START_TIMESTAMP,
            PosixFCounter::POSIX_F_WRITE_START_TIMESTAMP,
            PosixFCounter::POSIX_F_CLOSE_START_TIMESTAMP,
        ] {
            let v = r.fget(fc);
            let cur = out.fget(fc);
            if v > 0.0 && (cur == 0.0 || v < cur) {
                out.fset(fc, v);
            }
        }
    }
    if let Some((rank, time, bytes)) = fastest {
        out.set(POSIX_FASTEST_RANK, i64::from(rank));
        out.set(POSIX_FASTEST_RANK_BYTES, bytes);
        out.fset(PosixFCounter::POSIX_F_FASTEST_RANK_TIME, time);
    }
    if let Some((rank, time, bytes)) = slowest {
        out.set(POSIX_SLOWEST_RANK, i64::from(rank));
        out.set(POSIX_SLOWEST_RANK_BYTES, bytes);
        out.fset(PosixFCounter::POSIX_F_SLOWEST_RANK_TIME, time);
    }
    out.fset(
        PosixFCounter::POSIX_F_VARIANCE_RANK_TIME,
        variance(&rank_times),
    );
    out.fset(
        PosixFCounter::POSIX_F_VARIANCE_RANK_BYTES,
        variance(&rank_bytes),
    );
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_top4_orders_by_count_then_value() {
        let mut t = CommonValueTracker::new();
        for _ in 0..5 {
            t.observe(4096);
        }
        for _ in 0..5 {
            t.observe(1024);
        }
        for _ in 0..2 {
            t.observe(8);
        }
        let top = t.top4();
        assert_eq!(top[0], (1024, 5)); // tie broken by smaller value
        assert_eq!(top[1], (4096, 5));
        assert_eq!(top[2], (8, 2));
        assert_eq!(top[3], (0, 0));
        assert_eq!(t.distinct(), 3);
    }

    #[test]
    fn consecutive_and_sequential_classification() {
        let mut a = PosixAccumulator::new(1, 0);
        a.write(0, 100, 0.0, 0.1, true);
        a.write(100, 100, 0.1, 0.2, true); // consecutive (and sequential)
        a.write(300, 100, 0.2, 0.3, true); // sequential only
        a.write(50, 100, 0.3, 0.4, true); // backwards: neither
        let r = a.finish();
        assert_eq!(r.get(PosixCounter::POSIX_WRITES), 4);
        assert_eq!(r.get(PosixCounter::POSIX_CONSEC_WRITES), 1);
        assert_eq!(r.get(PosixCounter::POSIX_SEQ_WRITES), 2);
    }

    #[test]
    fn alignment_counters() {
        let spec = AlignmentSpec {
            file_alignment: 1024,
            mem_alignment: 8,
        };
        let mut a = PosixAccumulator::with_alignment(1, 0, spec);
        a.write(0, 512, 0.0, 0.1, true); // aligned
        a.write(512, 512, 0.1, 0.2, false); // misaligned offset + mem
        a.write(1024, 512, 0.2, 0.3, true); // aligned
        let r = a.finish();
        assert_eq!(r.get(PosixCounter::POSIX_FILE_NOT_ALIGNED), 1);
        assert_eq!(r.get(PosixCounter::POSIX_MEM_NOT_ALIGNED), 1);
        assert_eq!(r.get(PosixCounter::POSIX_FILE_ALIGNMENT), 1024);
    }

    #[test]
    fn size_histogram_binning() {
        let mut a = PosixAccumulator::new(1, 0);
        a.read(0, 50, 0.0, 0.1, true);
        a.read(50, 2048, 0.1, 0.2, true);
        a.read(4096, 2 << 20, 0.2, 0.3, true);
        let r = a.finish();
        assert_eq!(r.get(PosixCounter::POSIX_SIZE_READ_0_100), 1);
        assert_eq!(r.get(PosixCounter::POSIX_SIZE_READ_1K_10K), 1);
        assert_eq!(r.get(PosixCounter::POSIX_SIZE_READ_1M_4M), 1);
    }

    #[test]
    fn rw_switches_counted() {
        let mut a = PosixAccumulator::new(1, 0);
        a.write(0, 10, 0.0, 0.1, true);
        a.read(0, 10, 0.1, 0.2, true);
        a.read(10, 10, 0.2, 0.3, true);
        a.write(10, 10, 0.3, 0.4, true);
        let r = a.finish();
        assert_eq!(r.get(PosixCounter::POSIX_RW_SWITCHES), 2);
    }

    #[test]
    fn stride_detection() {
        let mut a = PosixAccumulator::new(1, 0);
        // Fixed stride of 1000 bytes between consecutive accesses.
        for i in 0..5u64 {
            a.read(i * 1000, 100, i as f64, i as f64 + 0.1, true);
        }
        let r = a.finish();
        assert_eq!(r.get(PosixCounter::POSIX_STRIDE1_STRIDE), 1000);
        assert_eq!(r.get(PosixCounter::POSIX_STRIDE1_COUNT), 4);
    }

    #[test]
    fn max_time_tracks_size_of_slowest_op() {
        let mut a = PosixAccumulator::new(1, 0);
        a.write(0, 100, 0.0, 0.1, true);
        a.write(100, 999, 0.1, 0.9, true); // slowest
        a.write(1099, 10, 0.9, 1.0, true);
        let r = a.finish();
        assert_eq!(r.get(PosixCounter::POSIX_MAX_WRITE_TIME_SIZE), 999);
        assert!((r.fget(PosixFCounter::POSIX_F_MAX_WRITE_TIME) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn meta_time_accumulates_open_close_seek() {
        let mut a = PosixAccumulator::new(1, 0);
        a.open(0.0, 0.5);
        a.seek(0.5, 0.6);
        a.stat(0.6, 0.7);
        a.fsync(0.7, 0.9);
        a.close(0.9, 1.0);
        let r = a.finish();
        assert!((r.fget(PosixFCounter::POSIX_F_META_TIME) - 1.0).abs() < 1e-9);
        assert_eq!(r.get(PosixCounter::POSIX_OPENS), 1);
        assert_eq!(r.get(PosixCounter::POSIX_SEEKS), 1);
        assert_eq!(r.get(PosixCounter::POSIX_STATS), 1);
        assert_eq!(r.get(PosixCounter::POSIX_FSYNCS), 1);
    }

    #[test]
    fn reduce_computes_fastest_slowest_and_variance() {
        let mut a0 = PosixAccumulator::new(1, 0);
        a0.write(0, 1000, 0.0, 1.0, true);
        let mut a1 = PosixAccumulator::new(1, 1);
        a1.write(1000, 3000, 0.0, 3.0, true);
        let shared = reduce_posix(&[a0.finish(), a1.finish()]).unwrap();
        assert_eq!(shared.rank, SHARED_RANK);
        assert_eq!(shared.get(PosixCounter::POSIX_WRITES), 2);
        assert_eq!(shared.get(PosixCounter::POSIX_BYTES_WRITTEN), 4000);
        assert_eq!(shared.get(PosixCounter::POSIX_FASTEST_RANK), 0);
        assert_eq!(shared.get(PosixCounter::POSIX_SLOWEST_RANK), 1);
        assert_eq!(shared.get(PosixCounter::POSIX_SLOWEST_RANK_BYTES), 3000);
        assert!(shared.fget(PosixFCounter::POSIX_F_VARIANCE_RANK_BYTES) > 0.0);
        assert_eq!(shared.get(PosixCounter::POSIX_MAX_BYTE_WRITTEN), 3999);
    }

    #[test]
    fn reduce_empty_returns_none() {
        assert!(reduce_posix(&[]).is_none());
    }

    #[test]
    fn mpiio_collective_vs_independent() {
        let mut a = MpiioAccumulator::new(1, 0);
        a.open(true, 0.0, 0.1);
        a.write(1 << 20, true, 0.1, 0.5);
        a.write(4096, false, 0.5, 0.6);
        a.read(1 << 20, true, 0.6, 0.9);
        a.close(0.9, 1.0);
        let r = a.finish();
        assert_eq!(r.get(MpiioCounter::MPIIO_COLL_OPENS), 1);
        assert_eq!(r.get(MpiioCounter::MPIIO_COLL_WRITES), 1);
        assert_eq!(r.get(MpiioCounter::MPIIO_INDEP_WRITES), 1);
        assert_eq!(r.get(MpiioCounter::MPIIO_COLL_READS), 1);
        assert_eq!(r.get(MpiioCounter::MPIIO_RW_SWITCHES), 1);
        assert_eq!(r.get(MpiioCounter::MPIIO_BYTES_WRITTEN), (1 << 20) + 4096);
        assert_eq!(r.get(MpiioCounter::MPIIO_SIZE_WRITE_AGG_1M_4M), 1);
    }

    #[test]
    fn stdio_accumulator_counts_and_times() {
        let mut a = StdioAccumulator::new(1, 0);
        a.open(0.0, 0.1);
        a.write(0, 100, 0.1, 0.2);
        a.read(0, 100, 0.2, 0.4);
        a.seek(0.4, 0.45);
        a.flush(0.45, 0.5);
        a.close(0.5, 0.6);
        let r = a.finish();
        assert_eq!(r.get(StdioCounter::STDIO_OPENS), 1);
        assert_eq!(r.get(StdioCounter::STDIO_WRITES), 1);
        assert_eq!(r.get(StdioCounter::STDIO_READS), 1);
        assert_eq!(r.get(StdioCounter::STDIO_SEEKS), 1);
        assert_eq!(r.get(StdioCounter::STDIO_FLUSHES), 1);
        assert_eq!(r.get(StdioCounter::STDIO_MAX_BYTE_READ), 99);
        assert!((r.fget(StdioFCounter::STDIO_F_READ_TIME) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[2.0, 2.0, 2.0]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }
}
