//! Darshan eXtended Tracing (DXT) records.
//!
//! DXT extends Darshan's statistical counters with a per-operation trace:
//! every POSIX or MPI-IO read/write is recorded with its file, rank, offset,
//! length and start/end timestamps. These fine-grained traces are what let
//! ION reason about consecutiveness, overlap and stripe conflicts.

use serde::{Deserialize, Serialize};

/// Which interface layer an operation was issued through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DxtLayer {
    /// Operation captured at the POSIX layer.
    Posix,
    /// Operation captured at the MPI-IO layer.
    MpiIo,
}

impl DxtLayer {
    /// Name used in `darshan-dxt-parser` output (`X_POSIX` / `X_MPIIO`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DxtLayer::Posix => "X_POSIX",
            DxtLayer::MpiIo => "X_MPIIO",
        }
    }
}

/// Operation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A read operation.
    Read,
    /// A write operation.
    Write,
}

impl OpKind {
    /// Lower-case name used in DXT text output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
        }
    }
}

/// One traced I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DxtSegment {
    /// Byte offset of the access within the file.
    pub offset: u64,
    /// Transfer length in bytes.
    pub length: u64,
    /// Start time, seconds relative to job start.
    pub start_time: f64,
    /// End time, seconds relative to job start.
    pub end_time: f64,
}

impl DxtSegment {
    /// Duration of the operation in seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        (self.end_time - self.start_time).max(0.0)
    }

    /// Exclusive end offset of the byte range touched.
    #[must_use]
    pub fn end_offset(&self) -> u64 {
        self.offset.saturating_add(self.length)
    }

    /// Whether two segments touch overlapping byte ranges.
    ///
    /// Zero-length segments touch no bytes and never overlap anything.
    #[must_use]
    pub fn overlaps(&self, other: &DxtSegment) -> bool {
        self.length > 0
            && other.length > 0
            && self.offset < other.end_offset()
            && other.offset < self.end_offset()
    }

    /// Whether two segments overlap in time.
    #[must_use]
    pub fn overlaps_in_time(&self, other: &DxtSegment) -> bool {
        self.start_time < other.end_time && other.start_time < self.end_time
    }
}

/// DXT trace for one `(file, rank, layer)` triple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DxtRecord {
    /// Hashed record id of the file.
    pub file_id: u64,
    /// MPI rank that issued the operations.
    pub rank: i32,
    /// Interface layer the trace was captured at.
    pub layer: DxtLayer,
    /// Hostname of the node the rank ran on.
    pub hostname: String,
    /// Traced write operations, in issue order.
    pub writes: Vec<DxtSegment>,
    /// Traced read operations, in issue order.
    pub reads: Vec<DxtSegment>,
}

impl DxtRecord {
    /// Create an empty trace record.
    #[must_use]
    pub fn new(file_id: u64, rank: i32, layer: DxtLayer, hostname: &str) -> Self {
        DxtRecord {
            file_id,
            rank,
            layer,
            hostname: hostname.to_owned(),
            writes: Vec::new(),
            reads: Vec::new(),
        }
    }

    /// Append a traced operation.
    pub fn push(&mut self, kind: OpKind, segment: DxtSegment) {
        match kind {
            OpKind::Read => self.reads.push(segment),
            OpKind::Write => self.writes.push(segment),
        }
    }

    /// Total number of traced operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    /// Whether the record contains no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    /// Iterate over all segments with their op kind, writes first (the
    /// order `darshan-dxt-parser` prints them).
    pub fn iter(&self) -> impl Iterator<Item = (OpKind, &DxtSegment)> {
        self.writes
            .iter()
            .map(|s| (OpKind::Write, s))
            .chain(self.reads.iter().map(|s| (OpKind::Read, s)))
    }

    /// Total bytes moved by this record.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        // Hostile traces can carry u64::MAX lengths; saturate, don't panic.
        self.iter()
            .fold(0u64, |acc, (_, s)| acc.saturating_add(s.length))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(offset: u64, length: u64, start: f64, end: f64) -> DxtSegment {
        DxtSegment {
            offset,
            length,
            start_time: start,
            end_time: end,
        }
    }

    #[test]
    fn segment_overlap_detection() {
        let a = seg(0, 100, 0.0, 1.0);
        let b = seg(99, 10, 2.0, 3.0);
        let c = seg(100, 10, 0.5, 1.5);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps_in_time(&b));
        assert!(a.overlaps_in_time(&c));
    }

    #[test]
    fn zero_length_segment_never_overlaps() {
        let a = seg(10, 0, 0.0, 0.0);
        let b = seg(0, 100, 0.0, 1.0);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn duration_clamped_non_negative() {
        assert_eq!(seg(0, 1, 5.0, 4.0).duration(), 0.0);
        assert!((seg(0, 1, 1.0, 3.5).duration() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn record_push_and_iter_order() {
        let mut r = DxtRecord::new(1, 0, DxtLayer::Posix, "n0");
        r.push(OpKind::Read, seg(0, 10, 0.0, 0.1));
        r.push(OpKind::Write, seg(10, 20, 0.1, 0.2));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        // Writes are iterated first.
        let kinds: Vec<OpKind> = r.iter().map(|(k, _)| k).collect();
        assert_eq!(kinds, vec![OpKind::Write, OpKind::Read]);
        assert_eq!(r.total_bytes(), 30);
    }

    #[test]
    fn end_offset_saturates() {
        let s = seg(u64::MAX - 1, 10, 0.0, 0.0);
        assert_eq!(s.end_offset(), u64::MAX);
    }

    #[test]
    fn total_bytes_saturates() {
        let mut r = DxtRecord::new(1, 0, DxtLayer::Posix, "n0");
        r.push(OpKind::Write, seg(0, u64::MAX, 0.0, 0.1));
        r.push(OpKind::Read, seg(0, u64::MAX, 0.1, 0.2));
        assert_eq!(r.total_bytes(), u64::MAX);
    }
}
