//! HEATMAP module: per-rank temporal binning of I/O volume.
//!
//! Darshan ≥ 3.4 records a heatmap — for each rank, read and write bytes
//! binned over wall-clock time — using a fixed number of bins whose width
//! doubles (adjacent bins merging) whenever the run outgrows the current
//! range. This module reimplements that accumulator: it starts at a fine
//! [`HeatmapAccumulator::INITIAL_BIN_WIDTH`] and ends the run with at most
//! [`HeatmapAccumulator::NBINS`] bins covering the whole job, so short and
//! week-long jobs alike get a usable temporal profile at a bounded memory
//! cost.

use serde::{Deserialize, Serialize};

/// Per-rank heatmap record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeatmapRecord {
    /// MPI rank.
    pub rank: i32,
    /// Width of each bin in seconds.
    pub bin_width: f64,
    /// Bytes read per bin.
    pub read_bytes: Vec<u64>,
    /// Bytes written per bin.
    pub write_bytes: Vec<u64>,
}

impl HeatmapRecord {
    /// Number of bins.
    #[must_use]
    pub fn nbins(&self) -> usize {
        self.read_bytes.len()
    }

    /// Total bytes captured.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        // Hostile logs can carry u64::MAX bins; saturate rather than panic.
        self.read_bytes
            .iter()
            .chain(self.write_bytes.iter())
            .fold(0u64, |acc, &b| acc.saturating_add(b))
    }
}

/// Accumulates per-rank I/O volume over time with Darshan's
/// doubling-bin-width scheme.
#[derive(Debug, Clone)]
pub struct HeatmapAccumulator {
    rank: i32,
    bin_width: f64,
    read_bytes: Vec<u64>,
    write_bytes: Vec<u64>,
}

impl HeatmapAccumulator {
    /// Number of bins kept (Darshan's default `DARSHAN_HEATMAP_NBINS`-ish).
    pub const NBINS: usize = 64;
    /// Starting bin width in seconds.
    pub const INITIAL_BIN_WIDTH: f64 = 0.01;

    /// Start accumulating for one rank.
    #[must_use]
    pub fn new(rank: i32) -> Self {
        HeatmapAccumulator {
            rank,
            bin_width: Self::INITIAL_BIN_WIDTH,
            read_bytes: vec![0; Self::NBINS],
            write_bytes: vec![0; Self::NBINS],
        }
    }

    fn ensure_covers(&mut self, time: f64) {
        // An infinite timestamp would double forever (inf >= inf); hostile
        // logs can encode one, so refuse to widen and let `observe` clamp
        // the op into the last bin instead.
        if !time.is_finite() {
            return;
        }
        while time >= self.bin_width * Self::NBINS as f64 {
            // Double the bin width by merging adjacent pairs.
            for v in [&mut self.read_bytes, &mut self.write_bytes] {
                for i in 0..Self::NBINS / 2 {
                    v[i] = v[2 * i].saturating_add(v[2 * i + 1]);
                }
                for slot in v.iter_mut().skip(Self::NBINS / 2) {
                    *slot = 0;
                }
            }
            self.bin_width *= 2.0;
        }
    }

    /// Record an operation moving `bytes` over `[start, end]` seconds.
    /// Bytes are distributed across the covered bins proportionally to the
    /// overlap, as darshan-runtime does.
    pub fn observe(&mut self, is_write: bool, bytes: u64, start: f64, end: f64) {
        let start = start.max(0.0);
        let end = end.max(start);
        self.ensure_covers(end);
        let dest = if is_write {
            &mut self.write_bytes
        } else {
            &mut self.read_bytes
        };
        let first = (start / self.bin_width) as usize;
        let last = ((end / self.bin_width) as usize).min(Self::NBINS - 1);
        if first >= Self::NBINS {
            return;
        }
        let duration = end - start;
        if !duration.is_finite() || duration <= 0.0 || first == last {
            let slot = first.min(Self::NBINS - 1);
            dest[slot] = dest[slot].saturating_add(bytes);
            return;
        }
        let mut assigned = 0u64;
        #[allow(clippy::needless_range_loop)] // bin index drives both math and slot
        for bin in first..=last {
            let bin_start = bin as f64 * self.bin_width;
            let bin_end = bin_start + self.bin_width;
            let overlap = (end.min(bin_end) - start.max(bin_start)).max(0.0);
            let share = ((overlap / duration) * bytes as f64).round() as u64;
            let share = share.min(bytes - assigned);
            dest[bin] = dest[bin].saturating_add(share);
            assigned += share;
        }
        // Rounding remainder goes to the final bin so totals are preserved.
        dest[last] = dest[last].saturating_add(bytes - assigned);
    }

    /// Finalize into a record.
    #[must_use]
    pub fn finish(self) -> HeatmapRecord {
        HeatmapRecord {
            rank: self.rank,
            bin_width: self.bin_width,
            read_bytes: self.read_bytes,
            write_bytes: self.write_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_op_lands_in_its_bin() {
        let mut h = HeatmapAccumulator::new(0);
        h.observe(true, 1000, 0.025, 0.028); // bin 2 at 10ms width
        let r = h.finish();
        assert_eq!(r.write_bytes[2], 1000);
        assert_eq!(r.total_bytes(), 1000);
    }

    #[test]
    fn spanning_op_splits_proportionally() {
        let mut h = HeatmapAccumulator::new(0);
        // 0.005..0.015 spans bins 0 and 1 equally.
        h.observe(false, 1000, 0.005, 0.015);
        let r = h.finish();
        assert_eq!(r.read_bytes[0] + r.read_bytes[1], 1000);
        assert!(r.read_bytes[0] >= 450 && r.read_bytes[0] <= 550);
    }

    #[test]
    fn bin_width_doubles_to_cover_long_runs() {
        let mut h = HeatmapAccumulator::new(0);
        h.observe(true, 100, 0.0, 0.001);
        // 10 seconds >> 64 * 10ms: width doubles until coverage.
        h.observe(true, 200, 10.0, 10.001);
        let r = h.finish();
        assert!(r.bin_width * HeatmapAccumulator::NBINS as f64 > 10.0);
        assert_eq!(r.total_bytes(), 300);
        // The early bytes merged but survived.
        assert_eq!(r.write_bytes[0], 100);
    }

    #[test]
    fn totals_always_conserved() {
        let mut h = HeatmapAccumulator::new(0);
        let mut expected = 0u64;
        for i in 0..200u64 {
            let t = i as f64 * 0.037;
            h.observe(i % 2 == 0, i * 13, t, t + 0.02);
            expected += i * 13;
        }
        assert_eq!(h.finish().total_bytes(), expected);
    }

    #[test]
    fn zero_duration_op_counted_once() {
        let mut h = HeatmapAccumulator::new(0);
        h.observe(true, 42, 0.5, 0.5);
        assert_eq!(h.finish().total_bytes(), 42);
    }

    #[test]
    fn hostile_times_never_hang_or_panic() {
        let mut h = HeatmapAccumulator::new(0);
        h.observe(true, 10, 0.0, f64::INFINITY);
        h.observe(false, 10, f64::INFINITY, f64::INFINITY);
        h.observe(true, 10, f64::NAN, f64::NAN);
        h.observe(false, 10, -1.0e308, 1.0e308);
        h.observe(true, u64::MAX, 0.0, 0.001);
        h.observe(true, u64::MAX, 0.0, 0.001);
        let r = h.finish();
        assert!(r.bin_width.is_finite());
        assert_eq!(r.total_bytes(), u64::MAX); // saturated, not wrapped
    }

    #[test]
    fn saturated_bins_merge_without_panicking() {
        let mut h = HeatmapAccumulator::new(0);
        h.observe(true, u64::MAX, 0.0, 0.001);
        h.observe(true, u64::MAX, 0.011, 0.012);
        // Force a merge of the two saturated adjacent bins.
        h.observe(true, 1, 10.0, 10.001);
        assert_eq!(h.finish().total_bytes(), u64::MAX);
    }
}
