//! Text renderers equivalent to `darshan-parser` and `darshan-dxt-parser`.
//!
//! `darshan-parser` prints one line per counter:
//!
//! ```text
//! <module> <rank> <record id> <counter> <value> <file name>
//! ```
//!
//! `darshan-dxt-parser` prints one line per traced operation. The ION
//! extractor consumes the in-memory [`Log`] directly, but these renderers
//! exist so traces can be inspected and diffed the way HPC users do.

use crate::counters::{
    LustreCounter, MpiioCounter, MpiioFCounter, PosixCounter, PosixFCounter, StdioCounter,
    StdioFCounter,
};
use crate::log::Log;
use std::fmt::Write as _;

/// Render the statistical modules of a log in `darshan-parser` format.
#[must_use]
pub fn render_text(log: &Log) -> String {
    let names = log.name_map();
    let lookup = |id: u64| names.get(&id).copied().unwrap_or("<unknown>");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# darshan log version: ion-repro {}",
        crate::log::VERSION
    );
    let _ = writeln!(out, "# exe: {}", log.job.exe);
    let _ = writeln!(out, "# uid: {}", log.job.uid);
    let _ = writeln!(out, "# jobid: {}", log.job.job_id);
    let _ = writeln!(out, "# nprocs: {}", log.job.nprocs);
    let _ = writeln!(out, "# start_time: {}", log.job.start_time);
    let _ = writeln!(out, "# end_time: {}", log.job.end_time);
    let _ = writeln!(out, "# run time: {:.4}", log.job.run_time());
    for (k, v) in &log.job.metadata {
        let _ = writeln!(out, "# metadata: {k} = {v}");
    }
    out.push('\n');

    for r in &log.posix {
        let path = lookup(r.file_id);
        for c in PosixCounter::ALL {
            let _ = writeln!(
                out,
                "POSIX\t{}\t{}\t{}\t{}\t{}",
                r.rank,
                r.file_id,
                c.name(),
                r.get(c),
                path
            );
        }
        for c in PosixFCounter::ALL {
            let _ = writeln!(
                out,
                "POSIX\t{}\t{}\t{}\t{:.6}\t{}",
                r.rank,
                r.file_id,
                c.name(),
                r.fget(c),
                path
            );
        }
    }
    for r in &log.mpiio {
        let path = lookup(r.file_id);
        for c in MpiioCounter::ALL {
            let _ = writeln!(
                out,
                "MPI-IO\t{}\t{}\t{}\t{}\t{}",
                r.rank,
                r.file_id,
                c.name(),
                r.get(c),
                path
            );
        }
        for c in MpiioFCounter::ALL {
            let _ = writeln!(
                out,
                "MPI-IO\t{}\t{}\t{}\t{:.6}\t{}",
                r.rank,
                r.file_id,
                c.name(),
                r.fget(c),
                path
            );
        }
    }
    for r in &log.stdio {
        let path = lookup(r.file_id);
        for c in StdioCounter::ALL {
            let _ = writeln!(
                out,
                "STDIO\t{}\t{}\t{}\t{}\t{}",
                r.rank,
                r.file_id,
                c.name(),
                r.get(c),
                path
            );
        }
        for c in StdioFCounter::ALL {
            let _ = writeln!(
                out,
                "STDIO\t{}\t{}\t{}\t{:.6}\t{}",
                r.rank,
                r.file_id,
                c.name(),
                r.fget(c),
                path
            );
        }
    }
    for r in &log.heatmap {
        let _ = writeln!(
            out,
            "HEATMAP\t{}\tHEATMAP_BIN_WIDTH_SECONDS\t{:.6}",
            r.rank, r.bin_width
        );
        for (bin, (rd, wr)) in r.read_bytes.iter().zip(&r.write_bytes).enumerate() {
            if *rd > 0 || *wr > 0 {
                let _ = writeln!(
                    out,
                    "HEATMAP\t{}\tHEATMAP_BIN_{}\tread={}\twrite={}",
                    r.rank, bin, rd, wr
                );
            }
        }
    }
    for r in &log.lustre {
        let path = lookup(r.file_id);
        for c in LustreCounter::ALL {
            let _ = writeln!(
                out,
                "LUSTRE\t{}\t{}\t{}\t{}\t{}",
                r.rank,
                r.file_id,
                c.name(),
                r.get(c),
                path
            );
        }
        for (i, ost) in r.ost_ids.iter().enumerate() {
            let _ = writeln!(
                out,
                "LUSTRE\t{}\t{}\tLUSTRE_OST_ID_{}\t{}\t{}",
                r.rank, r.file_id, i, ost, path
            );
        }
    }
    out
}

/// Render the DXT module of a log in `darshan-dxt-parser` format.
#[must_use]
pub fn render_dxt_text(log: &Log) -> String {
    let names = log.name_map();
    let lookup = |id: u64| names.get(&id).copied().unwrap_or("<unknown>");
    let mut out = String::new();
    for r in &log.dxt {
        let _ = writeln!(
            out,
            "# DXT, file_id: {}, file_name: {}",
            r.file_id,
            lookup(r.file_id)
        );
        let _ = writeln!(out, "# DXT, rank: {}, hostname: {}", r.rank, r.hostname);
        let _ = writeln!(
            out,
            "# DXT, write_count: {}, read_count: {}",
            r.writes.len(),
            r.reads.len()
        );
        let _ = writeln!(
            out,
            "# Module    Rank  Wt/Rd  Segment          Offset       Length    Start(s)      End(s)"
        );
        for (seg_no, (kind, s)) in r.iter().enumerate() {
            let _ = writeln!(
                out,
                " {:<9} {:>5} {:>6} {:>8} {:>15} {:>12} {:>11.4} {:>11.4}",
                r.layer.name(),
                r.rank,
                kind.name(),
                seg_no,
                s.offset,
                s.length,
                s.start_time,
                s.end_time
            );
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::PosixAccumulator;
    use crate::dxt::{DxtLayer, DxtRecord, DxtSegment, OpKind};
    use crate::log::LogWriter;
    use crate::record_id;
    use crate::records::JobRecord;

    fn small_log() -> Log {
        let mut job = JobRecord::new(1, 2, 1);
        job.exe = "app".into();
        let mut w = LogWriter::new(job);
        let fid = record_id("/x");
        w.register_name(fid, "/x");
        let mut acc = PosixAccumulator::new(fid, 0);
        acc.open(0.0, 0.1);
        acc.write(0, 10, 0.1, 0.2, true);
        acc.close(0.2, 0.3);
        w.add_posix_record(acc.finish());
        let mut d = DxtRecord::new(fid, 0, DxtLayer::Posix, "h0");
        d.push(
            OpKind::Write,
            DxtSegment {
                offset: 0,
                length: 10,
                start_time: 0.1,
                end_time: 0.2,
            },
        );
        w.add_dxt_record(d);
        w.into_log()
    }

    #[test]
    fn text_output_contains_counter_lines() {
        let text = render_text(&small_log());
        assert!(text.contains("# nprocs: 1"));
        assert!(text.contains("POSIX_WRITES\t1\t/x"));
        assert!(text.contains("POSIX_BYTES_WRITTEN\t10\t/x"));
        assert!(text.contains("POSIX_F_META_TIME"));
    }

    #[test]
    fn text_output_one_line_per_counter() {
        let log = small_log();
        let text = render_text(&log);
        let posix_lines = text.lines().filter(|l| l.starts_with("POSIX\t")).count();
        assert_eq!(
            posix_lines,
            crate::counters::PosixCounter::COUNT + crate::counters::PosixFCounter::COUNT
        );
    }

    #[test]
    fn dxt_output_has_header_and_segment() {
        let text = render_dxt_text(&small_log());
        assert!(text.contains("# DXT, rank: 0, hostname: h0"));
        assert!(text.contains("write_count: 1, read_count: 0"));
        assert!(text.contains("X_POSIX"));
    }

    #[test]
    fn unknown_file_id_rendered_gracefully() {
        let mut log = small_log();
        log.names.clear();
        let text = render_text(&log);
        assert!(text.contains("<unknown>"));
    }
}
