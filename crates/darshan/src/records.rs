//! Per-file counter records and the job record.
//!
//! Darshan keeps one record per `(file, rank)` pair for each module. When a
//! file is accessed by every rank with identical behaviour, the runtime
//! *reduces* those records into a single shared record with `rank == -1`;
//! this crate exposes the same convention ([`SHARED_RANK`]).

use crate::counters::{
    LustreCounter, MpiioCounter, MpiioFCounter, PosixCounter, PosixFCounter, StdioCounter,
    StdioFCounter,
};
use serde::{Deserialize, Serialize};

/// Rank value denoting a record shared by (reduced across) all ranks.
pub const SHARED_RANK: i32 = -1;

macro_rules! counter_record {
    (
        $(#[$meta:meta])*
        $name:ident, $cty:ident, $fty:ident
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
        pub struct $name {
            /// Hashed record id of the file (see [`crate::record_id`]).
            pub file_id: u64,
            /// MPI rank the record belongs to, or [`SHARED_RANK`].
            pub rank: i32,
            /// Integer counters, indexed by the module's counter enum.
            pub counters: Vec<i64>,
            /// Floating-point counters, indexed by the module's f-counter enum.
            pub fcounters: Vec<f64>,
        }

        impl $name {
            /// Create a zeroed record for `file_id` on `rank`.
            #[must_use]
            pub fn new(file_id: u64, rank: i32) -> Self {
                $name {
                    file_id,
                    rank,
                    counters: vec![0; $cty::COUNT],
                    fcounters: vec![0.0; $fty::COUNT],
                }
            }

            /// Read an integer counter.
            #[must_use]
            pub fn get(&self, c: $cty) -> i64 {
                self.counters[c.index()]
            }

            /// Set an integer counter.
            pub fn set(&mut self, c: $cty, v: i64) {
                self.counters[c.index()] = v;
            }

            /// Add to an integer counter, saturating at the `i64` bounds.
            ///
            /// Records decoded from hostile logs can carry `i64::MAX`
            /// counters; accumulation over them must degrade (saturate)
            /// rather than abort the analysis with an overflow panic. Use
            /// [`Self::try_add`] where the overflow itself must surface.
            pub fn add(&mut self, c: $cty, v: i64) {
                let slot = &mut self.counters[c.index()];
                *slot = slot.saturating_add(v);
            }

            /// Add to an integer counter, reporting overflow as a typed
            /// error instead of saturating.
            ///
            /// # Errors
            ///
            /// Returns [`crate::DarshanError::Overflow`] when the sum does
            /// not fit in `i64`; the counter is left unchanged.
            pub fn try_add(&mut self, c: $cty, v: i64) -> Result<(), crate::DarshanError> {
                let slot = &mut self.counters[c.index()];
                *slot = slot.checked_add(v).ok_or(crate::DarshanError::Overflow {
                    what: c.name(),
                })?;
                Ok(())
            }

            /// Read a floating-point counter.
            #[must_use]
            pub fn fget(&self, c: $fty) -> f64 {
                self.fcounters[c.index()]
            }

            /// Set a floating-point counter.
            pub fn fset(&mut self, c: $fty, v: f64) {
                self.fcounters[c.index()] = v;
            }

            /// Add to a floating-point counter.
            pub fn fadd(&mut self, c: $fty, v: f64) {
                self.fcounters[c.index()] += v;
            }

            /// Whether the record carries the schema-mandated counter counts.
            #[must_use]
            pub fn is_well_formed(&self) -> bool {
                self.counters.len() == $cty::COUNT && self.fcounters.len() == $fty::COUNT
            }
        }
    };
}

counter_record! {
    /// POSIX module record for one `(file, rank)` pair.
    PosixRecord, PosixCounter, PosixFCounter
}

counter_record! {
    /// MPI-IO module record for one `(file, rank)` pair.
    MpiioRecord, MpiioCounter, MpiioFCounter
}

counter_record! {
    /// STDIO module record for one `(file, rank)` pair.
    StdioRecord, StdioCounter, StdioFCounter
}

/// Lustre striping metadata for one file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LustreRecord {
    /// Hashed record id of the file.
    pub file_id: u64,
    /// Rank that captured the layout (usually the first opener).
    pub rank: i32,
    /// Integer counters, indexed by [`LustreCounter`].
    pub counters: Vec<i64>,
    /// OST indices over which the file is striped (`LUSTRE_OST_ID_*`).
    pub ost_ids: Vec<i64>,
}

impl LustreRecord {
    /// Create a record describing a file striped over `ost_ids` with the
    /// given stripe size.
    #[must_use]
    pub fn new(file_id: u64, rank: i32, stripe_size: i64, ost_ids: Vec<i64>) -> Self {
        let mut counters = vec![0; LustreCounter::COUNT];
        counters[LustreCounter::LUSTRE_STRIPE_SIZE.index()] = stripe_size;
        counters[LustreCounter::LUSTRE_STRIPE_WIDTH.index()] = ost_ids.len() as i64;
        counters[LustreCounter::LUSTRE_OSTS.index()] = ost_ids.len() as i64;
        counters[LustreCounter::LUSTRE_MDTS.index()] = 1;
        LustreRecord {
            file_id,
            rank,
            counters,
            ost_ids,
        }
    }

    /// Read an integer counter.
    #[must_use]
    pub fn get(&self, c: LustreCounter) -> i64 {
        self.counters[c.index()]
    }

    /// Stripe size in bytes.
    #[must_use]
    pub fn stripe_size(&self) -> i64 {
        self.get(LustreCounter::LUSTRE_STRIPE_SIZE)
    }

    /// Stripe width (number of OSTs the file is striped over).
    #[must_use]
    pub fn stripe_width(&self) -> i64 {
        self.get(LustreCounter::LUSTRE_STRIPE_WIDTH)
    }
}

/// Job-level header record: who ran, how wide, and when.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Numeric user id.
    pub uid: u32,
    /// Scheduler job id.
    pub job_id: u64,
    /// Number of MPI processes.
    pub nprocs: u32,
    /// Job start, seconds since the epoch.
    pub start_time: f64,
    /// Job end, seconds since the epoch.
    pub end_time: f64,
    /// Free-form metadata (`key = value` lines in `darshan-parser` output).
    pub metadata: Vec<(String, String)>,
    /// Executable name and arguments.
    pub exe: String,
}

impl JobRecord {
    /// Create a job record with zero duration and no metadata.
    #[must_use]
    pub fn new(uid: u32, job_id: u64, nprocs: u32) -> Self {
        JobRecord {
            uid,
            job_id,
            nprocs,
            start_time: 0.0,
            end_time: 0.0,
            metadata: Vec::new(),
            exe: String::new(),
        }
    }

    /// Wall-clock duration of the job in seconds.
    #[must_use]
    pub fn run_time(&self) -> f64 {
        (self.end_time - self.start_time).max(0.0)
    }

    /// Attach a metadata key/value pair, returning `self` for chaining.
    #[must_use]
    pub fn with_metadata(mut self, key: &str, value: &str) -> Self {
        self.metadata.push((key.to_owned(), value.to_owned()));
        self
    }
}

/// A name record maps a hashed record id back to the file path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NameRecord {
    /// Hashed record id.
    pub id: u64,
    /// File path as seen by the application.
    pub path: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_record_is_zeroed_and_well_formed() {
        let r = PosixRecord::new(1, 0);
        assert!(r.is_well_formed());
        assert!(r.counters.iter().all(|&c| c == 0));
        assert!(r.fcounters.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn add_saturates_at_extremes() {
        let mut r = PosixRecord::new(1, 0);
        r.set(PosixCounter::POSIX_READS, i64::MAX);
        r.add(PosixCounter::POSIX_READS, 1);
        assert_eq!(r.get(PosixCounter::POSIX_READS), i64::MAX);
        r.set(PosixCounter::POSIX_WRITES, i64::MIN);
        r.add(PosixCounter::POSIX_WRITES, -1);
        assert_eq!(r.get(PosixCounter::POSIX_WRITES), i64::MIN);
    }

    #[test]
    fn try_add_reports_overflow_and_leaves_counter_unchanged() {
        let mut r = PosixRecord::new(1, 0);
        r.set(PosixCounter::POSIX_BYTES_READ, i64::MAX - 1);
        assert!(r.try_add(PosixCounter::POSIX_BYTES_READ, 1).is_ok());
        let err = r.try_add(PosixCounter::POSIX_BYTES_READ, 1).unwrap_err();
        assert!(matches!(
            err,
            crate::DarshanError::Overflow {
                what: "POSIX_BYTES_READ"
            }
        ));
        assert_eq!(r.get(PosixCounter::POSIX_BYTES_READ), i64::MAX);
    }

    #[test]
    fn get_set_add_round_trip() {
        let mut r = PosixRecord::new(1, 0);
        r.set(PosixCounter::POSIX_READS, 5);
        r.add(PosixCounter::POSIX_READS, 3);
        assert_eq!(r.get(PosixCounter::POSIX_READS), 8);
        r.fset(PosixFCounter::POSIX_F_READ_TIME, 1.5);
        r.fadd(PosixFCounter::POSIX_F_READ_TIME, 0.5);
        assert!((r.fget(PosixFCounter::POSIX_F_READ_TIME) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lustre_record_derives_width_from_osts() {
        let r = LustreRecord::new(9, 0, 1 << 20, vec![0, 3, 5, 7]);
        assert_eq!(r.stripe_width(), 4);
        assert_eq!(r.stripe_size(), 1 << 20);
        assert_eq!(r.get(LustreCounter::LUSTRE_MDTS), 1);
    }

    #[test]
    fn job_run_time_never_negative() {
        let mut j = JobRecord::new(0, 1, 4);
        j.start_time = 10.0;
        j.end_time = 4.0;
        assert_eq!(j.run_time(), 0.0);
        j.end_time = 14.0;
        assert_eq!(j.run_time(), 4.0);
    }

    #[test]
    fn job_metadata_builder_chains() {
        let j = JobRecord::new(0, 1, 4)
            .with_metadata("lib_ver", "3.4.4")
            .with_metadata("h", "x");
        assert_eq!(j.metadata.len(), 2);
        assert_eq!(j.metadata[0].0, "lib_ver");
    }

    #[test]
    fn mpiio_and_stdio_records_well_formed() {
        assert!(MpiioRecord::new(2, 1).is_well_formed());
        assert!(StdioRecord::new(3, SHARED_RANK).is_well_formed());
    }
}
