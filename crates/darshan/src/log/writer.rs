//! Log serialization.

use super::varint::{put_f64, put_ivarint, put_string, put_uvarint};
use super::{crc32, Log, MAGIC, TAG_END, TAG_JOB, TAG_NAMES, VERSION};
use crate::counters::ModuleId;
use crate::dxt::{DxtLayer, DxtRecord};
use crate::heatmap::HeatmapRecord;
use crate::records::{JobRecord, LustreRecord, MpiioRecord, PosixRecord, StdioRecord};
use crate::DarshanError;

/// Accumulates records and serializes them into the binary log format.
///
/// The writer mirrors how `darshan-core` assembles a log at MPI finalize
/// time: records are appended per module and the container is framed in one
/// pass by [`LogWriter::finish`].
#[derive(Debug, Clone)]
pub struct LogWriter {
    log: Log,
}

impl LogWriter {
    /// Start a log for the given job.
    #[must_use]
    pub fn new(job: JobRecord) -> Self {
        LogWriter { log: Log::new(job) }
    }

    /// Wrap an existing in-memory log for serialization.
    #[must_use]
    pub fn from_log(log: Log) -> Self {
        LogWriter { log }
    }

    /// Register a record id → path mapping.
    pub fn register_name(&mut self, id: u64, path: &str) {
        if !self.log.names.iter().any(|n| n.id == id) {
            self.log.names.push(crate::records::NameRecord {
                id,
                path: path.to_owned(),
            });
        }
    }

    /// Append a POSIX record.
    pub fn add_posix_record(&mut self, record: PosixRecord) {
        self.log.posix.push(record);
    }

    /// Append an MPI-IO record.
    pub fn add_mpiio_record(&mut self, record: MpiioRecord) {
        self.log.mpiio.push(record);
    }

    /// Append a STDIO record.
    pub fn add_stdio_record(&mut self, record: StdioRecord) {
        self.log.stdio.push(record);
    }

    /// Append a Lustre record.
    pub fn add_lustre_record(&mut self, record: LustreRecord) {
        self.log.lustre.push(record);
    }

    /// Append a DXT record.
    pub fn add_dxt_record(&mut self, record: DxtRecord) {
        self.log.dxt.push(record);
    }

    /// Append a heatmap record.
    pub fn add_heatmap_record(&mut self, record: HeatmapRecord) {
        self.log.heatmap.push(record);
    }

    /// Access the job record for mutation (e.g. to set end time).
    pub fn job_mut(&mut self) -> &mut JobRecord {
        &mut self.log.job
    }

    /// Consume the writer and return the in-memory log without serializing.
    #[must_use]
    pub fn into_log(self) -> Log {
        self.log
    }

    /// Borrow the in-memory log.
    #[must_use]
    pub fn log(&self) -> &Log {
        &self.log
    }

    /// Serialize the log into bytes.
    ///
    /// # Errors
    ///
    /// Fails only if a string field (path, hostname, exe) exceeds the
    /// format's 64 KiB string limit.
    pub fn finish(&mut self) -> Result<Vec<u8>, DarshanError> {
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // flags

        let mut payload = Vec::new();
        encode_job(&mut payload, &self.log.job)?;
        region(&mut out, TAG_JOB, &payload);

        payload.clear();
        put_uvarint(&mut payload, self.log.names.len() as u64);
        for n in &self.log.names {
            put_uvarint(&mut payload, n.id);
            put_string(&mut payload, &n.path)?;
        }
        region(&mut out, TAG_NAMES, &payload);

        if !self.log.posix.is_empty() {
            payload.clear();
            put_uvarint(&mut payload, self.log.posix.len() as u64);
            for r in &self.log.posix {
                encode_counter_record(&mut payload, r.file_id, r.rank, &r.counters, &r.fcounters);
            }
            region(&mut out, ModuleId::Posix.code(), &payload);
        }
        if !self.log.mpiio.is_empty() {
            payload.clear();
            put_uvarint(&mut payload, self.log.mpiio.len() as u64);
            for r in &self.log.mpiio {
                encode_counter_record(&mut payload, r.file_id, r.rank, &r.counters, &r.fcounters);
            }
            region(&mut out, ModuleId::MpiIo.code(), &payload);
        }
        if !self.log.stdio.is_empty() {
            payload.clear();
            put_uvarint(&mut payload, self.log.stdio.len() as u64);
            for r in &self.log.stdio {
                encode_counter_record(&mut payload, r.file_id, r.rank, &r.counters, &r.fcounters);
            }
            region(&mut out, ModuleId::Stdio.code(), &payload);
        }
        if !self.log.lustre.is_empty() {
            payload.clear();
            put_uvarint(&mut payload, self.log.lustre.len() as u64);
            for r in &self.log.lustre {
                encode_lustre_record(&mut payload, r);
            }
            region(&mut out, ModuleId::Lustre.code(), &payload);
        }
        if !self.log.dxt.is_empty() {
            payload.clear();
            put_uvarint(&mut payload, self.log.dxt.len() as u64);
            for r in &self.log.dxt {
                encode_dxt_record(&mut payload, r)?;
            }
            region(&mut out, ModuleId::Dxt.code(), &payload);
        }

        if !self.log.heatmap.is_empty() {
            payload.clear();
            put_uvarint(&mut payload, self.log.heatmap.len() as u64);
            for r in &self.log.heatmap {
                encode_heatmap_record(&mut payload, r);
            }
            region(&mut out, ModuleId::Heatmap.code(), &payload);
        }

        out.push(TAG_END);
        Ok(out)
    }
}

pub(super) fn region(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    put_uvarint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

pub(super) fn encode_lustre_record(payload: &mut Vec<u8>, r: &LustreRecord) {
    put_uvarint(payload, r.file_id);
    put_ivarint(payload, i64::from(r.rank));
    put_uvarint(payload, r.counters.len() as u64);
    for &c in &r.counters {
        put_ivarint(payload, c);
    }
    put_uvarint(payload, r.ost_ids.len() as u64);
    for &o in &r.ost_ids {
        put_ivarint(payload, o);
    }
}

pub(super) fn encode_heatmap_record(payload: &mut Vec<u8>, r: &HeatmapRecord) {
    put_ivarint(payload, i64::from(r.rank));
    put_f64(payload, r.bin_width);
    put_uvarint(payload, r.read_bytes.len() as u64);
    for &b in &r.read_bytes {
        put_uvarint(payload, b);
    }
    for &b in &r.write_bytes {
        put_uvarint(payload, b);
    }
}

pub(super) fn encode_job(buf: &mut Vec<u8>, job: &JobRecord) -> Result<(), DarshanError> {
    put_uvarint(buf, u64::from(job.uid));
    put_uvarint(buf, job.job_id);
    put_uvarint(buf, u64::from(job.nprocs));
    put_f64(buf, job.start_time);
    put_f64(buf, job.end_time);
    put_string(buf, &job.exe)?;
    put_uvarint(buf, job.metadata.len() as u64);
    for (k, v) in &job.metadata {
        put_string(buf, k)?;
        put_string(buf, v)?;
    }
    Ok(())
}

pub(super) fn encode_counter_record(
    buf: &mut Vec<u8>,
    file_id: u64,
    rank: i32,
    counters: &[i64],
    fcounters: &[f64],
) {
    put_uvarint(buf, file_id);
    put_ivarint(buf, i64::from(rank));
    put_uvarint(buf, counters.len() as u64);
    for &c in counters {
        put_ivarint(buf, c);
    }
    put_uvarint(buf, fcounters.len() as u64);
    for &f in fcounters {
        put_f64(buf, f);
    }
}

pub(super) fn encode_dxt_record(buf: &mut Vec<u8>, r: &DxtRecord) -> Result<(), DarshanError> {
    put_uvarint(buf, r.file_id);
    put_ivarint(buf, i64::from(r.rank));
    buf.push(match r.layer {
        DxtLayer::Posix => 0,
        DxtLayer::MpiIo => 1,
    });
    put_string(buf, &r.hostname)?;
    for segs in [&r.writes, &r.reads] {
        put_uvarint(buf, segs.len() as u64);
        let mut prev_offset: i64 = 0;
        for s in segs {
            // Offsets delta-encode well for sequential workloads and cost
            // at most two extra bytes for random ones.
            put_ivarint(buf, s.offset as i64 - prev_offset);
            prev_offset = s.offset as i64;
            put_uvarint(buf, s.length);
            put_f64(buf, s.start_time);
            put_f64(buf, s.end_time);
        }
    }
    Ok(())
}
