//! LEB128 varint and zigzag encoding used by the binary log format.

use crate::DarshanError;
use bytes::{Buf, BufMut};

/// Encode an unsigned integer as LEB128.
pub fn put_uvarint(buf: &mut impl BufMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decode a LEB128 unsigned integer.
///
/// # Errors
///
/// Returns [`DarshanError::UnexpectedEof`] when the buffer runs out mid-value
/// and [`DarshanError::VarintOverflow`] when the encoding exceeds 64 bits.
pub fn get_uvarint(buf: &mut impl Buf) -> Result<u64, DarshanError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(DarshanError::UnexpectedEof { decoding: "varint" });
        }
        let byte = buf.get_u8();
        if shift == 63 && byte > 1 {
            return Err(DarshanError::VarintOverflow);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(DarshanError::VarintOverflow);
        }
    }
}

/// Zigzag-map a signed integer so small magnitudes encode small.
#[must_use]
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Encode a signed integer (zigzag + LEB128).
pub fn put_ivarint(buf: &mut impl BufMut, value: i64) {
    put_uvarint(buf, zigzag(value));
}

/// Decode a signed integer (zigzag + LEB128).
///
/// # Errors
///
/// Same conditions as [`get_uvarint`].
pub fn get_ivarint(buf: &mut impl Buf) -> Result<i64, DarshanError> {
    Ok(unzigzag(get_uvarint(buf)?))
}

/// Encode an `f64` as its little-endian bit pattern.
pub fn put_f64(buf: &mut impl BufMut, value: f64) {
    buf.put_u64_le(value.to_bits());
}

/// Decode an `f64` from its little-endian bit pattern.
///
/// # Errors
///
/// Returns [`DarshanError::UnexpectedEof`] on a short buffer.
pub fn get_f64(buf: &mut impl Buf) -> Result<f64, DarshanError> {
    if buf.remaining() < 8 {
        return Err(DarshanError::UnexpectedEof { decoding: "f64" });
    }
    Ok(f64::from_bits(buf.get_u64_le()))
}

/// Encode a length-prefixed UTF-8 string.
///
/// # Errors
///
/// Returns [`DarshanError::StringTooLong`] for strings over 64 KiB.
pub fn put_string(buf: &mut impl BufMut, s: &str) -> Result<(), DarshanError> {
    const MAX: usize = 65_536;
    if s.len() > MAX {
        return Err(DarshanError::StringTooLong {
            len: s.len(),
            max: MAX,
        });
    }
    put_uvarint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
    Ok(())
}

/// Decode a length-prefixed UTF-8 string.
///
/// # Errors
///
/// Returns [`DarshanError::UnexpectedEof`] on truncation and
/// [`DarshanError::InvalidName`] on invalid UTF-8.
pub fn get_string(buf: &mut impl Buf) -> Result<String, DarshanError> {
    let len = get_uvarint(buf)? as usize;
    if buf.remaining() < len {
        return Err(DarshanError::UnexpectedEof { decoding: "string" });
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| DarshanError::InvalidName)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX / 2, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut slice = &buf[..];
            assert_eq!(get_uvarint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn ivarint_round_trip_signs() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            assert_eq!(get_ivarint(&mut &buf[..]).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_encode_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
    }

    #[test]
    fn truncated_varint_is_eof() {
        let buf = [0x80u8, 0x80];
        assert!(matches!(
            get_uvarint(&mut &buf[..]),
            Err(DarshanError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn overlong_varint_is_overflow() {
        let buf = [0xffu8; 11];
        assert!(matches!(
            get_uvarint(&mut &buf[..]),
            Err(DarshanError::VarintOverflow)
        ));
    }

    #[test]
    fn f64_round_trip_specials() {
        for v in [
            0.0f64,
            -0.0,
            1.5,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::INFINITY,
        ] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            assert_eq!(get_f64(&mut &buf[..]).unwrap().to_bits(), v.to_bits());
        }
        let mut buf = Vec::new();
        put_f64(&mut buf, f64::NAN);
        assert!(get_f64(&mut &buf[..]).unwrap().is_nan());
    }

    #[test]
    fn string_round_trip_and_limits() {
        let mut buf = Vec::new();
        put_string(&mut buf, "héllo/wörld").unwrap();
        assert_eq!(get_string(&mut &buf[..]).unwrap(), "héllo/wörld");

        let long = "x".repeat(70_000);
        assert!(matches!(
            put_string(&mut Vec::new(), &long),
            Err(DarshanError::StringTooLong { .. })
        ));
    }

    #[test]
    fn invalid_utf8_string_rejected() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            get_string(&mut &buf[..]),
            Err(DarshanError::InvalidName)
        ));
    }
}
