//! CRC-32 (IEEE 802.3 polynomial) used to checksum log regions.

/// Streaming CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

const POLY: u32 = 0xedb8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

impl Crc32 {
    /// Start a new hash.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xffff_ffff }
    }

    /// Feed bytes into the hash.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            let idx = ((self.state ^ u32::from(b)) & 0xff) as usize;
            self.state = (self.state >> 8) ^ t[idx];
        }
    }

    /// Finish and return the checksum.
    #[must_use]
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_test_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 64];
        let before = crc32(&data);
        data[17] ^= 0x04;
        assert_ne!(before, crc32(&data));
    }
}
