//! Binary log format: a compact, checksummed container for Darshan records.
//!
//! Layout (all integers varint unless stated):
//!
//! ```text
//! magic  u32le  "DSHN"
//! version u16le
//! flags  u16le
//! region*            tag u8, payload_len uvarint, payload, crc32 u32le
//! end    tag 0xFF
//! ```
//!
//! Regions: `0x10` job record, `0x11` name table, and one region per module
//! (tag = [`crate::counters::ModuleId::code`]). Counter values are zigzag varints; DXT
//! offsets are delta-encoded against the previous segment to keep large
//! traces compact.

mod crc;
mod reader;
mod stream;
mod varint;
mod writer;

pub use crc::{crc32, Crc32};
pub use reader::{LogReader, PartialLog};
pub use stream::{RawRegion, StreamDecoder, StreamWriter};
pub use varint::{
    get_f64, get_ivarint, get_string, get_uvarint, put_f64, put_ivarint, put_string, put_uvarint,
};
pub use writer::LogWriter;

use crate::dxt::DxtRecord;
use crate::heatmap::HeatmapRecord;
use crate::records::{JobRecord, LustreRecord, MpiioRecord, NameRecord, PosixRecord, StdioRecord};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Log magic: `"DSHN"` little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"DSHN");
/// Current format version.
pub const VERSION: u16 = 1;

/// Region tag for the job record.
pub(crate) const TAG_JOB: u8 = 0x10;
/// Region tag for the name table.
pub(crate) const TAG_NAMES: u8 = 0x11;
/// End-of-log tag.
pub(crate) const TAG_END: u8 = 0xff;

/// A fully decoded Darshan log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Log {
    /// Job-level header record.
    pub job: JobRecord,
    /// Record-id → path mappings.
    pub names: Vec<NameRecord>,
    /// POSIX module records.
    pub posix: Vec<PosixRecord>,
    /// MPI-IO module records.
    pub mpiio: Vec<MpiioRecord>,
    /// STDIO module records.
    pub stdio: Vec<StdioRecord>,
    /// Lustre module records.
    pub lustre: Vec<LustreRecord>,
    /// DXT trace records.
    pub dxt: Vec<DxtRecord>,
    /// Heatmap records (per-rank temporal I/O volume).
    pub heatmap: Vec<HeatmapRecord>,
}

impl Log {
    /// An empty log with the given job record.
    #[must_use]
    pub fn new(job: JobRecord) -> Self {
        Log {
            job,
            names: Vec::new(),
            posix: Vec::new(),
            mpiio: Vec::new(),
            stdio: Vec::new(),
            lustre: Vec::new(),
            dxt: Vec::new(),
            heatmap: Vec::new(),
        }
    }

    /// Map record ids to paths.
    #[must_use]
    pub fn name_map(&self) -> HashMap<u64, &str> {
        self.names.iter().map(|n| (n.id, n.path.as_str())).collect()
    }

    /// Path for a record id, if registered.
    #[must_use]
    pub fn path_for(&self, id: u64) -> Option<&str> {
        self.names
            .iter()
            .find(|n| n.id == id)
            .map(|n| n.path.as_str())
    }

    /// Names of the modules that have at least one record.
    #[must_use]
    pub fn modules_present(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if !self.posix.is_empty() {
            out.push("POSIX");
        }
        if !self.mpiio.is_empty() {
            out.push("MPI-IO");
        }
        if !self.stdio.is_empty() {
            out.push("STDIO");
        }
        if !self.lustre.is_empty() {
            out.push("LUSTRE");
        }
        if !self.dxt.is_empty() {
            out.push("DXT");
        }
        if !self.heatmap.is_empty() {
            out.push("HEATMAP");
        }
        out
    }

    /// Total number of module records (excluding names/job).
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.posix.len()
            + self.mpiio.len()
            + self.stdio.len()
            + self.lustre.len()
            + self.dxt.len()
            + self.heatmap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::PosixAccumulator;
    use crate::dxt::{DxtLayer, DxtSegment, OpKind};
    use crate::record_id;

    fn sample_log() -> Log {
        let mut job = JobRecord::new(501, 777, 4).with_metadata("k", "v");
        job.start_time = 100.0;
        job.end_time = 130.0;
        job.exe = "ior -a POSIX".into();
        let mut writer = LogWriter::new(job);
        let fid = record_id("/scratch/file.dat");
        writer.register_name(fid, "/scratch/file.dat");
        for rank in 0..4 {
            let mut acc = PosixAccumulator::new(fid, rank);
            acc.open(0.0, 0.01);
            for i in 0..10u64 {
                acc.write(
                    i * 4096,
                    4096,
                    0.01 * i as f64,
                    0.01 * i as f64 + 0.005,
                    true,
                );
            }
            acc.close(0.2, 0.21);
            writer.add_posix_record(acc.finish());
            let mut dxt = DxtRecord::new(fid, rank, DxtLayer::Posix, "node01");
            for i in 0..10u64 {
                dxt.push(
                    OpKind::Write,
                    DxtSegment {
                        offset: i * 4096,
                        length: 4096,
                        start_time: 0.01 * i as f64,
                        end_time: 0.01 * i as f64 + 0.005,
                    },
                );
            }
            writer.add_dxt_record(dxt);
        }
        writer.add_lustre_record(LustreRecord::new(fid, 0, 1 << 20, vec![0, 1, 2, 3]));
        writer.into_log()
    }

    #[test]
    fn full_round_trip() {
        let log = sample_log();
        let mut w = LogWriter::from_log(log.clone());
        let bytes = w.finish().unwrap();
        let decoded = LogReader::read(&bytes).unwrap();
        assert_eq!(decoded, log);
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let log = sample_log();
        let mut w = LogWriter::from_log(log);
        let mut bytes = w.finish().unwrap();
        // Flip a byte inside the payload area (past the 8-byte header).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let err = LogReader::read(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                crate::DarshanError::ChecksumMismatch { .. }
                    | crate::DarshanError::UnexpectedEof { .. }
                    | crate::DarshanError::Truncated { .. }
                    | crate::DarshanError::UnknownModule { .. }
                    | crate::DarshanError::InvalidName
                    | crate::DarshanError::VarintOverflow
                    | crate::DarshanError::Overflow { .. }
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = [0u8; 16];
        assert!(matches!(
            LogReader::read(&bytes),
            Err(crate::DarshanError::BadMagic { .. })
        ));
    }

    #[test]
    fn truncated_log_rejected() {
        let log = sample_log();
        let mut w = LogWriter::from_log(log);
        let bytes = w.finish().unwrap();
        let err = LogReader::read(&bytes[..bytes.len() - 10]).unwrap_err();
        assert!(matches!(
            err,
            crate::DarshanError::UnexpectedEof { .. } | crate::DarshanError::Truncated { .. }
        ));
    }

    #[test]
    fn modules_present_reflects_content() {
        let log = sample_log();
        let mods = log.modules_present();
        assert!(mods.contains(&"POSIX"));
        assert!(mods.contains(&"LUSTRE"));
        assert!(mods.contains(&"DXT"));
        assert!(!mods.contains(&"MPI-IO"));
    }

    #[test]
    fn name_lookup() {
        let log = sample_log();
        let fid = record_id("/scratch/file.dat");
        assert_eq!(log.path_for(fid), Some("/scratch/file.dat"));
        assert_eq!(log.path_for(12345), None);
        assert_eq!(log.name_map().len(), 1);
    }
}
