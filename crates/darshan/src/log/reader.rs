//! Log deserialization with checksum verification.
//!
//! [`LogReader::read`] / [`LogReader::read_lenient`] are eager drivers
//! over the streaming frame reader ([`super::StreamDecoder`]): they pull
//! every region and consume it immediately. Out-of-core consumers use
//! the decoder directly and pay for only the regions they visit.

use super::stream::StreamDecoder;
use super::varint::{get_f64, get_ivarint, get_string, get_uvarint};
use super::{Log, TAG_JOB, TAG_NAMES};
use crate::counters::{
    LustreCounter, ModuleId, MpiioCounter, MpiioFCounter, PosixCounter, PosixFCounter,
    StdioCounter, StdioFCounter,
};
use crate::dxt::{DxtLayer, DxtRecord, DxtSegment};
use crate::heatmap::HeatmapRecord;
use crate::records::{JobRecord, LustreRecord, MpiioRecord, NameRecord, PosixRecord, StdioRecord};
use crate::DarshanError;

/// Decodes binary logs produced by [`super::LogWriter`].
#[derive(Debug)]
pub struct LogReader;

/// Result of a lenient decode: every region that survived framing, CRC and
/// record validation, plus the typed error for each region that did not.
///
/// Truncated logs keep their valid prefix: regions before the cut decode
/// normally and the truncation itself is reported as the final error.
#[derive(Debug, Clone)]
pub struct PartialLog {
    /// Records from every region that decoded cleanly.
    pub log: Log,
    /// One typed error per region that failed (empty = fully clean log).
    pub errors: Vec<DarshanError>,
}

impl PartialLog {
    /// Whether every region decoded cleanly.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.errors.is_empty()
    }
}

impl LogReader {
    /// Decode a complete log from bytes, verifying every region checksum.
    ///
    /// # Errors
    ///
    /// Returns a [`DarshanError`] describing the first structural problem:
    /// bad magic, unsupported version, CRC mismatch, truncation, or a
    /// malformed record. Truncation at a region boundary is reported as
    /// [`DarshanError::Truncated`] carrying the region name and the byte
    /// offset where the doomed region began.
    pub fn read(bytes: &[u8]) -> Result<Log, DarshanError> {
        let partial = Self::read_impl(bytes, false)?;
        match partial.errors.into_iter().next() {
            Some(err) => Err(err),
            None => Ok(partial.log),
        }
    }

    /// Decode as much of a log as possible: regions that fail framing,
    /// CRC, or record validation are skipped (with a typed error recorded
    /// per failure) and decoding continues at the next region boundary.
    ///
    /// A log truncated mid-region yields every region before the cut —
    /// the "valid prefix still yields partial results" half of the
    /// robustness contract.
    ///
    /// # Errors
    ///
    /// Only header-level problems (too short, bad magic, unsupported
    /// version) are fatal: with no trustworthy framing there is nothing
    /// to salvage.
    pub fn read_lenient(bytes: &[u8]) -> Result<PartialLog, DarshanError> {
        Self::read_impl(bytes, true)
    }

    fn read_impl(bytes: &[u8], lenient: bool) -> Result<PartialLog, DarshanError> {
        let mut decode_span = ion_obs::span!("decode");
        decode_span.attr("bytes", bytes.len());
        ion_obs::counter("darshan.decode.bytes", bytes.len() as u64);
        let mut decoder = StreamDecoder::new(bytes)?;

        let mut out = PartialLog {
            log: Log::new(JobRecord::new(0, 0, 0)),
            errors: Vec::new(),
        };
        let mut saw_job = false;
        loop {
            let region = match decoder.next_region() {
                Ok(Some(region)) => region,
                Ok(None) => break,
                Err(err) => {
                    // Framing failure: with no trustworthy frame boundary
                    // there is no next region to resynchronize on.
                    if lenient {
                        out.errors.push(err);
                        break;
                    }
                    return Err(err);
                }
            };
            match region.decode_into(&mut out.log) {
                Ok(job_seen) => saw_job |= job_seen,
                Err(err) => {
                    if lenient {
                        out.errors.push(err);
                        continue;
                    }
                    return Err(err);
                }
            }
        }
        if !saw_job {
            let err = DarshanError::UnexpectedEof {
                decoding: "job region",
            };
            if lenient {
                out.errors.push(err);
            } else {
                return Err(err);
            }
        }
        let records = out.log.names.len()
            + out.log.posix.len()
            + out.log.mpiio.len()
            + out.log.stdio.len()
            + out.log.lustre.len()
            + out.log.dxt.len()
            + out.log.heatmap.len();
        ion_obs::counter("darshan.decode.records", records as u64);
        decode_span.attr("records", records);
        Ok(out)
    }
}

/// Decode one CRC-verified region payload into `log`. Returns whether the
/// region was the job record. Partially decoded records are discarded on
/// error: the caller either aborts (strict) or skips the region (lenient).
pub(super) fn decode_region(log: &mut Log, tag: u8, payload: &[u8]) -> Result<bool, DarshanError> {
    let mut p = payload;
    match tag {
        TAG_JOB => {
            log.job = decode_job(&mut p)?;
            return Ok(true);
        }
        TAG_NAMES => {
            let n = get_uvarint(&mut p)? as usize;
            let mut names = Vec::new();
            for _ in 0..n {
                let id = get_uvarint(&mut p)?;
                let path = get_string(&mut p)?;
                names.push(NameRecord { id, path });
            }
            log.names.extend(names);
        }
        t => match ModuleId::from_code(t) {
            Some(ModuleId::Posix) => {
                let n = get_uvarint(&mut p)? as usize;
                let mut records = Vec::new();
                for _ in 0..n {
                    records.push(decode_posix(&mut p)?);
                }
                log.posix.extend(records);
            }
            Some(ModuleId::MpiIo) => {
                let n = get_uvarint(&mut p)? as usize;
                let mut records = Vec::new();
                for _ in 0..n {
                    records.push(decode_mpiio(&mut p)?);
                }
                log.mpiio.extend(records);
            }
            Some(ModuleId::Stdio) => {
                let n = get_uvarint(&mut p)? as usize;
                let mut records = Vec::new();
                for _ in 0..n {
                    records.push(decode_stdio(&mut p)?);
                }
                log.stdio.extend(records);
            }
            Some(ModuleId::Lustre) => {
                let n = get_uvarint(&mut p)? as usize;
                let mut records = Vec::new();
                for _ in 0..n {
                    records.push(decode_lustre(&mut p)?);
                }
                log.lustre.extend(records);
            }
            Some(ModuleId::Dxt) => {
                let n = get_uvarint(&mut p)? as usize;
                let mut records = Vec::new();
                for _ in 0..n {
                    records.push(decode_dxt(&mut p)?);
                }
                log.dxt.extend(records);
            }
            Some(ModuleId::Heatmap) => {
                let n = get_uvarint(&mut p)? as usize;
                let mut records = Vec::new();
                for _ in 0..n {
                    records.push(decode_heatmap(&mut p)?);
                }
                log.heatmap.extend(records);
            }
            None => return Err(DarshanError::UnknownModule { id: t }),
        },
    }
    Ok(false)
}

fn decode_job(p: &mut &[u8]) -> Result<JobRecord, DarshanError> {
    let uid = get_uvarint(p)? as u32;
    let job_id = get_uvarint(p)?;
    let nprocs = get_uvarint(p)? as u32;
    let mut job = JobRecord::new(uid, job_id, nprocs);
    job.start_time = get_f64(p)?;
    job.end_time = get_f64(p)?;
    job.exe = get_string(p)?;
    let n = get_uvarint(p)? as usize;
    for _ in 0..n {
        let k = get_string(p)?;
        let v = get_string(p)?;
        job.metadata.push((k, v));
    }
    Ok(job)
}

fn decode_counter_arrays(
    p: &mut &[u8],
    module: &'static str,
    ccount: usize,
    fcount: usize,
) -> Result<(u64, i32, Vec<i64>, Vec<f64>), DarshanError> {
    let file_id = get_uvarint(p)?;
    let rank = get_ivarint(p)? as i32;
    let nc = get_uvarint(p)? as usize;
    if nc != ccount {
        return Err(DarshanError::CounterCountMismatch {
            module,
            expected: ccount,
            found: nc,
        });
    }
    let mut counters = Vec::with_capacity(nc);
    for _ in 0..nc {
        counters.push(get_ivarint(p)?);
    }
    let nf = get_uvarint(p)? as usize;
    if nf != fcount {
        return Err(DarshanError::CounterCountMismatch {
            module,
            expected: fcount,
            found: nf,
        });
    }
    let mut fcounters = Vec::with_capacity(nf);
    for _ in 0..nf {
        fcounters.push(get_f64(p)?);
    }
    Ok((file_id, rank, counters, fcounters))
}

fn decode_posix(p: &mut &[u8]) -> Result<PosixRecord, DarshanError> {
    let (file_id, rank, counters, fcounters) =
        decode_counter_arrays(p, "POSIX", PosixCounter::COUNT, PosixFCounter::COUNT)?;
    Ok(PosixRecord {
        file_id,
        rank,
        counters,
        fcounters,
    })
}

fn decode_mpiio(p: &mut &[u8]) -> Result<MpiioRecord, DarshanError> {
    let (file_id, rank, counters, fcounters) =
        decode_counter_arrays(p, "MPI-IO", MpiioCounter::COUNT, MpiioFCounter::COUNT)?;
    Ok(MpiioRecord {
        file_id,
        rank,
        counters,
        fcounters,
    })
}

fn decode_stdio(p: &mut &[u8]) -> Result<StdioRecord, DarshanError> {
    let (file_id, rank, counters, fcounters) =
        decode_counter_arrays(p, "STDIO", StdioCounter::COUNT, StdioFCounter::COUNT)?;
    Ok(StdioRecord {
        file_id,
        rank,
        counters,
        fcounters,
    })
}

fn decode_lustre(p: &mut &[u8]) -> Result<LustreRecord, DarshanError> {
    let file_id = get_uvarint(p)?;
    let rank = get_ivarint(p)? as i32;
    let nc = get_uvarint(p)? as usize;
    if nc != LustreCounter::COUNT {
        return Err(DarshanError::CounterCountMismatch {
            module: "LUSTRE",
            expected: LustreCounter::COUNT,
            found: nc,
        });
    }
    let mut counters = Vec::with_capacity(nc);
    for _ in 0..nc {
        counters.push(get_ivarint(p)?);
    }
    let no = get_uvarint(p)? as usize;
    if no > p.len() {
        return Err(DarshanError::UnexpectedEof {
            decoding: "lustre ost ids",
        });
    }
    let mut ost_ids = Vec::with_capacity(no);
    for _ in 0..no {
        ost_ids.push(get_ivarint(p)?);
    }
    Ok(LustreRecord {
        file_id,
        rank,
        counters,
        ost_ids,
    })
}

fn decode_heatmap(p: &mut &[u8]) -> Result<HeatmapRecord, DarshanError> {
    let rank = get_ivarint(p)? as i32;
    let bin_width = get_f64(p)?;
    let nbins = get_uvarint(p)? as usize;
    // A bin costs at least one byte each for reads and writes.
    if nbins > p.len() / 2 + 1 {
        return Err(DarshanError::UnexpectedEof {
            decoding: "heatmap bins",
        });
    }
    let mut read_bytes = Vec::with_capacity(nbins);
    for _ in 0..nbins {
        read_bytes.push(get_uvarint(p)?);
    }
    let mut write_bytes = Vec::with_capacity(nbins);
    for _ in 0..nbins {
        write_bytes.push(get_uvarint(p)?);
    }
    Ok(HeatmapRecord {
        rank,
        bin_width,
        read_bytes,
        write_bytes,
    })
}

fn decode_dxt(p: &mut &[u8]) -> Result<DxtRecord, DarshanError> {
    let file_id = get_uvarint(p)?;
    let rank = get_ivarint(p)? as i32;
    if p.is_empty() {
        return Err(DarshanError::UnexpectedEof {
            decoding: "dxt layer",
        });
    }
    let layer = match p[0] {
        0 => DxtLayer::Posix,
        1 => DxtLayer::MpiIo,
        other => return Err(DarshanError::UnknownModule { id: other }),
    };
    *p = &p[1..];
    let hostname = get_string(p)?;
    let mut record = DxtRecord::new(file_id, rank, layer, &hostname);
    for dest in [&mut record.writes, &mut record.reads] {
        let n = get_uvarint(p)? as usize;
        // A segment costs at least 18 bytes on the wire; reject counts that
        // cannot possibly fit so corrupt lengths fail fast instead of OOMing.
        if n > p.len() / 18 + 1 {
            return Err(DarshanError::UnexpectedEof {
                decoding: "dxt segments",
            });
        }
        dest.reserve(n);
        let mut prev_offset: i64 = 0;
        for _ in 0..n {
            let delta = get_ivarint(p)?;
            // Hostile delta chains can push the running offset past
            // i64::MAX; that is corrupt data, not a crash.
            let offset = prev_offset
                .checked_add(delta)
                .ok_or(DarshanError::Overflow {
                    what: "dxt segment offset",
                })?;
            prev_offset = offset;
            let length = get_uvarint(p)?;
            let start_time = get_f64(p)?;
            let end_time = get_f64(p)?;
            dest.push(DxtSegment {
                offset: offset as u64,
                length,
                start_time,
                end_time,
            });
        }
    }
    Ok(record)
}
