//! Log deserialization with checksum verification.

use super::varint::{get_f64, get_ivarint, get_string, get_uvarint};
use super::{crc32, Log, MAGIC, TAG_END, TAG_JOB, TAG_NAMES, VERSION};
use crate::counters::{
    LustreCounter, ModuleId, MpiioCounter, MpiioFCounter, PosixCounter, PosixFCounter,
    StdioCounter, StdioFCounter,
};
use crate::dxt::{DxtLayer, DxtRecord, DxtSegment};
use crate::heatmap::HeatmapRecord;
use crate::records::{JobRecord, LustreRecord, MpiioRecord, NameRecord, PosixRecord, StdioRecord};
use crate::DarshanError;

/// Decodes binary logs produced by [`super::LogWriter`].
#[derive(Debug)]
pub struct LogReader;

impl LogReader {
    /// Decode a complete log from bytes, verifying every region checksum.
    ///
    /// # Errors
    ///
    /// Returns a [`DarshanError`] describing the first structural problem:
    /// bad magic, unsupported version, CRC mismatch, truncation, or a
    /// malformed record.
    pub fn read(bytes: &[u8]) -> Result<Log, DarshanError> {
        let mut decode_span = ion_obs::span!("decode");
        decode_span.attr("bytes", bytes.len());
        ion_obs::counter("darshan.decode.bytes", bytes.len() as u64);
        let mut buf = bytes;
        if buf.len() < 8 {
            return Err(DarshanError::UnexpectedEof { decoding: "header" });
        }
        let magic = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        if magic != MAGIC {
            return Err(DarshanError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != VERSION {
            return Err(DarshanError::UnsupportedVersion { found: version });
        }
        buf = &buf[8..];

        let mut log = Log::new(JobRecord::new(0, 0, 0));
        let mut saw_job = false;
        loop {
            if buf.is_empty() {
                return Err(DarshanError::UnexpectedEof {
                    decoding: "region tag",
                });
            }
            let tag = buf[0];
            buf = &buf[1..];
            if tag == TAG_END {
                break;
            }
            let len = get_uvarint(&mut buf)? as usize;
            if buf.len() < len + 4 {
                return Err(DarshanError::UnexpectedEof {
                    decoding: "region payload",
                });
            }
            let payload = &buf[..len];
            let stored_crc =
                u32::from_le_bytes([buf[len], buf[len + 1], buf[len + 2], buf[len + 3]]);
            buf = &buf[len + 4..];
            let mut region_span = ion_obs::span!(region_span_name(tag));
            region_span.attr("bytes", len);
            let actual = crc32(payload);
            ion_obs::counter("darshan.decode.crc_checks", 1);
            if actual != stored_crc {
                ion_obs::counter("darshan.decode.crc_failures", 1);
                return Err(DarshanError::ChecksumMismatch {
                    region: region_name(tag),
                    expected: stored_crc,
                    actual,
                });
            }
            let mut p = payload;
            match tag {
                TAG_JOB => {
                    log.job = decode_job(&mut p)?;
                    saw_job = true;
                }
                TAG_NAMES => {
                    let n = get_uvarint(&mut p)? as usize;
                    for _ in 0..n {
                        let id = get_uvarint(&mut p)?;
                        let path = get_string(&mut p)?;
                        log.names.push(NameRecord { id, path });
                    }
                }
                t => match ModuleId::from_code(t) {
                    Some(ModuleId::Posix) => {
                        let n = get_uvarint(&mut p)? as usize;
                        for _ in 0..n {
                            log.posix.push(decode_posix(&mut p)?);
                        }
                    }
                    Some(ModuleId::MpiIo) => {
                        let n = get_uvarint(&mut p)? as usize;
                        for _ in 0..n {
                            log.mpiio.push(decode_mpiio(&mut p)?);
                        }
                    }
                    Some(ModuleId::Stdio) => {
                        let n = get_uvarint(&mut p)? as usize;
                        for _ in 0..n {
                            log.stdio.push(decode_stdio(&mut p)?);
                        }
                    }
                    Some(ModuleId::Lustre) => {
                        let n = get_uvarint(&mut p)? as usize;
                        for _ in 0..n {
                            log.lustre.push(decode_lustre(&mut p)?);
                        }
                    }
                    Some(ModuleId::Dxt) => {
                        let n = get_uvarint(&mut p)? as usize;
                        for _ in 0..n {
                            log.dxt.push(decode_dxt(&mut p)?);
                        }
                    }
                    Some(ModuleId::Heatmap) => {
                        let n = get_uvarint(&mut p)? as usize;
                        for _ in 0..n {
                            log.heatmap.push(decode_heatmap(&mut p)?);
                        }
                    }
                    None => return Err(DarshanError::UnknownModule { id: t }),
                },
            }
        }
        if !saw_job {
            return Err(DarshanError::UnexpectedEof {
                decoding: "job region",
            });
        }
        let records = log.names.len()
            + log.posix.len()
            + log.mpiio.len()
            + log.stdio.len()
            + log.lustre.len()
            + log.dxt.len()
            + log.heatmap.len();
        ion_obs::counter("darshan.decode.records", records as u64);
        decode_span.attr("records", records);
        Ok(log)
    }
}

fn region_name(tag: u8) -> &'static str {
    match tag {
        TAG_JOB => "job",
        TAG_NAMES => "names",
        t => ModuleId::from_code(t).map_or("unknown", ModuleId::name),
    }
}

/// Static span name for one region's decode timing (`decode.posix`, …).
fn region_span_name(tag: u8) -> &'static str {
    match tag {
        TAG_JOB => "decode.job",
        TAG_NAMES => "decode.names",
        t => match ModuleId::from_code(t) {
            Some(ModuleId::Posix) => "decode.posix",
            Some(ModuleId::MpiIo) => "decode.mpiio",
            Some(ModuleId::Stdio) => "decode.stdio",
            Some(ModuleId::Lustre) => "decode.lustre",
            Some(ModuleId::Dxt) => "decode.dxt",
            Some(ModuleId::Heatmap) => "decode.heatmap",
            None => "decode.unknown",
        },
    }
}

fn decode_job(p: &mut &[u8]) -> Result<JobRecord, DarshanError> {
    let uid = get_uvarint(p)? as u32;
    let job_id = get_uvarint(p)?;
    let nprocs = get_uvarint(p)? as u32;
    let mut job = JobRecord::new(uid, job_id, nprocs);
    job.start_time = get_f64(p)?;
    job.end_time = get_f64(p)?;
    job.exe = get_string(p)?;
    let n = get_uvarint(p)? as usize;
    for _ in 0..n {
        let k = get_string(p)?;
        let v = get_string(p)?;
        job.metadata.push((k, v));
    }
    Ok(job)
}

fn decode_counter_arrays(
    p: &mut &[u8],
    module: &'static str,
    ccount: usize,
    fcount: usize,
) -> Result<(u64, i32, Vec<i64>, Vec<f64>), DarshanError> {
    let file_id = get_uvarint(p)?;
    let rank = get_ivarint(p)? as i32;
    let nc = get_uvarint(p)? as usize;
    if nc != ccount {
        return Err(DarshanError::CounterCountMismatch {
            module,
            expected: ccount,
            found: nc,
        });
    }
    let mut counters = Vec::with_capacity(nc);
    for _ in 0..nc {
        counters.push(get_ivarint(p)?);
    }
    let nf = get_uvarint(p)? as usize;
    if nf != fcount {
        return Err(DarshanError::CounterCountMismatch {
            module,
            expected: fcount,
            found: nf,
        });
    }
    let mut fcounters = Vec::with_capacity(nf);
    for _ in 0..nf {
        fcounters.push(get_f64(p)?);
    }
    Ok((file_id, rank, counters, fcounters))
}

fn decode_posix(p: &mut &[u8]) -> Result<PosixRecord, DarshanError> {
    let (file_id, rank, counters, fcounters) =
        decode_counter_arrays(p, "POSIX", PosixCounter::COUNT, PosixFCounter::COUNT)?;
    Ok(PosixRecord {
        file_id,
        rank,
        counters,
        fcounters,
    })
}

fn decode_mpiio(p: &mut &[u8]) -> Result<MpiioRecord, DarshanError> {
    let (file_id, rank, counters, fcounters) =
        decode_counter_arrays(p, "MPI-IO", MpiioCounter::COUNT, MpiioFCounter::COUNT)?;
    Ok(MpiioRecord {
        file_id,
        rank,
        counters,
        fcounters,
    })
}

fn decode_stdio(p: &mut &[u8]) -> Result<StdioRecord, DarshanError> {
    let (file_id, rank, counters, fcounters) =
        decode_counter_arrays(p, "STDIO", StdioCounter::COUNT, StdioFCounter::COUNT)?;
    Ok(StdioRecord {
        file_id,
        rank,
        counters,
        fcounters,
    })
}

fn decode_lustre(p: &mut &[u8]) -> Result<LustreRecord, DarshanError> {
    let file_id = get_uvarint(p)?;
    let rank = get_ivarint(p)? as i32;
    let nc = get_uvarint(p)? as usize;
    if nc != LustreCounter::COUNT {
        return Err(DarshanError::CounterCountMismatch {
            module: "LUSTRE",
            expected: LustreCounter::COUNT,
            found: nc,
        });
    }
    let mut counters = Vec::with_capacity(nc);
    for _ in 0..nc {
        counters.push(get_ivarint(p)?);
    }
    let no = get_uvarint(p)? as usize;
    if no > p.len() {
        return Err(DarshanError::UnexpectedEof {
            decoding: "lustre ost ids",
        });
    }
    let mut ost_ids = Vec::with_capacity(no);
    for _ in 0..no {
        ost_ids.push(get_ivarint(p)?);
    }
    Ok(LustreRecord {
        file_id,
        rank,
        counters,
        ost_ids,
    })
}

fn decode_heatmap(p: &mut &[u8]) -> Result<HeatmapRecord, DarshanError> {
    let rank = get_ivarint(p)? as i32;
    let bin_width = get_f64(p)?;
    let nbins = get_uvarint(p)? as usize;
    // A bin costs at least one byte each for reads and writes.
    if nbins > p.len() / 2 + 1 {
        return Err(DarshanError::UnexpectedEof {
            decoding: "heatmap bins",
        });
    }
    let mut read_bytes = Vec::with_capacity(nbins);
    for _ in 0..nbins {
        read_bytes.push(get_uvarint(p)?);
    }
    let mut write_bytes = Vec::with_capacity(nbins);
    for _ in 0..nbins {
        write_bytes.push(get_uvarint(p)?);
    }
    Ok(HeatmapRecord {
        rank,
        bin_width,
        read_bytes,
        write_bytes,
    })
}

fn decode_dxt(p: &mut &[u8]) -> Result<DxtRecord, DarshanError> {
    let file_id = get_uvarint(p)?;
    let rank = get_ivarint(p)? as i32;
    if p.is_empty() {
        return Err(DarshanError::UnexpectedEof {
            decoding: "dxt layer",
        });
    }
    let layer = match p[0] {
        0 => DxtLayer::Posix,
        1 => DxtLayer::MpiIo,
        other => return Err(DarshanError::UnknownModule { id: other }),
    };
    *p = &p[1..];
    let hostname = get_string(p)?;
    let mut record = DxtRecord::new(file_id, rank, layer, &hostname);
    for dest in [&mut record.writes, &mut record.reads] {
        let n = get_uvarint(p)? as usize;
        // A segment costs at least 18 bytes on the wire; reject counts that
        // cannot possibly fit so corrupt lengths fail fast instead of OOMing.
        if n > p.len() / 18 + 1 {
            return Err(DarshanError::UnexpectedEof {
                decoding: "dxt segments",
            });
        }
        dest.reserve(n);
        let mut prev_offset: i64 = 0;
        for _ in 0..n {
            let delta = get_ivarint(p)?;
            let offset = prev_offset + delta;
            prev_offset = offset;
            let length = get_uvarint(p)?;
            let start_time = get_f64(p)?;
            let end_time = get_f64(p)?;
            dest.push(DxtSegment {
                offset: offset as u64,
                length,
                start_time,
                end_time,
            });
        }
    }
    Ok(record)
}
