//! Streaming (out-of-core) log decode and encode.
//!
//! [`StreamDecoder`] pulls one region frame at a time from any
//! [`io::Read`] source, so a multi-gigabyte trace never has to sit in
//! memory at once: only the frame currently being consumed is buffered.
//! Decoding is *lazy* — [`StreamDecoder::next_region`] performs framing
//! only (tag, declared length, payload bytes, stored CRC); the CRC check
//! and record decode happen when the caller consumes the region via
//! [`RawRegion::decode_into`]. A region the caller skips costs its I/O
//! and nothing else — its CRC is never computed and its records are
//! never materialized, which is what lets selective consumers (the
//! chunked extractor, module-filtered tools) stay cheap.
//!
//! [`StreamWriter`] is the encode-side dual: it frames regions to any
//! [`io::Write`] sink as they are handed in, so a producer can emit a
//! log far larger than memory by writing module records in chunks —
//! the reader's region decoder *extends* per-module vectors, so a log
//! with fifty small DXT regions decodes identically to one with a
//! single huge one.
//!
//! [`super::LogReader::read`] and [`super::LogReader::read_lenient`]
//! are thin drivers over [`StreamDecoder`] that consume every region
//! eagerly; their error taxonomy and observability counters are
//! unchanged.
//!
//! One-byte header reads make unbuffered sources slow: wrap files in a
//! [`std::io::BufReader`] before handing them to [`StreamDecoder`].

use super::varint::put_uvarint;
use super::writer::{
    encode_counter_record, encode_dxt_record, encode_heatmap_record, encode_job,
    encode_lustre_record,
};
use super::{crc32, Log, MAGIC, TAG_END, TAG_JOB, TAG_NAMES, VERSION};
use crate::counters::ModuleId;
use crate::dxt::DxtRecord;
use crate::heatmap::HeatmapRecord;
use crate::records::{JobRecord, LustreRecord, MpiioRecord, NameRecord, PosixRecord, StdioRecord};
use crate::DarshanError;
use std::io::{self, Read, Write};

fn io_error(action: &'static str, err: &io::Error) -> DarshanError {
    DarshanError::Io {
        action,
        message: err.to_string(),
    }
}

/// Incremental region-frame reader over any byte source.
///
/// Construction validates the 8-byte header; each
/// [`StreamDecoder::next_region`] call then frames exactly one region.
/// The decoder is forgiving about *payload* content by design — it
/// never looks inside a frame — so framing errors ([`DarshanError::Truncated`],
/// I/O failures) are the only errors it can return.
#[derive(Debug)]
pub struct StreamDecoder<R: Read> {
    src: R,
    /// Byte offset of the cursor from the start of the log (tracks the
    /// same positions the in-memory reader reported in
    /// [`DarshanError::Truncated`]).
    pos: usize,
    done: bool,
}

impl<R: Read> StreamDecoder<R> {
    /// Open a decoder: reads and validates the 8-byte log header.
    ///
    /// # Errors
    ///
    /// [`DarshanError::UnexpectedEof`] when the source holds fewer than
    /// 8 bytes, [`DarshanError::BadMagic`] / [`DarshanError::UnsupportedVersion`]
    /// for a foreign or future container, [`DarshanError::Io`] when the
    /// source itself fails.
    pub fn new(mut src: R) -> Result<Self, DarshanError> {
        let mut header = [0u8; 8];
        match src.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(DarshanError::UnexpectedEof { decoding: "header" });
            }
            Err(e) => return Err(io_error("read log header", &e)),
        }
        let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        if magic != MAGIC {
            return Err(DarshanError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != VERSION {
            return Err(DarshanError::UnsupportedVersion { found: version });
        }
        Ok(StreamDecoder {
            src,
            pos: 8,
            done: false,
        })
    }

    /// Total bytes consumed from the source so far.
    #[must_use]
    pub fn bytes_read(&self) -> usize {
        self.pos
    }

    /// Frame the next region: `Ok(None)` at the end-of-log tag.
    ///
    /// The returned region's payload is buffered but *unverified* —
    /// call [`RawRegion::decode_into`] (or [`RawRegion::verify`]) to pay
    /// for the CRC check, or drop the region to skip it for free.
    ///
    /// # Errors
    ///
    /// [`DarshanError::Truncated`] when the source ends inside a frame
    /// (carrying the byte offset where the doomed region began), and
    /// [`DarshanError::Io`] when the source fails. Framing errors are
    /// not recoverable: the decoder refuses further reads.
    pub fn next_region(&mut self) -> Result<Option<RawRegion>, DarshanError> {
        if self.done {
            return Ok(None);
        }
        let region_start = self.pos;
        let Some(tag) = self.read_byte()? else {
            // The end tag itself is missing: the frame sequence was cut,
            // not any one region's payload.
            self.done = true;
            return Err(DarshanError::Truncated {
                region: "frame",
                offset: region_start,
            });
        };
        if tag == TAG_END {
            self.done = true;
            return Ok(None);
        }
        let truncated = DarshanError::Truncated {
            region: region_name(tag),
            offset: region_start,
        };
        let Some(len) = self.read_len_varint()? else {
            self.done = true;
            return Err(truncated);
        };
        // `len + 4` must not wrap: a declared length near usize::MAX
        // would otherwise defeat the short-read check below.
        let Some(framed) = len.checked_add(4) else {
            self.done = true;
            return Err(truncated);
        };
        // `take` + `read_to_end` grows the buffer as bytes actually
        // arrive, so a hostile declared length cannot force a giant
        // allocation up front.
        let mut buf = Vec::new();
        let got = (&mut self.src)
            .take(framed as u64)
            .read_to_end(&mut buf)
            .map_err(|e| io_error("read region payload", &e))?;
        self.pos += got;
        if got < framed {
            self.done = true;
            return Err(truncated);
        }
        let stored_crc = u32::from_le_bytes([buf[len], buf[len + 1], buf[len + 2], buf[len + 3]]);
        buf.truncate(len);
        Ok(Some(RawRegion {
            tag,
            offset: region_start,
            payload: buf,
            stored_crc,
        }))
    }

    fn read_byte(&mut self) -> Result<Option<u8>, DarshanError> {
        let mut b = [0u8; 1];
        loop {
            match self.src.read(&mut b) {
                Ok(0) => return Ok(None),
                Ok(_) => {
                    self.pos += 1;
                    return Ok(Some(b[0]));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(io_error("read region frame", &e)),
            }
        }
    }

    /// Read the region-length uvarint byte by byte. `None` = the value
    /// ran past EOF or overflowed 64 bits — both render the frame
    /// unusable and map to `Truncated`, exactly as the in-memory reader
    /// classified them.
    fn read_len_varint(&mut self) -> Result<Option<usize>, DarshanError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let Some(byte) = self.read_byte()? else {
                return Ok(None);
            };
            if shift == 63 && byte > 1 {
                return Ok(None);
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(Some(value as usize));
            }
            shift += 7;
            if shift > 63 {
                return Ok(None);
            }
        }
    }
}

/// One framed-but-unverified region: tag, buffered payload, stored CRC.
///
/// Consuming it ([`RawRegion::decode_into`]) verifies the CRC and
/// decodes the records; dropping it skips both.
#[derive(Debug, Clone)]
pub struct RawRegion {
    /// Region tag (job, names, or a module code).
    pub tag: u8,
    /// Byte offset of the region's tag byte from the start of the log.
    pub offset: usize,
    payload: Vec<u8>,
    stored_crc: u32,
}

impl RawRegion {
    /// Human-readable region name (`job`, `names`, `posix`, …).
    #[must_use]
    pub fn name(&self) -> &'static str {
        region_name(self.tag)
    }

    /// Payload size in bytes.
    #[must_use]
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Verify the payload against the stored CRC (counted under
    /// `darshan.decode.crc_checks` / `crc_failures`, like the eager
    /// reader).
    ///
    /// # Errors
    ///
    /// [`DarshanError::ChecksumMismatch`] naming this region.
    pub fn verify(&self) -> Result<(), DarshanError> {
        let actual = crc32(&self.payload);
        ion_obs::counter("darshan.decode.crc_checks", 1);
        if actual != self.stored_crc {
            ion_obs::counter("darshan.decode.crc_failures", 1);
            return Err(DarshanError::ChecksumMismatch {
                region: region_name(self.tag),
                expected: self.stored_crc,
                actual,
            });
        }
        Ok(())
    }

    /// Consume the region: CRC check, then record decode into `log`
    /// (module regions *extend* the per-module vectors). Returns whether
    /// this was the job region.
    ///
    /// # Errors
    ///
    /// [`DarshanError::ChecksumMismatch`] or any record-level decode
    /// error; `log` keeps no partial records from a failed region.
    pub fn decode_into(&self, log: &mut Log) -> Result<bool, DarshanError> {
        let mut span = ion_obs::span!(region_span_name(self.tag));
        span.attr("bytes", self.payload.len());
        self.verify()?;
        super::reader::decode_region(log, self.tag, &self.payload)
    }
}

pub(super) fn region_name(tag: u8) -> &'static str {
    match tag {
        TAG_JOB => "job",
        TAG_NAMES => "names",
        t => ModuleId::from_code(t).map_or("unknown", ModuleId::name),
    }
}

/// Static span name for one region's decode timing (`decode.posix`, …).
pub(super) fn region_span_name(tag: u8) -> &'static str {
    match tag {
        TAG_JOB => "decode.job",
        TAG_NAMES => "decode.names",
        t => match ModuleId::from_code(t) {
            Some(ModuleId::Posix) => "decode.posix",
            Some(ModuleId::MpiIo) => "decode.mpiio",
            Some(ModuleId::Stdio) => "decode.stdio",
            Some(ModuleId::Lustre) => "decode.lustre",
            Some(ModuleId::Dxt) => "decode.dxt",
            Some(ModuleId::Heatmap) => "decode.heatmap",
            None => "decode.unknown",
        },
    }
}

/// Incremental log encoder: frames regions to a sink as they arrive.
///
/// Unlike [`super::LogWriter`], which buffers the whole log and frames
/// it in one pass, a `StreamWriter` holds only the region currently
/// being encoded. Module writers may be called repeatedly — each call
/// emits one region, and the reader's extend-on-decode semantics
/// reassemble them — so a producer can emit arbitrarily large traces in
/// bounded memory. Region framing is byte-identical to
/// [`super::LogWriter::finish`] for the same record batches.
#[derive(Debug)]
pub struct StreamWriter<W: Write> {
    out: W,
    payload: Vec<u8>,
}

impl<W: Write> StreamWriter<W> {
    /// Start a log: writes the 8-byte header and the job region.
    ///
    /// # Errors
    ///
    /// [`DarshanError::Io`] when the sink fails,
    /// [`DarshanError::StringTooLong`] for an over-long exe string.
    pub fn new(mut out: W, job: &JobRecord) -> Result<Self, DarshanError> {
        let mut header = Vec::with_capacity(8);
        header.extend_from_slice(&MAGIC.to_le_bytes());
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes()); // flags
        out.write_all(&header)
            .map_err(|e| io_error("write log header", &e))?;
        let mut w = StreamWriter {
            out,
            payload: Vec::new(),
        };
        encode_job(&mut w.payload, job)?;
        w.flush_region(TAG_JOB)?;
        Ok(w)
    }

    fn flush_region(&mut self, tag: u8) -> Result<(), DarshanError> {
        let mut frame = Vec::with_capacity(self.payload.len() + 16);
        frame.push(tag);
        put_uvarint(&mut frame, self.payload.len() as u64);
        self.out
            .write_all(&frame)
            .map_err(|e| io_error("write region frame", &e))?;
        self.out
            .write_all(&self.payload)
            .map_err(|e| io_error("write region payload", &e))?;
        self.out
            .write_all(&crc32(&self.payload).to_le_bytes())
            .map_err(|e| io_error("write region crc", &e))?;
        self.payload.clear();
        Ok(())
    }

    /// Emit a name-table region.
    ///
    /// # Errors
    ///
    /// [`DarshanError::Io`] / [`DarshanError::StringTooLong`].
    pub fn write_names(&mut self, names: &[NameRecord]) -> Result<(), DarshanError> {
        put_uvarint(&mut self.payload, names.len() as u64);
        for n in names {
            put_uvarint(&mut self.payload, n.id);
            super::varint::put_string(&mut self.payload, &n.path)?;
        }
        self.flush_region(TAG_NAMES)
    }

    /// Emit one POSIX region holding `records`.
    ///
    /// # Errors
    ///
    /// [`DarshanError::Io`].
    pub fn write_posix(&mut self, records: &[PosixRecord]) -> Result<(), DarshanError> {
        put_uvarint(&mut self.payload, records.len() as u64);
        for r in records {
            encode_counter_record(
                &mut self.payload,
                r.file_id,
                r.rank,
                &r.counters,
                &r.fcounters,
            );
        }
        self.flush_region(ModuleId::Posix.code())
    }

    /// Emit one MPI-IO region holding `records`.
    ///
    /// # Errors
    ///
    /// [`DarshanError::Io`].
    pub fn write_mpiio(&mut self, records: &[MpiioRecord]) -> Result<(), DarshanError> {
        put_uvarint(&mut self.payload, records.len() as u64);
        for r in records {
            encode_counter_record(
                &mut self.payload,
                r.file_id,
                r.rank,
                &r.counters,
                &r.fcounters,
            );
        }
        self.flush_region(ModuleId::MpiIo.code())
    }

    /// Emit one STDIO region holding `records`.
    ///
    /// # Errors
    ///
    /// [`DarshanError::Io`].
    pub fn write_stdio(&mut self, records: &[StdioRecord]) -> Result<(), DarshanError> {
        put_uvarint(&mut self.payload, records.len() as u64);
        for r in records {
            encode_counter_record(
                &mut self.payload,
                r.file_id,
                r.rank,
                &r.counters,
                &r.fcounters,
            );
        }
        self.flush_region(ModuleId::Stdio.code())
    }

    /// Emit one Lustre region holding `records`.
    ///
    /// # Errors
    ///
    /// [`DarshanError::Io`].
    pub fn write_lustre(&mut self, records: &[LustreRecord]) -> Result<(), DarshanError> {
        put_uvarint(&mut self.payload, records.len() as u64);
        for r in records {
            encode_lustre_record(&mut self.payload, r);
        }
        self.flush_region(ModuleId::Lustre.code())
    }

    /// Emit one DXT region holding `records`.
    ///
    /// # Errors
    ///
    /// [`DarshanError::Io`] / [`DarshanError::StringTooLong`].
    pub fn write_dxt(&mut self, records: &[DxtRecord]) -> Result<(), DarshanError> {
        put_uvarint(&mut self.payload, records.len() as u64);
        for r in records {
            encode_dxt_record(&mut self.payload, r)?;
        }
        self.flush_region(ModuleId::Dxt.code())
    }

    /// Emit one heatmap region holding `records`.
    ///
    /// # Errors
    ///
    /// [`DarshanError::Io`].
    pub fn write_heatmap(&mut self, records: &[HeatmapRecord]) -> Result<(), DarshanError> {
        put_uvarint(&mut self.payload, records.len() as u64);
        for r in records {
            encode_heatmap_record(&mut self.payload, r);
        }
        self.flush_region(ModuleId::Heatmap.code())
    }

    /// Terminate the log (end tag) and return the sink.
    ///
    /// # Errors
    ///
    /// [`DarshanError::Io`].
    pub fn finish(mut self) -> Result<W, DarshanError> {
        self.out
            .write_all(&[TAG_END])
            .map_err(|e| io_error("write end tag", &e))?;
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{LogReader, LogWriter};
    use super::*;
    use crate::dxt::{DxtLayer, DxtSegment, OpKind};

    fn sample_log() -> Log {
        let mut job = JobRecord::new(7, 42, 2).with_metadata("k", "v");
        job.start_time = 1.0;
        job.end_time = 5.0;
        let mut log = Log::new(job);
        log.names.push(NameRecord {
            id: 9,
            path: "/scratch/a".into(),
        });
        let mut d = DxtRecord::new(9, 0, DxtLayer::Posix, "nid1");
        for i in 0..4u64 {
            d.push(
                OpKind::Write,
                DxtSegment {
                    offset: i * 512,
                    length: 512,
                    start_time: 0.1 * i as f64,
                    end_time: 0.1 * i as f64 + 0.05,
                },
            );
        }
        log.dxt.push(d);
        log.lustre
            .push(LustreRecord::new(9, 0, 1 << 20, vec![1, 2]));
        log
    }

    #[test]
    fn stream_writer_matches_batch_writer_bytes() {
        let log = sample_log();
        let batch = LogWriter::from_log(log.clone()).finish().unwrap();

        let mut w = StreamWriter::new(Vec::new(), &log.job).unwrap();
        w.write_names(&log.names).unwrap();
        w.write_lustre(&log.lustre).unwrap();
        w.write_dxt(&log.dxt).unwrap();
        let streamed = w.finish().unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn chunked_module_regions_decode_to_one_log() {
        let log = sample_log();
        let mut w = StreamWriter::new(Vec::new(), &log.job).unwrap();
        w.write_names(&log.names).unwrap();
        w.write_lustre(&log.lustre).unwrap();
        // One region per DXT record: the reader must extend, not replace.
        let mut big = log.clone();
        let mut d2 = DxtRecord::new(9, 1, DxtLayer::MpiIo, "nid2");
        d2.push(
            OpKind::Read,
            DxtSegment {
                offset: 0,
                length: 64,
                start_time: 0.7,
                end_time: 0.8,
            },
        );
        big.dxt.push(d2);
        for r in &big.dxt {
            w.write_dxt(std::slice::from_ref(r)).unwrap();
        }
        let bytes = w.finish().unwrap();
        let decoded = LogReader::read(&bytes).unwrap();
        assert_eq!(decoded, big);
    }

    #[test]
    fn skipped_regions_never_pay_crc_or_decode() {
        let log = sample_log();
        let mut bytes = LogWriter::from_log(log).finish().unwrap();
        // Corrupt a byte near the end (inside the last region's payload):
        // a consumer that skips that region must never notice.
        let n = bytes.len();
        bytes[n - 8] ^= 0xff;
        let mut dec = StreamDecoder::new(&bytes[..]).unwrap();
        let mut seen = Vec::new();
        while let Some(region) = dec.next_region().unwrap() {
            seen.push(region.name());
            if region.tag == TAG_JOB {
                let mut log = Log::new(JobRecord::new(0, 0, 0));
                assert!(region.decode_into(&mut log).unwrap());
            }
            // All other regions dropped unverified.
        }
        assert!(seen.contains(&"job"));
        assert_eq!(dec.bytes_read(), bytes.len());
    }

    #[test]
    fn framing_truncation_reports_region_start() {
        let log = sample_log();
        let bytes = LogWriter::from_log(log).finish().unwrap();
        let cut = &bytes[..bytes.len() - 6];
        let mut dec = StreamDecoder::new(cut).unwrap();
        let err = loop {
            match dec.next_region() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("truncated log reached end tag"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, DarshanError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn header_errors_match_eager_reader() {
        assert!(matches!(
            StreamDecoder::new(&b"DS"[..]),
            Err(DarshanError::UnexpectedEof { decoding: "header" })
        ));
        assert!(matches!(
            StreamDecoder::new(&[0u8; 16][..]),
            Err(DarshanError::BadMagic { .. })
        ));
    }
}
