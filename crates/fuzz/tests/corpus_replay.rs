//! The pinned-corpus regression gate.
//!
//! `crates/fuzz/corpus/*.seed` pins one artifact per corruption strategy,
//! each targeting a panic class the pipeline historically had (slice past
//! EOF, debug add-overflow in counter accumulation, the non-finite
//! heatmap hang, …). Replaying them must produce zero crashes: every
//! entry lands as a typed rejection or a contained analysis.
//!
//! To refresh the corpus after a format change, run the ignored
//! regenerator: `cargo test -p ion-fuzz --test corpus_replay -- --ignored`.

use ion_fuzz::campaign::CrashArtifact;
use ion_fuzz::corpus;
use ion_fuzz::{Corruption, FuzzRng, Stage};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// `(strategy, generator seed, stage of the historical crash, what used
/// to go wrong)`. One entry per catalog strategy.
fn pins() -> Vec<(Corruption, u64, Stage, &'static str)> {
    use Corruption as C;
    use Stage as S;
    vec![
        (
            C::TruncateAtBoundary,
            101,
            S::Decode,
            "pre-hardening: region header sliced past EOF; now Truncated{region,offset}",
        ),
        (
            C::TruncateRandom,
            102,
            S::Decode,
            "pre-hardening: mid-payload cut indexed out of bounds; now Truncated",
        ),
        (
            C::BitFlip,
            103,
            S::Decode,
            "pre-hardening: flipped varint length walked past EOF; now typed decode error",
        ),
        (
            C::CrcDamage,
            104,
            S::LenientDecode,
            "crc mismatch must be a typed error strict-side and a skipped region lenient-side",
        ),
        (
            C::HugeDeclaredLen,
            105,
            S::Decode,
            "pre-hardening: payload_len + 4 overflowed usize; now checked_add then Truncated",
        ),
        (
            C::ShrunkDeclaredLen,
            106,
            S::Decode,
            "overlapping regions: next frame parsed from inside this one must stay typed",
        ),
        (
            C::UnknownTag,
            107,
            S::Decode,
            "region tag no module owns must be a typed error, not an unreachable! panic",
        ),
        (
            C::SwapRegions,
            108,
            S::Decode,
            "module region ahead of the job region must not assume job state exists",
        ),
        (
            C::DuplicateRegion,
            109,
            S::Decode,
            "a region emitted twice must append or reject, never corrupt decoder state",
        ),
        (
            C::ZeroRecordCount,
            110,
            S::Decode,
            "zero declared records with trailing bytes behind a valid crc",
        ),
        (
            C::HugeRecordCount,
            111,
            S::Decode,
            "pre-hardening: absurd declared count looped past the buffer; now count-vs-bytes check",
        ),
        (
            C::NonUtf8Name,
            112,
            S::Decode,
            "pre-hardening: name-table utf-8 conversion unwrapped; now typed error",
        ),
        (
            C::ExtremeCounters,
            113,
            S::Analyze,
            "pre-hardening: i64::MAX counters tripped debug add-overflow in accumulation",
        ),
        (
            C::OverflowingSums,
            114,
            S::Analyze,
            "pre-hardening: summing i64::MAX across records overflowed; now Overflow{what}",
        ),
        (
            C::OutOfOrderTimestamps,
            115,
            S::Analyze,
            "negative job duration and reversed DXT stamps must not break rate math",
        ),
        (
            C::EndBeforeStartSegments,
            116,
            S::Analyze,
            "segments with end < start yield negative durations; division paths must survive",
        ),
        (
            C::HostileFloats,
            117,
            S::Analyze,
            "pre-hardening: non-finite heatmap time hung ensure_covers; now finite-guarded",
        ),
        (
            C::CrcDamage,
            118,
            S::Stream,
            "crc damage on a frame the lazy walk skips must not panic a later decode_into",
        ),
        (
            C::SwapRegions,
            119,
            S::Stream,
            "out-of-order regions stream-side: missing-job must be a typed error, never a panic",
        ),
    ]
}

/// Deterministically rebuild the artifact a pin describes.
fn build_pin(c: Corruption, seed: u64, stage: Stage, note: &str) -> CrashArtifact {
    let mut rng = FuzzRng::new(seed);
    let bytes = loop {
        let valid = ion_fuzz::gen::generate_bytes(&mut rng);
        if let Some(bytes) = c.apply(&valid, &mut rng) {
            break bytes;
        }
    };
    CrashArtifact {
        seed,
        iter: 0,
        corruption: Some(c),
        stage,
        message: note.to_string(),
        artifact: bytes,
        minimized: None,
    }
}

#[test]
fn pinned_corpus_replays_clean() {
    let dir = corpus_dir();
    let (count, failures) = corpus::replay_dir(&dir).expect("corpus must load");
    assert!(count >= 10, "corpus too small: {count} seeds");
    assert!(
        failures.is_empty(),
        "regressions:\n{}",
        failures
            .iter()
            .map(|f| format!(
                "  {}: {} at {} (minimized: {})",
                f.name, f.message, f.stage, f.minimized_hex
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn pinned_corpus_matches_its_generators() {
    // Every committed seed must be reproducible from its recorded
    // (corruption, seed) pair — the corpus carries no bytes that the
    // deterministic generator cannot re-derive.
    let entries = corpus::load_dir(&corpus_dir()).expect("corpus must load");
    for (c, seed, stage, note) in pins() {
        let expected = build_pin(c, seed, stage, note);
        let name = corpus::file_name(&expected);
        let stem = name.trim_end_matches(".seed");
        let entry = entries
            .iter()
            .find(|e| e.name == stem)
            .unwrap_or_else(|| panic!("missing corpus entry {name}"));
        assert_eq!(
            entry.bytes, expected.artifact,
            "{name} drifted from its generator"
        );
        assert_eq!(entry.corruption.as_deref(), Some(c.name()));
        assert_eq!(entry.stage.as_deref(), Some(stage.name()));
    }
}

#[test]
#[ignore = "writes crates/fuzz/corpus; run to regenerate after a format change"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    for (c, seed, stage, note) in pins() {
        let artifact = build_pin(c, seed, stage, note);
        let path = corpus::save(&dir, &artifact).expect("write seed");
        println!("pinned {}", path.display());
    }
}
