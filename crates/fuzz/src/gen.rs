//! Seed-driven generator of *valid* Darshan logs.
//!
//! Validity is defined operationally: everything this module emits must
//! round-trip bit-exactly through [`LogWriter`] → [`LogReader`]. The
//! generator randomizes the dimensions that matter structurally — module
//! mix, record counts, DXT segment shapes, heatmap bin vectors, name
//! tables, metadata — while keeping values inside the encodable envelope
//! (finite floats, offsets within `i64`), because the job of *breaking*
//! the envelope belongs to the corruption catalog.

use crate::rng::FuzzRng;
use darshan::dxt::{DxtLayer, DxtRecord, DxtSegment, OpKind};
use darshan::heatmap::HeatmapRecord;
use darshan::log::{Log, LogReader, LogWriter};
use darshan::records::{JobRecord, LustreRecord, MpiioRecord, PosixRecord, StdioRecord};

/// Counter magnitudes a valid log plausibly carries. Extremes (`i64::MAX`
/// etc.) are still *encodable* — they appear here with low probability so
/// the valid corpus also covers the saturation paths.
fn plausible_counter(rng: &mut FuzzRng) -> i64 {
    match rng.below(20) {
        0 => 0,
        1 => i64::from(u8::from(rng.chance(50))), // 0 or 1
        2 => i64::MAX,
        3 => -1,
        _ => rng.below(1 << 40) as i64,
    }
}

fn plausible_time(rng: &mut FuzzRng) -> f64 {
    rng.unit_f64() * 1e4
}

fn random_path(rng: &mut FuzzRng) -> String {
    let dirs = ["/scratch", "/project", "/tmp", "/gpfs/alpine"];
    let exts = ["dat", "nc4", "h5", "bp", "out"];
    format!(
        "{}/f{}.{}",
        rng.choose(&dirs),
        rng.below(1000),
        rng.choose(&exts)
    )
}

/// Generate a random valid in-memory log.
#[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
pub fn generate_log(rng: &mut FuzzRng) -> Log {
    let nprocs = 1 + rng.below(64) as u32;
    let mut job = JobRecord::new(rng.below(60000) as u32, rng.below(1 << 31), nprocs);
    job.start_time = plausible_time(rng);
    job.end_time = job.start_time + plausible_time(rng);
    job.exe = format!("app-{}", rng.below(100));
    for i in 0..rng.below(4) {
        job = job.with_metadata(&format!("k{i}"), &format!("v{}", rng.below(100)));
    }
    let mut w = LogWriter::new(job);

    // A small pool of files shared across modules, most registered in the
    // name table (but not all — unnamed ids are legal and must not break
    // extraction).
    let nfiles = 1 + rng.index(4);
    let file_ids: Vec<u64> = (0..nfiles)
        .map(|_| {
            let path = random_path(rng);
            let id = darshan::record_id(&path);
            if rng.chance(85) {
                w.register_name(id, &path);
            }
            id
        })
        .collect();

    let rank_of = |rng: &mut FuzzRng, nprocs: u32| -> i32 {
        if rng.chance(10) {
            -1 // shared record
        } else {
            rng.below(u64::from(nprocs)) as i32
        }
    };

    // Random module mix: each module present with independent probability.
    if rng.chance(70) {
        for _ in 0..rng.below(6) {
            let mut r = PosixRecord::new(*rng.choose(&file_ids), rank_of(rng, nprocs));
            for c in &mut r.counters {
                *c = plausible_counter(rng);
            }
            for f in &mut r.fcounters {
                *f = plausible_time(rng);
            }
            w.add_posix_record(r);
        }
    }
    if rng.chance(40) {
        for _ in 0..rng.below(4) {
            let mut r = MpiioRecord::new(*rng.choose(&file_ids), rank_of(rng, nprocs));
            for c in &mut r.counters {
                *c = plausible_counter(rng);
            }
            w.add_mpiio_record(r);
        }
    }
    if rng.chance(30) {
        for _ in 0..rng.below(3) {
            let mut r = StdioRecord::new(*rng.choose(&file_ids), rank_of(rng, nprocs));
            for c in &mut r.counters {
                *c = plausible_counter(rng);
            }
            w.add_stdio_record(r);
        }
    }
    if rng.chance(35) {
        for _ in 0..rng.below(3) {
            let width = 1 + rng.index(8);
            let osts: Vec<i64> = (0..width).map(|_| rng.below(256) as i64).collect();
            w.add_lustre_record(LustreRecord::new(
                *rng.choose(&file_ids),
                rank_of(rng, nprocs),
                1 << (16 + rng.below(8)),
                osts,
            ));
        }
    }
    if rng.chance(50) {
        for _ in 0..rng.below(4) {
            let layer = if rng.chance(50) {
                DxtLayer::Posix
            } else {
                DxtLayer::MpiIo
            };
            let mut dxt = DxtRecord::new(
                *rng.choose(&file_ids),
                rank_of(rng, nprocs),
                layer,
                &format!("node{:02}", rng.below(32)),
            );
            // Segment shapes: sequential, strided, random, or zero-length.
            let nsegs = rng.below(24);
            let mut offset = rng.below(1 << 30);
            for _ in 0..nsegs {
                let length = match rng.below(10) {
                    0 => 0,
                    1 => rng.below(1 << 30),
                    _ => rng.below(1 << 20),
                };
                let start = plausible_time(rng);
                let kind = if rng.chance(60) {
                    OpKind::Write
                } else {
                    OpKind::Read
                };
                dxt.push(
                    kind,
                    DxtSegment {
                        offset,
                        length,
                        start_time: start,
                        end_time: start + rng.unit_f64(),
                    },
                );
                offset = match rng.below(3) {
                    0 => offset.saturating_add(length), // sequential
                    1 => offset.saturating_add(length + rng.below(1 << 16)), // strided
                    _ => rng.below(1 << 40),            // random
                };
            }
            w.add_dxt_record(dxt);
        }
    }
    if rng.chance(40) {
        for _ in 0..rng.below(3) {
            let nbins = rng.index(129);
            let bin = |rng: &mut FuzzRng| match rng.below(12) {
                0 => 0,
                1 => u64::MAX,
                _ => rng.below(1 << 34),
            };
            w.add_heatmap_record(HeatmapRecord {
                rank: rank_of(rng, nprocs),
                bin_width: 0.01 * f64::from(1 << rng.below(10) as u32),
                read_bytes: (0..nbins).map(|_| bin(rng)).collect(),
                write_bytes: (0..nbins).map(|_| bin(rng)).collect(),
            });
        }
    }

    w.into_log()
}

/// Generate a random valid log, serialized, with the round-trip contract
/// enforced: the bytes must decode back to exactly the generated log.
///
/// # Panics
///
/// Panics when the round-trip fails — that is a codec bug the fuzz
/// campaign must surface, not swallow.
#[must_use]
pub fn generate_bytes(rng: &mut FuzzRng) -> Vec<u8> {
    let log = generate_log(rng);
    let bytes = LogWriter::from_log(log.clone())
        .finish()
        .expect("generated log must serialize");
    let decoded = LogReader::read(&bytes).expect("generated log must decode");
    assert_eq!(decoded, log, "generator round-trip mismatch");
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn many_seeds_round_trip() {
        for seed in 0..200 {
            let mut rng = FuzzRng::new(seed);
            let bytes = generate_bytes(&mut rng); // asserts internally
            assert!(bytes.len() >= 9);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_bytes(&mut FuzzRng::new(123));
        let b = generate_bytes(&mut FuzzRng::new(123));
        assert_eq!(a, b);
    }

    #[test]
    fn module_mix_varies_across_seeds() {
        let mut mixes = std::collections::HashSet::new();
        for seed in 0..50 {
            let log = generate_log(&mut FuzzRng::new(seed));
            mixes.insert(log.modules_present());
        }
        assert!(mixes.len() > 5, "only {} distinct mixes", mixes.len());
    }
}
