//! Deterministic PRNG for fuzz generation.
//!
//! xorshift64* — tiny, fast, and fully reproducible: a campaign is a pure
//! function of its seed, so any crash can be replayed from `(seed, iter)`
//! alone. Not cryptographic, deliberately: fuzzing wants speed and
//! replayability, not unpredictability.

/// xorshift64* generator.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Seeded generator. A zero seed (xorshift's fixed point) is remapped
    /// to a nonzero constant so every seed yields a live stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FuzzRng {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `[0, bound)`. Returns 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform usize draw in `[0, bound)`.
    #[allow(clippy::cast_possible_truncation)]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Uniform draw from a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics when `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = FuzzRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = FuzzRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = FuzzRng::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_live() {
        let mut r = FuzzRng::new(0);
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = FuzzRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(0), 0);
    }
}
