//! Campaign orchestration: iterate generate → corrupt → drive, in
//! parallel under `ion-exec`, collecting crash artifacts.
//!
//! Determinism contract: iteration `i` of a campaign with seed `S` is a
//! pure function of `(S, i)` — its private RNG stream is derived from
//! both — so any crash replays exactly from the `(seed, iter)` recorded
//! in its artifact, regardless of worker count or scheduling.

use crate::corrupt::Corruption;
use crate::driver::{drive, Stage, Verdict};
use crate::gen::generate_bytes;
use crate::minimize::minimize;
use crate::rng::FuzzRng;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of artifacts to generate and drive.
    pub iters: u64,
    /// Master seed; every iteration derives its own stream from it.
    pub seed: u64,
    /// Delta-minimize each crash artifact.
    pub minimize: bool,
    /// Worker width for the ion-exec batch (`None` = default).
    pub jobs: Option<usize>,
    /// Cooperative cancellation (Ctrl-C): iterations not yet started when
    /// the token trips are skipped and counted as
    /// [`CampaignReport::cancelled`].
    pub cancel: Option<ion_exec::CancelToken>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            iters: 1000,
            seed: 0,
            minimize: false,
            jobs: None,
            cancel: None,
        }
    }
}

/// One input that violated the robustness contract.
#[derive(Debug, Clone)]
pub struct CrashArtifact {
    /// Campaign master seed.
    pub seed: u64,
    /// Iteration that produced the artifact.
    pub iter: u64,
    /// The corruption applied, `None` for a pure-valid iteration (a
    /// crash there is a generator/codec round-trip bug).
    pub corruption: Option<Corruption>,
    /// Stage the panic escaped from.
    pub stage: Stage,
    /// Panic message.
    pub message: String,
    /// The crashing bytes.
    pub artifact: Vec<u8>,
    /// Delta-minimized bytes, when minimization ran.
    pub minimized: Option<Vec<u8>>,
}

/// Aggregate campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Iterations executed.
    pub iters: u64,
    /// Pure-valid artifacts (no corruption applied).
    pub valid: u64,
    /// Artifacts both decoders rejected with typed errors.
    pub rejected: u64,
    /// Artifacts analyzed end to end.
    pub analyzed: u64,
    /// Analyzed artifacts that went through the lenient (valid-prefix)
    /// recovery path.
    pub recovered: u64,
    /// Iterations skipped by cooperative cancellation (Ctrl-C).
    pub cancelled: u64,
    /// Contract violations.
    pub crashes: Vec<CrashArtifact>,
}

impl CampaignReport {
    /// One-line human summary.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut line = format!(
            "fuzz: {} iters ({} valid), {} rejected, {} analyzed ({} recovered), {} crashes",
            self.iters,
            self.valid,
            self.rejected,
            self.analyzed,
            self.recovered,
            self.crashes.len()
        );
        if self.cancelled > 0 {
            line.push_str(&format!(
                " — interrupted, {} iteration(s) skipped",
                self.cancelled
            ));
        }
        line
    }
}

struct IterResult {
    corruption: Option<Corruption>,
    verdict: Verdict,
    bytes: Vec<u8>,
}

/// Generate one iteration's artifact: a valid log roughly a quarter of
/// the time (keeping the happy path under continuous test), a corrupted
/// one otherwise. Pure function of `(seed, iter)`.
fn make_artifact(seed: u64, iter: u64) -> (Option<Corruption>, Vec<u8>) {
    let mut rng = FuzzRng::new(seed ^ iter.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let valid = generate_bytes(&mut rng);
    if rng.chance(25) {
        return (None, valid);
    }
    // Walk the catalog from a random start until a strategy applies;
    // TruncateRandom always applies, so the walk terminates.
    let start = rng.index(Corruption::ALL.len());
    for step in 0..Corruption::ALL.len() {
        let c = Corruption::ALL[(start + step) % Corruption::ALL.len()];
        if let Some(bytes) = c.apply(&valid, &mut rng) {
            return (Some(c), bytes);
        }
    }
    (Some(Corruption::TruncateRandom), valid)
}

/// Restores the previous panic hook on drop.
struct QuietPanics;

impl QuietPanics {
    /// Panics that stages trap (and the analyzer's own contained
    /// per-issue traps) would otherwise spam stderr through the default
    /// hook; silence it for the campaign's duration.
    fn install() -> QuietPanics {
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let _ = std::panic::take_hook();
    }
}

/// Run a fuzz campaign. Never panics; crashes found in the pipeline are
/// returned (and counted on `fuzz.*` telemetry), not propagated.
#[must_use]
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let _quiet = QuietPanics::install();
    let iters: Vec<u64> = (0..config.iters).collect();
    let mut batch = ion_exec::Batch::new();
    if let Some(jobs) = config.jobs {
        batch = batch.with_width(jobs.max(1));
    }
    if let Some(cancel) = &config.cancel {
        batch = batch.with_cancel(cancel.clone());
    }
    let outcomes = batch.map_ordered(&iters, |&iter, _ctx| {
        let (corruption, bytes) = make_artifact(config.seed, iter);
        let verdict = drive(&bytes);
        ion_obs::counter("fuzz.iters", 1);
        match &verdict {
            Verdict::Rejected { .. } => ion_obs::counter("fuzz.rejected", 1),
            Verdict::Analyzed { recovered, .. } => {
                ion_obs::counter("fuzz.analyzed", 1);
                if *recovered {
                    ion_obs::counter("fuzz.recovered", 1);
                }
            }
            Verdict::Crashed { .. } => ion_obs::counter("fuzz.crashes", 1),
        }
        IterResult {
            corruption,
            verdict,
            bytes,
        }
    });

    let mut report = CampaignReport {
        iters: config.iters,
        ..CampaignReport::default()
    };
    for (iter, outcome) in outcomes.into_iter().enumerate() {
        let iter = iter as u64;
        match outcome {
            ion_exec::TaskOutcome::Ok(r) => {
                if r.corruption.is_none() {
                    report.valid += 1;
                }
                match r.verdict {
                    Verdict::Rejected { .. } => report.rejected += 1,
                    Verdict::Analyzed { recovered, .. } => {
                        report.analyzed += 1;
                        if recovered {
                            report.recovered += 1;
                        }
                    }
                    Verdict::Crashed { stage, message } => {
                        let minimized = config.minimize.then(|| minimize(&r.bytes, stage));
                        report.crashes.push(CrashArtifact {
                            seed: config.seed,
                            iter,
                            corruption: r.corruption,
                            stage,
                            message,
                            artifact: r.bytes,
                            minimized,
                        });
                    }
                }
            }
            // A panic in the harness itself (generator round-trip
            // failure) — still a finding, pinned without bytes.
            ion_exec::TaskOutcome::Panicked(message) => {
                ion_obs::counter("fuzz.crashes", 1);
                report.crashes.push(CrashArtifact {
                    seed: config.seed,
                    iter,
                    corruption: None,
                    stage: Stage::Decode,
                    message: format!("harness panic: {message}"),
                    artifact: Vec::new(),
                    minimized: None,
                });
            }
            ion_exec::TaskOutcome::Cancelled | ion_exec::TaskOutcome::Deadlined => {
                report.cancelled += 1;
            }
        }
    }
    report
}

/// Re-drive a single recorded artifact, e.g. a corpus entry. Returns the
/// verdict so callers can assert "no crash" (the regression gate) or
/// inspect where the input lands after fixes.
#[must_use]
pub fn replay(bytes: &[u8]) -> Verdict {
    let _quiet = QuietPanics::install();
    drive(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_has_no_crashes() {
        let report = run_campaign(&CampaignConfig {
            iters: 60,
            seed: 42,
            minimize: true,
            jobs: Some(4),
            cancel: None,
        });
        assert_eq!(report.iters, 60);
        assert!(
            report.crashes.is_empty(),
            "contract violations: {:?}",
            report
                .crashes
                .iter()
                .map(|c| format!(
                    "iter {} {:?} {}: {}",
                    c.iter,
                    c.corruption.map(Corruption::name),
                    c.stage.name(),
                    c.message
                ))
                .collect::<Vec<_>>()
        );
        // The mix must exercise both sides of the contract.
        assert!(report.analyzed > 0, "nothing analyzed");
        assert!(report.rejected > 0, "nothing rejected");
        assert!(report.valid > 0, "no pure-valid iterations");
    }

    #[test]
    fn campaigns_are_deterministic() {
        let cfg = CampaignConfig {
            iters: 20,
            seed: 7,
            minimize: false,
            jobs: Some(3),
            cancel: None,
        };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.analyzed, b.analyzed);
        assert_eq!(a.valid, b.valid);
    }
}
