//! # ion-fuzz — deterministic, structure-aware fuzzing harness
//!
//! Drives hostile inputs through the full `decode → extract → IQL →
//! analyze` pipeline and enforces the **total-robustness contract**:
//!
//! 1. No panic reaches the top of any pipeline entry point — every
//!    failure is a typed [`darshan::DarshanError`] or a failed-diagnosis
//!    entry in the report.
//! 2. Valid-prefix data still yields partial results where the decoder
//!    supports it (`LogReader::read_lenient`).
//!
//! The harness is deterministic end to end: a campaign is a pure function
//! of `(seed, iters)`, every artifact is reproducible from the seed of
//! the iteration that produced it, and crashes are pinned as `.seed`
//! files in `crates/fuzz/corpus/` that replay as a fast regression gate.

pub mod campaign;
pub mod corpus;
pub mod corrupt;
pub mod driver;
pub mod gen;
pub mod minimize;
pub mod rng;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, CrashArtifact};
pub use corrupt::Corruption;
pub use driver::{drive, Stage, Verdict};
pub use rng::FuzzRng;
