//! Delta-minimizer for crash artifacts.
//!
//! Greedy and deliberately simple: tail truncation (binary-search style)
//! followed by chunk removal at halving granularities, accepting any
//! candidate that still crashes at the *same stage*. Bounded by a fixed
//! budget of pipeline executions so minimization never dominates a
//! campaign.

use crate::driver::{drive, Stage, Verdict};

/// Maximum number of pipeline executions one minimization may spend.
const BUDGET: usize = 600;

/// Shrink `bytes` while `pred` holds. The generic core of [`minimize`],
/// exposed for testing with synthetic predicates.
pub fn minimize_with(bytes: &[u8], mut pred: impl FnMut(&[u8]) -> bool) -> Vec<u8> {
    let mut budget = BUDGET;
    let mut current = bytes.to_vec();
    let mut check = |candidate: &[u8], budget: &mut usize| -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        pred(candidate)
    };

    // Phase 1: tail truncation, coarse to fine.
    let mut step = current.len() / 2;
    while step > 0 {
        while current.len() > step {
            let keep = current.len() - step;
            if check(&current[..keep], &mut budget) {
                current.truncate(keep);
            } else {
                break;
            }
        }
        step /= 2;
    }

    // Phase 2: chunk removal, coarse to fine.
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut start = 0;
        while start < current.len() && budget > 0 {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && check(&candidate, &mut budget) {
                // The removed span's successor now sits at `start`;
                // retry the same position.
                current = candidate;
            } else {
                start += chunk;
            }
        }
        if chunk == 1 || budget == 0 {
            break;
        }
        chunk /= 2;
    }
    current
}

/// Minimize a crashing artifact, preserving a crash at the same stage.
#[must_use]
pub fn minimize(bytes: &[u8], stage: Stage) -> Vec<u8> {
    minimize_with(
        bytes,
        |candidate| matches!(drive(candidate), Verdict::Crashed { stage: s, .. } if s == stage),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_load_bearing_byte() {
        let mut input = vec![0u8; 300];
        input[137] = 0x42;
        let out = minimize_with(&input, |b| b.contains(&0x42));
        assert_eq!(out, vec![0x42]);
    }

    #[test]
    fn preserves_a_two_byte_interaction() {
        let mut input = vec![0u8; 200];
        input[10] = 0xaa;
        input[150] = 0xbb;
        let out = minimize_with(&input, |b| b.contains(&0xaa) && b.contains(&0xbb));
        assert!(out.len() <= 4, "kept {} bytes", out.len());
        assert!(out.contains(&0xaa) && out.contains(&0xbb));
    }

    #[test]
    fn non_matching_input_is_returned_unchanged() {
        let input = vec![1u8, 2, 3, 4];
        let out = minimize_with(&input, |_| false);
        assert_eq!(out, input);
    }
}
