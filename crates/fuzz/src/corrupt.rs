//! Typed corruption catalog.
//!
//! Three families, mirroring the ways real logs go bad:
//!
//! * **Byte-level** — damage to the serialized stream itself (truncation,
//!   bit flips, CRC damage). Applied directly to the bytes.
//! * **Structural** — well-formed framing around malformed structure
//!   (swapped/duplicated regions, lying length and count fields,
//!   non-UTF-8 name bytes). Applied by frame surgery: payloads are
//!   mutated and re-framed with a *valid* CRC so the damage reaches the
//!   decoders behind the checksum, not the checksum itself.
//! * **Semantic** — perfectly decodable logs whose *content* is hostile
//!   (extreme counters, overflowing sums, inverted timestamps, non-finite
//!   floats). Applied by decode → mutate → re-encode, so they exercise
//!   extraction and analysis rather than the codec.

use crate::rng::FuzzRng;
use darshan::dxt::{DxtLayer, DxtRecord, DxtSegment, OpKind};
use darshan::log::{crc32, Log, LogReader, LogWriter};

/// Fixed header size: magic u32 + version u16 + flags u16.
pub const HEADER_LEN: usize = 8;

const TAG_NAMES: u8 = 0x11;
const TAG_END: u8 = 0xff;

/// One corruption strategy. The catalog is closed and enumerable so a
/// campaign can cover every family deterministically and corpus entries
/// can name the strategy that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Cut the stream at a region boundary (frame start, payload start,
    /// CRC start, or frame end).
    TruncateAtBoundary,
    /// Cut the stream at an arbitrary offset.
    TruncateRandom,
    /// Flip one bit anywhere, header included.
    BitFlip,
    /// Damage a region's CRC trailer while leaving its payload intact.
    CrcDamage,
    /// Declare a region length that extends far past end-of-file.
    HugeDeclaredLen,
    /// Declare a region length *shorter* than the real payload, so the
    /// next frame is parsed from inside this one (overlapping regions).
    ShrunkDeclaredLen,
    /// Rewrite a region tag to a code no module owns.
    UnknownTag,
    /// Swap the byte ranges of two regions.
    SwapRegions,
    /// Emit one region twice.
    DuplicateRegion,
    /// Patch a module region's record count to zero, leaving the record
    /// bytes as trailing garbage behind a valid CRC.
    ZeroRecordCount,
    /// Patch a module region's record count to an absurd value.
    HugeRecordCount,
    /// Plant invalid UTF-8 inside the name table's string bytes.
    NonUtf8Name,
    /// Set counters to `i64::MAX` / large negatives across records.
    ExtremeCounters,
    /// Many records whose counters are all `i64::MAX`, so any
    /// accumulation across them must overflow.
    OverflowingSums,
    /// Job end before job start; DXT segments stamped in reverse order.
    OutOfOrderTimestamps,
    /// DXT segments whose end time precedes their start time.
    EndBeforeStartSegments,
    /// Infinities and NaNs in every float field that will carry them.
    HostileFloats,
}

impl Corruption {
    /// Every strategy, in a stable order.
    pub const ALL: &'static [Corruption] = &[
        Corruption::TruncateAtBoundary,
        Corruption::TruncateRandom,
        Corruption::BitFlip,
        Corruption::CrcDamage,
        Corruption::HugeDeclaredLen,
        Corruption::ShrunkDeclaredLen,
        Corruption::UnknownTag,
        Corruption::SwapRegions,
        Corruption::DuplicateRegion,
        Corruption::ZeroRecordCount,
        Corruption::HugeRecordCount,
        Corruption::NonUtf8Name,
        Corruption::ExtremeCounters,
        Corruption::OverflowingSums,
        Corruption::OutOfOrderTimestamps,
        Corruption::EndBeforeStartSegments,
        Corruption::HostileFloats,
    ];

    /// Stable machine-readable name, used in corpus metadata.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Corruption::TruncateAtBoundary => "truncate-at-boundary",
            Corruption::TruncateRandom => "truncate-random",
            Corruption::BitFlip => "bit-flip",
            Corruption::CrcDamage => "crc-damage",
            Corruption::HugeDeclaredLen => "huge-declared-len",
            Corruption::ShrunkDeclaredLen => "shrunk-declared-len",
            Corruption::UnknownTag => "unknown-tag",
            Corruption::SwapRegions => "swap-regions",
            Corruption::DuplicateRegion => "duplicate-region",
            Corruption::ZeroRecordCount => "zero-record-count",
            Corruption::HugeRecordCount => "huge-record-count",
            Corruption::NonUtf8Name => "non-utf8-name",
            Corruption::ExtremeCounters => "extreme-counters",
            Corruption::OverflowingSums => "overflowing-sums",
            Corruption::OutOfOrderTimestamps => "out-of-order-timestamps",
            Corruption::EndBeforeStartSegments => "end-before-start-segments",
            Corruption::HostileFloats => "hostile-floats",
        }
    }

    /// Inverse of [`Corruption::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Corruption> {
        Corruption::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// Apply this corruption to a serialized log. Returns `None` when the
    /// strategy does not apply to this particular input (e.g. no name
    /// bytes to damage); callers fall back to another strategy.
    #[must_use]
    pub fn apply(self, bytes: &[u8], rng: &mut FuzzRng) -> Option<Vec<u8>> {
        match self {
            Corruption::TruncateAtBoundary => truncate_at_boundary(bytes, rng),
            Corruption::TruncateRandom => Some(bytes[..rng.index(bytes.len().max(1))].to_vec()),
            Corruption::BitFlip => {
                let mut out = bytes.to_vec();
                if out.is_empty() {
                    return None;
                }
                let i = rng.index(out.len());
                out[i] ^= 1 << rng.below(8);
                Some(out)
            }
            Corruption::CrcDamage => {
                let f = pick_frame(bytes, rng, |_| true)?;
                let mut out = bytes.to_vec();
                let crc_at = f.payload_start + f.payload_len + rng.index(4);
                out[crc_at] ^= 0xa5;
                Some(out)
            }
            Corruption::HugeDeclaredLen => patch_declared_len(bytes, rng, u64::MAX >> 1),
            Corruption::ShrunkDeclaredLen => {
                let f = pick_frame(bytes, rng, |f| f.payload_len >= 2)?;
                rewrite_declared_len(bytes, f, (f.payload_len / 2) as u64)
            }
            Corruption::UnknownTag => {
                let f = pick_frame(bytes, rng, |_| true)?;
                let mut out = bytes.to_vec();
                out[f.start] = 0x77;
                Some(out)
            }
            Corruption::SwapRegions => {
                let frames = frames(bytes);
                if frames.len() < 2 {
                    return None;
                }
                let a = rng.index(frames.len());
                let mut b = rng.index(frames.len());
                if a == b {
                    b = (b + 1) % frames.len();
                }
                let mut pieces = frame_pieces(bytes, &frames);
                pieces.swap(a, b);
                Some(assemble(bytes, &pieces))
            }
            Corruption::DuplicateRegion => {
                let frames = frames(bytes);
                if frames.is_empty() {
                    return None;
                }
                let i = rng.index(frames.len());
                let mut pieces = frame_pieces(bytes, &frames);
                let dup = pieces[i].clone();
                pieces.insert(i, dup);
                Some(assemble(bytes, &pieces))
            }
            Corruption::ZeroRecordCount => patch_record_count(bytes, rng, 0),
            Corruption::HugeRecordCount => patch_record_count(bytes, rng, 1 << 40),
            Corruption::NonUtf8Name => {
                let frames = frames(bytes);
                let idx = frames
                    .iter()
                    .position(|f| f.tag == TAG_NAMES && f.payload_len > 4)?;
                let f = frames[idx];
                let mut payload = bytes[f.payload_start..f.payload_start + f.payload_len].to_vec();
                // String bytes live toward the end of the table; hit there.
                let at = payload.len() / 2 + rng.index(payload.len() - payload.len() / 2);
                payload[at] = 0xfe;
                let mut pieces = frame_pieces(bytes, &frames);
                pieces[idx] = frame_bytes(f.tag, &payload);
                Some(assemble(bytes, &pieces))
            }
            Corruption::ExtremeCounters => mutate_log(bytes, |log, rng| {
                let extremes = [i64::MAX, i64::MIN + 1, -1, i64::MAX - 1];
                let mut hit = false;
                for counters in log
                    .posix
                    .iter_mut()
                    .map(|r| &mut r.counters)
                    .chain(log.mpiio.iter_mut().map(|r| &mut r.counters))
                    .chain(log.stdio.iter_mut().map(|r| &mut r.counters))
                {
                    for c in counters.iter_mut() {
                        if rng.chance(40) {
                            *c = *rng.choose(&extremes);
                            hit = true;
                        }
                    }
                }
                hit
            }),
            Corruption::OverflowingSums => mutate_log(bytes, |log, rng| {
                let mut seed = log
                    .posix
                    .first()
                    .cloned()
                    .unwrap_or_else(|| darshan::records::PosixRecord::new(0xdead_beef, 0));
                seed.counters.iter_mut().for_each(|c| *c = i64::MAX);
                let copies = 2 + rng.index(6);
                for i in 0..copies {
                    let mut r = seed.clone();
                    r.rank = i32::try_from(i).unwrap_or(0);
                    log.posix.push(r);
                }
                true
            }),
            Corruption::OutOfOrderTimestamps => mutate_log(bytes, |log, rng| {
                log.job.start_time = 1.0e6;
                log.job.end_time = -1.0e6;
                for r in &mut log.dxt {
                    for s in r.writes.iter_mut().chain(r.reads.iter_mut()) {
                        s.start_time = rng.unit_f64() * -1.0e3;
                        s.end_time = s.start_time - rng.unit_f64();
                    }
                }
                true
            }),
            Corruption::EndBeforeStartSegments => mutate_log(bytes, |log, rng| {
                if log.dxt.is_empty() {
                    log.dxt
                        .push(DxtRecord::new(0xfeed, 0, DxtLayer::Posix, "nodeX"));
                }
                for r in &mut log.dxt {
                    let seg = DxtSegment {
                        offset: rng.below(1 << 20),
                        length: rng.below(1 << 20),
                        start_time: 100.0,
                        end_time: 1.0,
                    };
                    r.push(OpKind::Write, seg);
                    for s in r.writes.iter_mut().chain(r.reads.iter_mut()) {
                        std::mem::swap(&mut s.start_time, &mut s.end_time);
                    }
                }
                true
            }),
            Corruption::HostileFloats => mutate_log(bytes, |log, rng| {
                let hostile = [f64::INFINITY, f64::NEG_INFINITY, f64::NAN, -0.0, 1.0e308];
                log.job.start_time = *rng.choose(&hostile);
                log.job.end_time = *rng.choose(&hostile);
                for r in &mut log.posix {
                    for f in &mut r.fcounters {
                        if rng.chance(50) {
                            *f = *rng.choose(&hostile);
                        }
                    }
                }
                for r in &mut log.heatmap {
                    r.bin_width = *rng.choose(&[0.0, -1.0, f64::INFINITY, f64::NAN]);
                }
                for r in &mut log.dxt {
                    for s in r.writes.iter_mut().chain(r.reads.iter_mut()) {
                        if rng.chance(30) {
                            s.start_time = *rng.choose(&hostile);
                            s.end_time = *rng.choose(&hostile);
                        }
                    }
                }
                true
            }),
        }
    }
}

/// A parsed region frame: `[start] tag, len varint, payload, crc [end)`.
#[derive(Debug, Clone, Copy)]
struct Frame {
    start: usize,
    tag: u8,
    payload_start: usize,
    payload_len: usize,
    end: usize,
}

fn read_uvarint(bytes: &[u8], mut pos: usize) -> Option<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    let start = pos;
    loop {
        let b = *bytes.get(pos)?;
        pos += 1;
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some((value, pos - start));
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

fn encode_uvarint(mut v: u64) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let mut b = (v & 0x7f) as u8;
        v >>= 7;
        if v != 0 {
            b |= 0x80;
        }
        out.push(b);
        if v == 0 {
            return out;
        }
    }
}

/// Walk the frame structure of a serialized log. Stops at the end tag or
/// the first frame that doesn't fit — corruptions only need the valid
/// prefix.
fn frames(bytes: &[u8]) -> Vec<Frame> {
    let mut out = Vec::new();
    let mut pos = HEADER_LEN;
    while pos < bytes.len() {
        let tag = bytes[pos];
        if tag == TAG_END {
            break;
        }
        let Some((len, vlen)) = read_uvarint(bytes, pos + 1) else {
            break;
        };
        let Ok(len) = usize::try_from(len) else {
            break;
        };
        let payload_start = pos + 1 + vlen;
        let end = match payload_start
            .checked_add(len)
            .and_then(|p| p.checked_add(4))
        {
            Some(e) if e <= bytes.len() => e,
            _ => break,
        };
        out.push(Frame {
            start: pos,
            tag,
            payload_start,
            payload_len: len,
            end,
        });
        pos = end;
    }
    out
}

fn pick_frame(bytes: &[u8], rng: &mut FuzzRng, keep: impl Fn(&Frame) -> bool) -> Option<Frame> {
    let all = frames(bytes);
    let kept: Vec<Frame> = all.into_iter().filter(|f| keep(f)).collect();
    if kept.is_empty() {
        None
    } else {
        Some(kept[rng.index(kept.len())])
    }
}

fn frame_pieces(bytes: &[u8], frames: &[Frame]) -> Vec<Vec<u8>> {
    frames
        .iter()
        .map(|f| bytes[f.start..f.end].to_vec())
        .collect()
}

/// Rebuild a file from its header, an ordered list of frame byte blobs,
/// and the end tag.
fn assemble(bytes: &[u8], pieces: &[Vec<u8>]) -> Vec<u8> {
    let mut out = bytes[..HEADER_LEN].to_vec();
    for p in pieces {
        out.extend_from_slice(p);
    }
    out.push(TAG_END);
    out
}

/// Frame a payload with a freshly computed (valid) CRC.
fn frame_bytes(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = vec![tag];
    out.extend_from_slice(&encode_uvarint(payload.len() as u64));
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Rewrite one frame's declared length *in place* (without moving the
/// payload), so the declaration lies about where the region ends.
fn rewrite_declared_len(bytes: &[u8], f: Frame, new_len: u64) -> Option<Vec<u8>> {
    let mut out = bytes[..f.start + 1].to_vec();
    out.extend_from_slice(&encode_uvarint(new_len));
    out.extend_from_slice(&bytes[f.payload_start..]);
    Some(out)
}

fn patch_declared_len(bytes: &[u8], rng: &mut FuzzRng, new_len: u64) -> Option<Vec<u8>> {
    let f = pick_frame(bytes, rng, |_| true)?;
    rewrite_declared_len(bytes, f, new_len)
}

/// Patch the leading record-count varint of a random module region,
/// re-framing with a valid CRC so the lie survives the checksum.
fn patch_record_count(bytes: &[u8], rng: &mut FuzzRng, new_count: u64) -> Option<Vec<u8>> {
    let all = frames(bytes);
    let modules: Vec<usize> = all
        .iter()
        .enumerate()
        .filter(|(_, f)| (1..=6).contains(&f.tag) && f.payload_len > 0)
        .map(|(i, _)| i)
        .collect();
    if modules.is_empty() {
        return None;
    }
    let idx = modules[rng.index(modules.len())];
    let f = all[idx];
    let payload = &bytes[f.payload_start..f.payload_start + f.payload_len];
    let (_, vlen) = read_uvarint(payload, 0)?;
    let mut patched = encode_uvarint(new_count);
    patched.extend_from_slice(&payload[vlen..]);
    let mut pieces = frame_pieces(bytes, &all);
    pieces[idx] = frame_bytes(f.tag, &patched);
    Some(assemble(bytes, &pieces))
}

fn truncate_at_boundary(bytes: &[u8], rng: &mut FuzzRng) -> Option<Vec<u8>> {
    let all = frames(bytes);
    let mut cuts = vec![0, HEADER_LEN.min(bytes.len())];
    for f in &all {
        cuts.push(f.start);
        cuts.push(f.payload_start);
        cuts.push(f.payload_start + f.payload_len); // CRC start
        cuts.push(f.end);
    }
    cuts.retain(|&c| c <= bytes.len());
    let mut cut = cuts[rng.index(cuts.len())];
    // Half the time, step a few bytes into the next region so the cut
    // lands mid-header rather than exactly on the seam.
    if rng.chance(50) {
        cut = (cut + 1 + rng.index(3)).min(bytes.len());
    }
    Some(bytes[..cut].to_vec())
}

/// Decode, mutate, re-encode. The mutator returns `false` when it found
/// nothing to mutate.
fn mutate_log(
    bytes: &[u8],
    mutate: impl FnOnce(&mut Log, &mut FuzzRng) -> bool,
) -> Option<Vec<u8>> {
    let mut log = LogReader::read(bytes).ok()?;
    // Derive a per-artifact rng from the input so mutation is a pure
    // function of the bytes.
    let mut rng = FuzzRng::new(u64::from(crc32(bytes)) | 1);
    if !mutate(&mut log, &mut rng) {
        return None;
    }
    LogWriter::from_log(log).finish().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_bytes;

    fn sample() -> Vec<u8> {
        // Seed 3 generates a log with several modules present.
        let mut rng = FuzzRng::new(3);
        loop {
            let b = generate_bytes(&mut rng);
            let log = LogReader::read(&b).unwrap();
            if !log.posix.is_empty() && !log.names.is_empty() {
                return b;
            }
        }
    }

    #[test]
    fn every_corruption_applies_to_some_input() {
        let bytes = sample();
        for &c in Corruption::ALL {
            let mut applied = false;
            for salt in 0..32 {
                let mut rng = FuzzRng::new(1000 + salt);
                if let Some(out) = c.apply(&bytes, &mut rng) {
                    applied = true;
                    assert_ne!(out, bytes, "{} was a no-op", c.name());
                    break;
                }
            }
            assert!(applied, "{} never applied", c.name());
        }
    }

    #[test]
    fn names_round_trip() {
        for &c in Corruption::ALL {
            assert_eq!(Corruption::from_name(c.name()), Some(c));
        }
        assert_eq!(Corruption::from_name("nonsense"), None);
    }

    #[test]
    fn semantic_corruptions_still_decode() {
        let bytes = sample();
        for &c in [
            Corruption::ExtremeCounters,
            Corruption::OverflowingSums,
            Corruption::OutOfOrderTimestamps,
            Corruption::EndBeforeStartSegments,
            Corruption::HostileFloats,
        ]
        .iter()
        {
            let mut rng = FuzzRng::new(7);
            let out = c.apply(&bytes, &mut rng).expect("applies");
            LogReader::read(&out).unwrap_or_else(|e| panic!("{} broke framing: {e}", c.name()));
        }
    }

    #[test]
    fn zero_record_count_keeps_valid_crc_framing() {
        let bytes = sample();
        let mut rng = FuzzRng::new(9);
        let out = patch_record_count(&bytes, &mut rng, 0).unwrap();
        // Framing must still walk cleanly (CRCs recomputed)…
        assert!(!frames(&out).is_empty());
        // …while at least one module region now lies about its contents.
        assert_ne!(out, bytes);
    }
}
