//! Pinned regression corpus: `.seed` files.
//!
//! Each file pins one artifact that once crashed the pipeline, with
//! enough metadata to understand and reproduce it:
//!
//! ```text
//! # ion-fuzz regression seed
//! # seed: 42
//! # iter: 17
//! # corruption: bit-flip
//! # stage: decode
//! # message: index out of bounds: ...
//! 4453484e01000000...
//! ```
//!
//! `#` lines carry `key: value` metadata; the remaining lines are the
//! artifact bytes in hex (wrapped for diff-ability). Replaying a corpus
//! directory re-drives every entry and reports any that still crash —
//! the PR-gate regression check.

use crate::campaign::{replay, CrashArtifact};
use crate::driver::Verdict;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// One parsed `.seed` file.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// File stem the entry was loaded from.
    pub name: String,
    /// Campaign master seed that produced it.
    pub seed: Option<u64>,
    /// Iteration within that campaign.
    pub iter: Option<u64>,
    /// Corruption strategy name.
    pub corruption: Option<String>,
    /// Stage the original crash escaped from.
    pub stage: Option<String>,
    /// Original panic message.
    pub message: Option<String>,
    /// The artifact bytes.
    pub bytes: Vec<u8>,
}

/// A corpus entry that crashed on replay — a regression.
#[derive(Debug, Clone)]
pub struct ReplayFailure {
    /// Entry name.
    pub name: String,
    /// Stage the replayed crash escaped from.
    pub stage: String,
    /// Replayed panic message.
    pub message: String,
    /// Minimized crasher, hex-encoded, ready for a bug report.
    pub minimized_hex: String,
}

fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

fn from_hex(s: &str) -> Option<Vec<u8>> {
    let digits: Vec<u8> = s.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !digits.len().is_multiple_of(2) {
        return None;
    }
    let nib = |d: u8| -> Option<u8> {
        match d {
            b'0'..=b'9' => Some(d - b'0'),
            b'a'..=b'f' => Some(d - b'a' + 10),
            b'A'..=b'F' => Some(d - b'A' + 10),
            _ => None,
        }
    };
    digits
        .chunks(2)
        .map(|p| Some(nib(p[0])? << 4 | nib(p[1])?))
        .collect()
}

/// Render an artifact as `.seed` file contents. Pins the minimized bytes
/// when available (they reproduce the same-stage crash by construction),
/// keeping the corpus small and the replay gate fast.
#[must_use]
pub fn render(artifact: &CrashArtifact) -> String {
    let bytes = artifact.minimized.as_ref().unwrap_or(&artifact.artifact);
    let mut out = String::new();
    out.push_str("# ion-fuzz regression seed\n");
    let _ = writeln!(out, "# seed: {}", artifact.seed);
    let _ = writeln!(out, "# iter: {}", artifact.iter);
    if let Some(c) = artifact.corruption {
        let _ = writeln!(out, "# corruption: {}", c.name());
    }
    let _ = writeln!(out, "# stage: {}", artifact.stage.name());
    let _ = writeln!(out, "# message: {}", artifact.message.replace('\n', "\\n"));
    let hex = to_hex(bytes);
    for chunk in hex.as_bytes().chunks(64) {
        out.push_str(std::str::from_utf8(chunk).unwrap_or_default());
        out.push('\n');
    }
    out
}

/// Stable file name for an artifact.
#[must_use]
pub fn file_name(artifact: &CrashArtifact) -> String {
    format!(
        "{}-{}-s{}-i{}.seed",
        artifact
            .corruption
            .map_or("valid", super::corrupt::Corruption::name),
        artifact.stage.name(),
        artifact.seed,
        artifact.iter
    )
}

/// Write an artifact into `dir`, creating it if needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(dir: &Path, artifact: &CrashArtifact) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(file_name(artifact));
    std::fs::write(&path, render(artifact))?;
    Ok(path)
}

/// Parse one `.seed` file.
///
/// # Errors
///
/// Fails on filesystem errors or undecodable hex payloads.
pub fn load(path: &Path) -> io::Result<CorpusEntry> {
    let text = std::fs::read_to_string(path)?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let mut entry = CorpusEntry {
        name,
        seed: None,
        iter: None,
        corruption: None,
        stage: None,
        message: None,
        bytes: Vec::new(),
    };
    let mut hex = String::new();
    for line in text.lines() {
        if let Some(meta) = line.strip_prefix('#') {
            if let Some((key, value)) = meta.split_once(':') {
                let value = value.trim().to_string();
                match key.trim() {
                    "seed" => entry.seed = value.parse().ok(),
                    "iter" => entry.iter = value.parse().ok(),
                    "corruption" => entry.corruption = Some(value),
                    "stage" => entry.stage = Some(value),
                    "message" => entry.message = Some(value),
                    _ => {}
                }
            }
        } else {
            hex.push_str(line.trim());
        }
    }
    entry.bytes = from_hex(&hex).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: undecodable hex payload", path.display()),
        )
    })?;
    Ok(entry)
}

/// Load every `.seed` file in `dir`, sorted by name for determinism.
///
/// # Errors
///
/// Propagates filesystem and parse errors.
pub fn load_dir(dir: &Path) -> io::Result<Vec<CorpusEntry>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "seed"))
        .collect();
    paths.sort();
    paths.iter().map(|p| load(p)).collect()
}

/// Replay every corpus entry through the pipeline. Returns
/// `(entries_replayed, failures)`; an empty failure list means every
/// historical crasher now lands as a typed rejection or a contained
/// analysis — the regression gate is green.
///
/// # Errors
///
/// Propagates filesystem and parse errors.
pub fn replay_dir(dir: &Path) -> io::Result<(usize, Vec<ReplayFailure>)> {
    let entries = load_dir(dir)?;
    let mut failures = Vec::new();
    for entry in &entries {
        if let Verdict::Crashed { stage, message } = replay(&entry.bytes) {
            let minimized = crate::minimize::minimize(&entry.bytes, stage);
            failures.push(ReplayFailure {
                name: entry.name.clone(),
                stage: stage.name().to_string(),
                message,
                minimized_hex: to_hex(&minimized),
            });
        }
    }
    Ok((entries.len(), failures))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corrupt::Corruption;
    use crate::driver::Stage;

    fn artifact() -> CrashArtifact {
        CrashArtifact {
            seed: 42,
            iter: 17,
            corruption: Some(Corruption::BitFlip),
            stage: Stage::Decode,
            message: "index out of bounds:\nlen is 3".to_string(),
            artifact: vec![0x44, 0x53, 0x48, 0x4e, 0x01, 0x00],
            minimized: None,
        }
    }

    #[test]
    fn seed_files_round_trip() {
        let dir = std::env::temp_dir().join(format!("ion-fuzz-corpus-{}", std::process::id()));
        let path = save(&dir, &artifact()).unwrap();
        let entry = load(&path).unwrap();
        assert_eq!(entry.seed, Some(42));
        assert_eq!(entry.iter, Some(17));
        assert_eq!(entry.corruption.as_deref(), Some("bit-flip"));
        assert_eq!(entry.stage.as_deref(), Some("decode"));
        assert_eq!(entry.bytes, artifact().artifact);
        let (count, failures) = replay_dir(&dir).unwrap();
        assert_eq!(count, 1);
        // 6 header-prefix bytes: typed rejection, not a crash.
        assert!(failures.is_empty(), "{failures:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn minimized_bytes_are_preferred() {
        let mut a = artifact();
        a.minimized = Some(vec![0xab]);
        let text = render(&a);
        assert!(text.ends_with("ab\n"), "{text}");
    }

    #[test]
    fn hex_is_total_on_valid_input() {
        for len in 0..64 {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37) as u8).collect();
            assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        }
        assert!(from_hex("abc").is_none());
        assert!(from_hex("zz").is_none());
    }
}
