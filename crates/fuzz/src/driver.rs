//! Drives one artifact through the pipeline, stage by stage, with a
//! panic trap around each stage.
//!
//! The stages mirror the production data path: strict decode, lenient
//! (valid-prefix) decode, table extraction, analysis. A panic in *any*
//! stage is a contract violation — the pipeline's own error handling
//! (typed [`darshan::DarshanError`]s, per-issue failed diagnoses) must
//! absorb everything hostile bytes can throw at it.

use darshan::log::{Log, LogReader, StreamDecoder};
use darshan::records::JobRecord;
use extractor::{extract_stream, extract_tables};
use ion::IonPipeline;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Pipeline stage an artifact reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Strict decode: `LogReader::read`.
    Decode,
    /// Streaming decode: `extractor::extract_stream` plus a lazy
    /// region walk over `darshan::StreamDecoder`.
    Stream,
    /// Lenient decode: `LogReader::read_lenient` (valid-prefix recovery).
    LenientDecode,
    /// Column extraction: `extractor::extract_tables`.
    Extract,
    /// Analysis: `IonPipeline::run_tables` (mock LLM).
    Analyze,
}

impl Stage {
    /// Stable machine-readable name, used in corpus metadata.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Stream => "stream",
            Stage::LenientDecode => "lenient-decode",
            Stage::Extract => "extract",
            Stage::Analyze => "analyze",
        }
    }

    /// Inverse of [`Stage::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Stage> {
        [
            Stage::Decode,
            Stage::Stream,
            Stage::LenientDecode,
            Stage::Extract,
            Stage::Analyze,
        ]
        .into_iter()
        .find(|s| s.name() == name)
    }
}

/// Outcome of driving one artifact through the full pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Both strict and lenient decode rejected the bytes with a typed
    /// error. The contract is satisfied: garbage in, typed error out.
    Rejected {
        /// The strict decoder's error.
        strict: String,
        /// The lenient decoder's (header-level) error.
        lenient: String,
    },
    /// The artifact was analyzed end to end. `recovered` is true when
    /// only the lenient decoder accepted it (valid-prefix path), and
    /// `failed_diagnoses` counts per-issue analyses that failed in a
    /// *contained* way.
    Analyzed {
        /// True when strict decode failed but the lenient path recovered
        /// a usable prefix.
        recovered: bool,
        /// Issues diagnosed.
        diagnoses: usize,
        /// Issues whose analysis failed but was contained to the report.
        failed_diagnoses: usize,
    },
    /// A panic escaped a pipeline stage: the bug the campaign exists to
    /// find.
    Crashed {
        /// Stage the panic escaped from.
        stage: Stage,
        /// Panic payload, when it was a string.
        message: String,
    },
}

impl Verdict {
    /// True when this verdict violates the total-robustness contract.
    #[must_use]
    pub fn is_crash(&self) -> bool {
        matches!(self, Verdict::Crashed { .. })
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn trap<T>(stage: Stage, f: impl FnOnce() -> T) -> Result<T, Verdict> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| Verdict::Crashed {
        stage,
        message: panic_message(payload.as_ref()),
    })
}

/// Drive raw bytes through decode → extract → analyze and report where
/// they got and how. Never panics: every stage runs under a trap, and a
/// trapped panic is returned as [`Verdict::Crashed`].
#[must_use]
pub fn drive(bytes: &[u8]) -> Verdict {
    match drive_inner(bytes) {
        Ok(v) | Err(v) => v,
    }
}

/// Replay the bytes through the lazy streaming path.
///
/// Two probes: a full streaming extraction (chunk budget deliberately
/// small and odd, so chunk boundaries land mid-record-group), and a
/// region walk that rotates between verifying, decoding, and merely
/// inspecting each frame — corruption in a block the walk never
/// CRC-checks must surface as a typed error downstream or not at all,
/// never as a panic. When the strict batch decoder accepted the bytes,
/// the streaming extractor must accept them too (same CRC coverage).
fn stream_check(bytes: &[u8], strict_ok: bool) {
    let streamed = extract_stream(bytes, 61, None);
    if strict_ok {
        assert!(
            streamed.is_ok(),
            "strict decode accepted these bytes but streaming extract errored: {:?}",
            streamed.err().map(|e| e.to_string())
        );
    }
    let Ok(mut decoder) = StreamDecoder::new(bytes) else {
        return;
    };
    let mut scratch = Log::new(JobRecord::new(0, 0, 0));
    let mut i = 0_usize;
    while let Ok(Some(region)) = decoder.next_region() {
        match i % 3 {
            0 => drop(region.verify()),
            1 => drop(region.decode_into(&mut scratch)),
            _ => {
                let _ = (region.name(), region.payload_len());
            }
        }
        i += 1;
    }
    let _ = decoder.bytes_read();
}

fn drive_inner(bytes: &[u8]) -> Result<Verdict, Verdict> {
    let strict = trap(Stage::Decode, || LogReader::read(bytes))?;
    trap(Stage::Stream, || stream_check(bytes, strict.is_ok()))?;
    let (log, recovered) = match strict {
        Ok(log) => (log, false),
        Err(strict_err) => {
            let lenient = trap(Stage::LenientDecode, || LogReader::read_lenient(bytes))?;
            match lenient {
                Ok(partial) => (partial.log, true),
                Err(lenient_err) => {
                    return Ok(Verdict::Rejected {
                        strict: strict_err.to_string(),
                        lenient: lenient_err.to_string(),
                    });
                }
            }
        }
    };

    let pipeline = IonPipeline::new();
    let (tables, params) = trap(Stage::Extract, || {
        (extract_tables(&log), pipeline.params_for(&log))
    })?;
    let report = trap(Stage::Analyze, || pipeline.run_tables(&tables, &params))?;

    let failed_diagnoses = report
        .diagnoses
        .iter()
        .filter(|d| d.detection.is_none())
        .count();
    Ok(Verdict::Analyzed {
        recovered,
        diagnoses: report.diagnoses.len(),
        failed_diagnoses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_bytes;
    use crate::rng::FuzzRng;

    #[test]
    fn valid_log_is_analyzed() {
        let bytes = generate_bytes(&mut FuzzRng::new(11));
        match drive(&bytes) {
            Verdict::Analyzed { recovered, .. } => assert!(!recovered),
            other => panic!("valid log should analyze, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_rejected_not_crashed() {
        let verdict = drive(b"not a darshan log at all");
        match verdict {
            Verdict::Rejected { .. } => {}
            other => panic!("garbage should be rejected, got {other:?}"),
        }
    }

    #[test]
    fn truncated_tail_recovers_via_lenient_path() {
        let bytes = generate_bytes(&mut FuzzRng::new(11));
        // Cut inside the final CRC: strict fails, lenient keeps prefix.
        let cut = &bytes[..bytes.len() - 3];
        match drive(cut) {
            Verdict::Analyzed { recovered, .. } => assert!(recovered),
            Verdict::Rejected { .. } => {} // acceptable if cut hit the job region
            other => panic!("truncated log crashed: {other:?}"),
        }
    }
}
