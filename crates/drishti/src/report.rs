//! Drishti report model and console rendering.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Insight level, as in Drishti's colored console output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Level {
    /// Informational.
    Info,
    /// Behaviour that is fine.
    Ok,
    /// Possible problem.
    Warn,
    /// Critical problem.
    High,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::High => "HIGH",
            Level::Warn => "WARN",
            Level::Ok => "OK",
            Level::Info => "INFO",
        })
    }
}

/// One triggered insight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Insight {
    /// Stable trigger identifier (e.g. `small-writes`).
    pub id: String,
    /// Level.
    pub level: Level,
    /// Message with numbers interpolated.
    pub message: String,
    /// Actionable recommendation.
    pub recommendation: Option<String>,
    /// File the insight refers to, when file-specific.
    pub file: Option<String>,
}

/// A full Drishti report for one log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Report {
    /// Triggered insights, in trigger order.
    pub insights: Vec<Insight>,
    /// Number of triggers evaluated (fired or not).
    pub triggers_evaluated: usize,
}

impl Report {
    /// Insights at a given level.
    #[must_use]
    pub fn at_level(&self, level: Level) -> Vec<&Insight> {
        self.insights.iter().filter(|i| i.level == level).collect()
    }

    /// Whether a given trigger fired.
    #[must_use]
    pub fn fired(&self, id: &str) -> bool {
        self.insights.iter().any(|i| i.id == id)
    }

    /// Look up the first insight for a trigger id.
    #[must_use]
    pub fn insight(&self, id: &str) -> Option<&Insight> {
        self.insights.iter().find(|i| i.id == id)
    }

    /// Render the report the way Drishti prints it.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("DRISHTI v.repro — I/O insights\n");
        out.push_str(&format!(
            "{} triggers evaluated, {} insights\n\n",
            self.triggers_evaluated,
            self.insights.len()
        ));
        for i in &self.insights {
            out.push_str(&format!("[{}] {}\n", i.level, i.message));
            if let Some(f) = &i.file {
                out.push_str(&format!("        file: {f}\n"));
            }
            if let Some(r) = &i.recommendation {
                out.push_str(&format!("        recommendation: {r}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            insights: vec![
                Insight {
                    id: "small-writes".into(),
                    level: Level::High,
                    message: "Application issues a high number (42) of small write requests".into(),
                    recommendation: Some("consider buffering writes".into()),
                    file: Some("/scratch/x".into()),
                },
                Insight {
                    id: "sequential-reads".into(),
                    level: Level::Ok,
                    message: "Application mostly uses consecutive reads".into(),
                    recommendation: None,
                    file: None,
                },
            ],
            triggers_evaluated: 30,
        }
    }

    #[test]
    fn level_ordering() {
        assert!(Level::High > Level::Warn);
        assert!(Level::Warn > Level::Ok);
        assert!(Level::Ok > Level::Info);
    }

    #[test]
    fn queries() {
        let r = sample();
        assert!(r.fired("small-writes"));
        assert!(!r.fired("nope"));
        assert_eq!(r.at_level(Level::High).len(), 1);
        assert!(r.insight("sequential-reads").is_some());
    }

    #[test]
    fn render_contains_levels_and_recommendations() {
        let text = sample().render_text();
        assert!(text.contains("[HIGH]"));
        assert!(text.contains("[OK]"));
        assert!(text.contains("recommendation: consider buffering writes"));
        assert!(text.contains("file: /scratch/x"));
        assert!(text.contains("30 triggers evaluated"));
    }
}
