//! Drishti's fixed trigger thresholds.
//!
//! These constants mirror the upstream defaults. The ION paper's critique
//! is aimed precisely at this table: "setting correct threshold values for
//! these triggers is not a simple task — they may vary significantly among
//! different systems and across distinct workloads".

/// A request smaller than this many bytes is a "small" request (1 MiB).
pub const SMALL_REQUEST_BYTES: u64 = 1 << 20;

/// Fraction of small requests above which the small-I/O insight fires.
pub const SMALL_REQUESTS_RATIO: f64 = 0.10;

/// Absolute small-request count that also must be exceeded.
pub const SMALL_REQUESTS_ABSOLUTE: i64 = 1000;

/// Fraction of misaligned requests above which misalignment fires.
pub const MISALIGNED_REQUESTS_RATIO: f64 = 0.10;

/// Fraction of random operations above which the random-access insight
/// fires.
pub const RANDOM_OPERATIONS_RATIO: f64 = 0.20;

/// Absolute random-operation count that also must be exceeded.
///
/// Figure 3 of the ION paper shows Drishti reporting 565 random reads on
/// the optimized OpenPMD trace, so the effective threshold upstream is
/// below that count.
pub const RANDOM_OPERATIONS_ABSOLUTE: i64 = 100;

/// Metadata time (seconds, per rank) above which the metadata insight
/// fires.
pub const METADATA_TIME_RANK_SECONDS: f64 = 30.0;

/// Fraction of time in metadata above which the metadata-ratio insight
/// fires.
pub const METADATA_TIME_RATIO: f64 = 0.30;

/// Load-imbalance fraction `(max - mean) / max` above which imbalance
/// fires.
pub const IMBALANCE_RATIO: f64 = 0.30;

/// Straggler fraction `(slowest - fastest) / slowest` above which the
/// straggler insight fires.
pub const STRAGGLER_RATIO: f64 = 0.15;

/// Fraction of I/O through STDIO above which the interface insight fires.
pub const INTERFACE_STDIO_RATIO: f64 = 0.10;

/// Fraction of collective operations below which collective usage is
/// flagged (when the absolute op count is meaningful).
pub const COLLECTIVE_OPERATIONS_RATIO: f64 = 0.50;

/// Absolute MPI-IO operation count below which collective checks stay
/// silent.
pub const COLLECTIVE_OPERATIONS_ABSOLUTE: i64 = 100;

/// Opens per file above which the repeated-open insight fires.
pub const OPENS_PER_FILE: f64 = 10.0;

/// fsync count above which the sync-heavy insight fires.
pub const FSYNC_ABSOLUTE: i64 = 100;

/// Read/write switch fraction above which the switch insight fires.
pub const RW_SWITCH_RATIO: f64 = 0.10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_match_upstream_defaults() {
        // The two values the ION paper quotes explicitly.
        assert_eq!(SMALL_REQUEST_BYTES, 1024 * 1024);
        assert!((SMALL_REQUESTS_RATIO - 0.10).abs() < f64::EPSILON);
    }

    #[test]
    fn ratios_are_fractions() {
        for r in [
            SMALL_REQUESTS_RATIO,
            MISALIGNED_REQUESTS_RATIO,
            RANDOM_OPERATIONS_RATIO,
            METADATA_TIME_RATIO,
            IMBALANCE_RATIO,
            STRAGGLER_RATIO,
            INTERFACE_STDIO_RATIO,
            COLLECTIVE_OPERATIONS_RATIO,
            RW_SWITCH_RATIO,
        ] {
            assert!(r > 0.0 && r < 1.0);
        }
    }
}
