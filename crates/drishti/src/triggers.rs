//! The Drishti trigger set.
//!
//! Thirty heuristic checks over a Darshan log, grouped the way the
//! original tool groups them: interface usage, POSIX operation profile,
//! alignment, access pattern, load balance, metadata, MPI-IO usage, and
//! Lustre layout. Each trigger compares counters against the fixed
//! thresholds in [`crate::thresholds`] and, when it fires, emits a
//! templated [`Insight`] with a canned recommendation.

use crate::report::{Insight, Level, Report};
use crate::thresholds as th;
use darshan::counters::{MpiioCounter, PosixCounter, PosixFCounter, StdioCounter};
use darshan::log::Log;
use darshan::records::PosixRecord;
use std::collections::{HashMap, HashSet};

/// Sum an integer counter over all POSIX records.
fn psum(log: &Log, c: PosixCounter) -> i64 {
    log.posix.iter().map(|r| r.get(c)).sum()
}

/// Sum a float counter over all POSIX records.
fn pfsum(log: &Log, c: PosixFCounter) -> f64 {
    log.posix.iter().map(|r| r.fget(c)).sum()
}

fn msum(log: &Log, c: MpiioCounter) -> i64 {
    log.mpiio.iter().map(|r| r.get(c)).sum()
}

fn ssum(log: &Log, c: StdioCounter) -> i64 {
    log.stdio.iter().map(|r| r.get(c)).sum()
}

/// Small-request count from the POSIX size histograms (< 1 MiB bins).
fn small_ops(records: &[&PosixRecord], write: bool) -> i64 {
    use PosixCounter::*;
    let bins: [PosixCounter; 5] = if write {
        [
            POSIX_SIZE_WRITE_0_100,
            POSIX_SIZE_WRITE_100_1K,
            POSIX_SIZE_WRITE_1K_10K,
            POSIX_SIZE_WRITE_10K_100K,
            POSIX_SIZE_WRITE_100K_1M,
        ]
    } else {
        [
            POSIX_SIZE_READ_0_100,
            POSIX_SIZE_READ_100_1K,
            POSIX_SIZE_READ_1K_10K,
            POSIX_SIZE_READ_10K_100K,
            POSIX_SIZE_READ_100K_1M,
        ]
    };
    records
        .iter()
        .map(|r| bins.iter().map(|&b| r.get(b)).sum::<i64>())
        .sum()
}

/// Files accessed by more than one rank.
fn shared_files(log: &Log) -> HashSet<u64> {
    let mut ranks_per_file: HashMap<u64, HashSet<i32>> = HashMap::new();
    for r in &log.posix {
        ranks_per_file.entry(r.file_id).or_default().insert(r.rank);
    }
    ranks_per_file
        .into_iter()
        .filter(|(_, ranks)| ranks.len() > 1 || ranks.contains(&-1))
        .map(|(f, _)| f)
        .collect()
}

struct Ctx<'a> {
    log: &'a Log,
    insights: Vec<Insight>,
    evaluated: usize,
}

impl Ctx<'_> {
    fn emit(
        &mut self,
        id: &'static str,
        level: Level,
        message: String,
        recommendation: Option<&str>,
        file: Option<String>,
    ) {
        self.insights.push(Insight {
            id: id.to_owned(),
            level,
            message,
            recommendation: recommendation.map(ToOwned::to_owned),
            file,
        });
    }

    fn check(&mut self, fired: bool) -> bool {
        self.evaluated += 1;
        fired
    }
}

/// Run the full trigger set against a log.
#[must_use]
pub fn analyze(log: &Log) -> Report {
    let mut span = ion_obs::span!("drishti.analyze");
    let mut ctx = Ctx {
        log,
        insights: Vec::new(),
        evaluated: 0,
    };
    interface_triggers(&mut ctx);
    posix_operation_triggers(&mut ctx);
    alignment_triggers(&mut ctx);
    access_pattern_triggers(&mut ctx);
    balance_triggers(&mut ctx);
    metadata_triggers(&mut ctx);
    mpiio_triggers(&mut ctx);
    lustre_triggers(&mut ctx);
    span.attr("triggers", ctx.evaluated);
    span.attr("insights", ctx.insights.len());
    ion_obs::counter("drishti.triggers_evaluated", ctx.evaluated as u64);
    Report {
        insights: ctx.insights,
        triggers_evaluated: ctx.evaluated,
    }
}

fn interface_triggers(ctx: &mut Ctx<'_>) {
    let log = ctx.log;
    let posix_ops = psum(log, PosixCounter::POSIX_READS) + psum(log, PosixCounter::POSIX_WRITES);
    let stdio_ops = ssum(log, StdioCounter::STDIO_READS) + ssum(log, StdioCounter::STDIO_WRITES);
    let total = posix_ops + stdio_ops;

    // 1. Heavy STDIO usage.
    if ctx.check(total > 0 && stdio_ops as f64 / total as f64 > th::INTERFACE_STDIO_RATIO) {
        ctx.emit(
            "interface-stdio",
            Level::Warn,
            format!(
                "Application is using STDIO, a low-performance interface, for {:.2}% of its data transfers ({stdio_ops} ops)",
                100.0 * stdio_ops as f64 / total as f64
            ),
            Some("consider switching to POSIX or MPI-IO for better performance"),
            None,
        );
    }

    // 2. Multi-rank job without MPI-IO.
    if ctx.check(log.job.nprocs > 1 && log.mpiio.is_empty() && posix_ops > 0) {
        ctx.emit(
            "interface-no-mpiio",
            Level::Warn,
            format!(
                "Application with {} ranks uses only POSIX I/O and does not use MPI-IO",
                log.job.nprocs
            ),
            Some("consider using MPI-IO to benefit from collective buffering and hints"),
            None,
        );
    }
}

fn posix_operation_triggers(ctx: &mut Ctx<'_>) {
    let log = ctx.log;
    let reads = psum(log, PosixCounter::POSIX_READS);
    let writes = psum(log, PosixCounter::POSIX_WRITES);
    let records: Vec<&PosixRecord> = log.posix.iter().collect();
    let small_reads = small_ops(&records, false);
    let small_writes = small_ops(&records, true);
    let shared = shared_files(log);

    // 3. Small reads.
    if ctx.check(
        reads > 0
            && small_reads > th::SMALL_REQUESTS_ABSOLUTE
            && small_reads as f64 / reads as f64 > th::SMALL_REQUESTS_RATIO,
    ) {
        ctx.emit(
            "small-reads",
            Level::High,
            format!(
                "Application issues a high number ({small_reads}) of small read requests (i.e., < 1MB) which represents {:.2}% of all read requests",
                100.0 * small_reads as f64 / reads as f64
            ),
            Some("consider buffering read operations into larger, more contiguous ones"),
            None,
        );
    }

    // 4. Small writes.
    if ctx.check(
        writes > 0
            && small_writes > th::SMALL_REQUESTS_ABSOLUTE
            && small_writes as f64 / writes as f64 > th::SMALL_REQUESTS_RATIO,
    ) {
        ctx.emit(
            "small-writes",
            Level::High,
            format!(
                "Application issues a high number ({small_writes}) of small write requests (i.e., < 1MB) which represents {:.2}% of all write requests",
                100.0 * small_writes as f64 / writes as f64
            ),
            Some("consider buffering write operations into larger, more contiguous ones"),
            None,
        );
    }

    // 5/6. Small requests concentrated on a shared file.
    let mut dominant_shared: Option<(u64, i64, bool)> = None;
    for &write in &[false, true] {
        let mut best: Option<(u64, i64)> = None;
        for f in &shared {
            let recs: Vec<&PosixRecord> = log.posix.iter().filter(|r| r.file_id == *f).collect();
            let s = small_ops(&recs, write);
            if best.is_none() || s > best.unwrap().1 {
                best = Some((*f, s));
            }
        }
        let total_small = if write { small_writes } else { small_reads };
        if let Some((f, s)) = best {
            if ctx.check(
                total_small > th::SMALL_REQUESTS_ABSOLUTE
                    && s as f64 / total_small.max(1) as f64 > th::SMALL_REQUESTS_RATIO,
            ) {
                dominant_shared = Some((f, s, write));
                let path = log.path_for(f).unwrap_or("<unknown>").to_owned();
                let kind = if write { "write" } else { "read" };
                ctx.emit(
                    if write {
                        "small-writes-shared-file"
                    } else {
                        "small-reads-shared-file"
                    },
                    Level::High,
                    format!(
                        "({:.2}%) small {kind} requests are to \"{path}\"",
                        100.0 * s as f64 / total_small.max(1) as f64
                    ),
                    Some(
                        "consider using collective I/O or aggregating requests to the shared file",
                    ),
                    Some(path),
                );
            }
        } else {
            ctx.check(false);
        }
    }
    let _ = dominant_shared;

    // 7. Read/write switches.
    let switches = psum(log, PosixCounter::POSIX_RW_SWITCHES);
    let ops = reads + writes;
    if ctx.check(ops > 0 && switches as f64 / ops as f64 > th::RW_SWITCH_RATIO) {
        ctx.emit(
            "rw-switches",
            Level::Warn,
            format!(
                "Application alternates between read and write operations ({switches} switches over {ops} operations)",
            ),
            Some("separate read and write phases to improve prefetching and caching"),
            None,
        );
    }

    // 8. fsync-heavy.
    let fsyncs = psum(log, PosixCounter::POSIX_FSYNCS);
    if ctx.check(fsyncs > th::FSYNC_ABSOLUTE) {
        ctx.emit(
            "fsync-heavy",
            Level::Warn,
            format!("Application issues {fsyncs} fsync operations, forcing synchronous flushes"),
            Some("reduce explicit synchronization if durability allows"),
            None,
        );
    }
}

fn alignment_triggers(ctx: &mut Ctx<'_>) {
    let log = ctx.log;
    let ops = psum(log, PosixCounter::POSIX_READS) + psum(log, PosixCounter::POSIX_WRITES);
    let file_unaligned = psum(log, PosixCounter::POSIX_FILE_NOT_ALIGNED);
    let mem_unaligned = psum(log, PosixCounter::POSIX_MEM_NOT_ALIGNED);

    // 9. Misaligned file requests.
    if ctx.check(ops > 0 && file_unaligned as f64 / ops as f64 > th::MISALIGNED_REQUESTS_RATIO) {
        ctx.emit(
            "misaligned-file",
            Level::High,
            format!(
                "Application issues a high number ({:.2}%) of misaligned file requests",
                100.0 * file_unaligned as f64 / ops as f64
            ),
            Some("consider aligning requests to the Lustre stripe boundaries"),
            None,
        );
    }

    // 10. Misaligned memory requests.
    if ctx.check(ops > 0 && mem_unaligned as f64 / ops as f64 > th::MISALIGNED_REQUESTS_RATIO) {
        ctx.emit(
            "misaligned-memory",
            Level::Warn,
            format!(
                "Application issues a high number ({:.2}%) of misaligned memory requests",
                100.0 * mem_unaligned as f64 / ops as f64
            ),
            Some("allocate I/O buffers on page boundaries (posix_memalign)"),
            None,
        );
    }
}

fn access_pattern_triggers(ctx: &mut Ctx<'_>) {
    let log = ctx.log;
    let reads = psum(log, PosixCounter::POSIX_READS);
    let writes = psum(log, PosixCounter::POSIX_WRITES);
    let seq_reads = psum(log, PosixCounter::POSIX_SEQ_READS);
    let seq_writes = psum(log, PosixCounter::POSIX_SEQ_WRITES);
    let consec_reads = psum(log, PosixCounter::POSIX_CONSEC_READS);
    let consec_writes = psum(log, PosixCounter::POSIX_CONSEC_WRITES);
    let random_reads = (reads - seq_reads).max(0);
    let random_writes = (writes - seq_writes).max(0);

    // 11. Random reads.
    if ctx.check(
        reads > 0
            && random_reads > th::RANDOM_OPERATIONS_ABSOLUTE
            && random_reads as f64 / reads as f64 > th::RANDOM_OPERATIONS_RATIO,
    ) {
        ctx.emit(
            "random-reads",
            Level::High,
            format!(
                "Application is issuing a high number ({random_reads}) of random read operations ({:.2}%)",
                100.0 * random_reads as f64 / reads as f64
            ),
            Some("consider reordering reads or using collective read operations"),
            None,
        );
    } else if ctx.check(reads > 0 && consec_reads as f64 / reads.max(1) as f64 > 0.5) {
        // 12. Mostly consecutive reads (positive insight).
        ctx.emit(
            "sequential-reads",
            Level::Ok,
            format!(
                "Application mostly uses consecutive/sequential reads ({:.2}% consecutive)",
                100.0 * consec_reads as f64 / reads as f64
            ),
            None,
            None,
        );
    }

    // 13. Random writes.
    if ctx.check(
        writes > 0
            && random_writes > th::RANDOM_OPERATIONS_ABSOLUTE
            && random_writes as f64 / writes as f64 > th::RANDOM_OPERATIONS_RATIO,
    ) {
        ctx.emit(
            "random-writes",
            Level::High,
            format!(
                "Application is issuing a high number ({random_writes}) of random write operations ({:.2}%)",
                100.0 * random_writes as f64 / writes as f64
            ),
            Some("consider reordering writes or using collective write operations"),
            None,
        );
    } else if ctx.check(writes > 0 && consec_writes as f64 / writes.max(1) as f64 > 0.5) {
        // 14. Mostly consecutive writes (positive insight).
        ctx.emit(
            "sequential-writes",
            Level::Ok,
            format!(
                "Application mostly uses consecutive/sequential writes ({:.2}% consecutive)",
                100.0 * consec_writes as f64 / writes as f64
            ),
            None,
            None,
        );
    }
}

fn balance_triggers(ctx: &mut Ctx<'_>) {
    let log = ctx.log;
    // Per-rank byte totals (rank >= 0 only).
    let mut bytes_per_rank: HashMap<i32, i64> = HashMap::new();
    let mut time_per_rank: HashMap<i32, f64> = HashMap::new();
    for r in log.posix.iter().filter(|r| r.rank >= 0) {
        *bytes_per_rank.entry(r.rank).or_insert(0) +=
            r.get(PosixCounter::POSIX_BYTES_READ) + r.get(PosixCounter::POSIX_BYTES_WRITTEN);
        *time_per_rank.entry(r.rank).or_insert(0.0) += r.fget(PosixFCounter::POSIX_F_READ_TIME)
            + r.fget(PosixFCounter::POSIX_F_WRITE_TIME)
            + r.fget(PosixFCounter::POSIX_F_META_TIME);
    }

    // 15. Byte imbalance across ranks (reported against the heaviest file).
    if bytes_per_rank.len() > 1 {
        let max = bytes_per_rank.values().copied().max().unwrap_or(0);
        let mean =
            bytes_per_rank.values().copied().sum::<i64>() as f64 / bytes_per_rank.len() as f64;
        let imbalance = if max > 0 {
            (max as f64 - mean) / max as f64
        } else {
            0.0
        };
        if ctx.check(imbalance > th::IMBALANCE_RATIO) {
            // Attribute to the file with the largest per-rank spread.
            let mut per_file: HashMap<u64, (i64, i64)> = HashMap::new();
            for r in log.posix.iter().filter(|r| r.rank >= 0) {
                let b = r.get(PosixCounter::POSIX_BYTES_READ)
                    + r.get(PosixCounter::POSIX_BYTES_WRITTEN);
                let e = per_file.entry(r.file_id).or_insert((i64::MAX, 0));
                e.0 = e.0.min(b);
                e.1 = e.1.max(b);
            }
            let file = per_file
                .into_iter()
                .max_by_key(|&(_, (lo, hi))| hi - lo)
                .map(|(f, _)| f);
            let path = file
                .and_then(|f| log.path_for(f))
                .unwrap_or("<unknown>")
                .to_owned();
            ctx.emit(
                "load-imbalance",
                Level::High,
                format!(
                    "Load imbalance of {:.2}% detected while accessing \"{path}\"",
                    100.0 * imbalance
                ),
                Some("distribute I/O volume evenly, e.g. avoid funnelling output through one rank"),
                Some(path),
            );
        }
    } else {
        ctx.check(false);
    }

    // 16. Rank 0 dominance.
    let total_bytes: i64 = bytes_per_rank.values().sum();
    let rank0 = bytes_per_rank.get(&0).copied().unwrap_or(0);
    if ctx.check(
        bytes_per_rank.len() > 1 && total_bytes > 0 && rank0 as f64 / total_bytes as f64 > 0.5,
    ) {
        ctx.emit(
            "rank0-dominant",
            Level::Warn,
            format!(
                "Rank 0 performs {:.2}% of all I/O volume",
                100.0 * rank0 as f64 / total_bytes as f64
            ),
            Some("check for fill values or funneled output written by rank 0 only"),
            None,
        );
    }

    // 17. Stragglers in time.
    if time_per_rank.len() > 1 {
        let slowest = time_per_rank.values().copied().fold(0.0f64, f64::max);
        let fastest = time_per_rank
            .values()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let ratio = if slowest > 0.0 {
            (slowest - fastest) / slowest
        } else {
            0.0
        };
        if ctx.check(ratio > th::STRAGGLER_RATIO && slowest > 0.001) {
            ctx.emit(
                "stragglers",
                Level::Warn,
                format!(
                    "Detected stragglers: slowest rank spends {slowest:.3}s in I/O vs fastest {fastest:.3}s ({:.2}% spread)",
                    100.0 * ratio
                ),
                Some("investigate OST contention or uneven data placement"),
                None,
            );
        }
    } else {
        ctx.check(false);
    }
}

fn metadata_triggers(ctx: &mut Ctx<'_>) {
    let log = ctx.log;
    let meta_time = pfsum(log, PosixFCounter::POSIX_F_META_TIME);
    let rw_time = pfsum(log, PosixFCounter::POSIX_F_READ_TIME)
        + pfsum(log, PosixFCounter::POSIX_F_WRITE_TIME);
    let opens = psum(log, PosixCounter::POSIX_OPENS);
    let stats = psum(log, PosixCounter::POSIX_STATS);
    let seeks = psum(log, PosixCounter::POSIX_SEEKS);

    // 18. Metadata time per rank exceeding the absolute threshold.
    let mut meta_per_rank: HashMap<i32, f64> = HashMap::new();
    for r in &log.posix {
        *meta_per_rank.entry(r.rank).or_insert(0.0) += r.fget(PosixFCounter::POSIX_F_META_TIME);
    }
    let worst = meta_per_rank
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal));
    if let Some((rank, &t)) = worst {
        if ctx.check(t > th::METADATA_TIME_RANK_SECONDS) {
            ctx.emit(
                "metadata-time-rank",
                Level::High,
                format!("Rank {rank} spends {t:.1}s in metadata operations"),
                Some("reduce open/close/stat frequency; cache file handles"),
                None,
            );
        }
    } else {
        ctx.check(false);
    }

    // 19. Metadata time ratio.
    let total_time = meta_time + rw_time;
    if ctx.check(total_time > 0.0 && meta_time / total_time > th::METADATA_TIME_RATIO) {
        ctx.emit(
            "metadata-ratio",
            Level::High,
            format!(
                "Application spends {:.2}% of its I/O time in metadata operations ({opens} opens, {stats} stats, {seeks} seeks)",
                100.0 * meta_time / total_time
            ),
            Some("coalesce metadata operations; avoid opening files repeatedly"),
            None,
        );
    }

    // 20. Repeated opens per file.
    let files: HashSet<u64> = log.posix.iter().map(|r| r.file_id).collect();
    let opens_per_file = opens as f64 / files.len().max(1) as f64;
    if ctx.check(!files.is_empty() && opens_per_file > th::OPENS_PER_FILE) {
        ctx.emit(
            "repeated-opens",
            Level::Warn,
            format!(
                "Application re-opens files repeatedly ({opens_per_file:.1} opens per file across {} files)",
                files.len()
            ),
            Some("keep files open across phases instead of reopening"),
            None,
        );
    }

    // 21. Stat storm.
    if ctx.check(stats > 1000) {
        ctx.emit(
            "stat-storm",
            Level::Warn,
            format!("Application issues {stats} stat operations"),
            Some("cache attribute information instead of re-stating files"),
            None,
        );
    }
}

fn mpiio_triggers(ctx: &mut Ctx<'_>) {
    let log = ctx.log;
    if log.mpiio.is_empty() {
        // Evaluate-but-never-fire placeholders keep the trigger count
        // stable across traces.
        for _ in 0..6 {
            ctx.check(false);
        }
        return;
    }
    let coll_reads = msum(log, MpiioCounter::MPIIO_COLL_READS);
    let coll_writes = msum(log, MpiioCounter::MPIIO_COLL_WRITES);
    let indep_reads = msum(log, MpiioCounter::MPIIO_INDEP_READS);
    let indep_writes = msum(log, MpiioCounter::MPIIO_INDEP_WRITES);
    let nb = msum(log, MpiioCounter::MPIIO_NB_READS) + msum(log, MpiioCounter::MPIIO_NB_WRITES);
    let reads = coll_reads + indep_reads;
    let writes = coll_writes + indep_writes;

    // 22. No collective reads.
    if ctx.check(reads > th::COLLECTIVE_OPERATIONS_ABSOLUTE && coll_reads == 0) {
        ctx.emit(
            "mpiio-no-collective-reads",
            Level::High,
            format!(
                "Application uses MPI-IO but does not use collective reads ({indep_reads} independent reads)"
            ),
            Some("use MPI_File_read_all / _at_all to enable collective buffering"),
            None,
        );
    }

    // 23. No collective writes.
    if ctx.check(writes > th::COLLECTIVE_OPERATIONS_ABSOLUTE && coll_writes == 0) {
        ctx.emit(
            "mpiio-no-collective-writes",
            Level::High,
            format!(
                "Application uses MPI-IO but does not use collective writes ({indep_writes} independent writes)"
            ),
            Some("use MPI_File_write_all / _at_all to enable collective buffering"),
            None,
        );
    }

    // 24. Low collective ratio (when some collectives exist).
    let coll = coll_reads + coll_writes;
    let total = reads + writes;
    if ctx.check(
        total > th::COLLECTIVE_OPERATIONS_ABSOLUTE
            && coll > 0
            && (coll as f64 / total as f64) < th::COLLECTIVE_OPERATIONS_RATIO,
    ) {
        ctx.emit(
            "mpiio-low-collective-ratio",
            Level::Warn,
            format!(
                "Only {:.2}% of MPI-IO operations are collective",
                100.0 * coll as f64 / total as f64
            ),
            Some("convert independent operations to collectives where possible"),
            None,
        );
    }

    // 25. No non-blocking operations.
    if ctx.check(total > th::COLLECTIVE_OPERATIONS_ABSOLUTE && nb == 0) {
        ctx.emit(
            "mpiio-no-nonblocking",
            Level::Info,
            "Application does not use non-blocking (asynchronous) MPI-IO operations".to_owned(),
            Some("overlap I/O with computation using MPI_File_i* operations"),
            None,
        );
    }

    // 26. Small MPI-IO accesses.
    use MpiioCounter::*;
    let small: i64 = log
        .mpiio
        .iter()
        .map(|r| {
            r.get(MPIIO_SIZE_WRITE_AGG_0_100)
                + r.get(MPIIO_SIZE_WRITE_AGG_100_1K)
                + r.get(MPIIO_SIZE_WRITE_AGG_1K_10K)
                + r.get(MPIIO_SIZE_WRITE_AGG_10K_100K)
                + r.get(MPIIO_SIZE_WRITE_AGG_100K_1M)
                + r.get(MPIIO_SIZE_READ_AGG_0_100)
                + r.get(MPIIO_SIZE_READ_AGG_100_1K)
                + r.get(MPIIO_SIZE_READ_AGG_1K_10K)
                + r.get(MPIIO_SIZE_READ_AGG_10K_100K)
                + r.get(MPIIO_SIZE_READ_AGG_100K_1M)
        })
        .sum();
    if ctx.check(
        total > 0
            && small > th::SMALL_REQUESTS_ABSOLUTE
            && small as f64 / total as f64 > th::SMALL_REQUESTS_RATIO,
    ) {
        ctx.emit(
            "mpiio-small-accesses",
            Level::Warn,
            format!("Application issues {small} small MPI-IO accesses (< 1MB)"),
            Some("increase per-call transfer sizes or rely on collective buffering"),
            None,
        );
    }

    // 27. Independent opens only.
    let coll_opens = msum(log, MpiioCounter::MPIIO_COLL_OPENS);
    let indep_opens = msum(log, MpiioCounter::MPIIO_INDEP_OPENS);
    if ctx.check(indep_opens > 0 && coll_opens == 0) {
        ctx.emit(
            "mpiio-independent-opens",
            Level::Info,
            format!("Application opens files independently ({indep_opens} opens) rather than collectively"),
            Some("use MPI_File_open on the communicator to enable shared file handles"),
            None,
        );
    }
}

fn lustre_triggers(ctx: &mut Ctx<'_>) {
    let log = ctx.log;
    if log.lustre.is_empty() {
        for _ in 0..3 {
            ctx.check(false);
        }
        return;
    }
    let shared = shared_files(log);

    // 28. Unstriped shared file.
    let narrow = log
        .lustre
        .iter()
        .find(|l| shared.contains(&l.file_id) && l.stripe_width() == 1);
    if let Some(l) = narrow {
        ctx.check(true);
        let path = log.path_for(l.file_id).unwrap_or("<unknown>").to_owned();
        ctx.emit(
            "lustre-unstriped-shared",
            Level::High,
            format!("Shared file \"{path}\" is striped over a single OST"),
            Some("increase the stripe count (lfs setstripe -c) for shared files"),
            Some(path),
        );
    } else {
        ctx.check(false);
    }

    // 29. Stripe width far below rank count for shared files.
    if ctx.check(
        log.job.nprocs >= 8
            && log.lustre.iter().any(|l| {
                shared.contains(&l.file_id) && (l.stripe_width() as u32) * 4 < log.job.nprocs
            }),
    ) {
        ctx.emit(
            "lustre-narrow-stripe",
            Level::Warn,
            format!(
                "Files shared by {} ranks are striped over few OSTs, limiting parallelism",
                log.job.nprocs
            ),
            Some("widen striping so concurrent ranks hit distinct OSTs"),
            None,
        );
    }

    // 30. Requests far smaller than the stripe size.
    let stripe = log
        .lustre
        .first()
        .map_or(1 << 20, |l| l.stripe_size().max(1)) as f64;
    let reads = psum(log, PosixCounter::POSIX_READS);
    let writes = psum(log, PosixCounter::POSIX_WRITES);
    let bytes =
        psum(log, PosixCounter::POSIX_BYTES_READ) + psum(log, PosixCounter::POSIX_BYTES_WRITTEN);
    let ops = reads + writes;
    let mean = if ops > 0 {
        bytes as f64 / ops as f64
    } else {
        0.0
    };
    if ctx.check(ops > 0 && mean > 0.0 && mean * 16.0 < stripe) {
        ctx.emit(
            "lustre-stripe-vs-request",
            Level::Info,
            format!(
                "Mean request size ({mean:.0} B) is far below the stripe size ({stripe:.0} B)",
            ),
            Some("a smaller stripe size may reduce per-request overhead for this pattern"),
            None,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim::{SimConfig, Simulation};

    fn small_write_log(per_rank_ops: u64) -> Log {
        let mut sim = Simulation::new(SimConfig::default().with_ranks(4));
        let f = sim.posix_open_all("/scratch/shared.dat").unwrap();
        for i in 0..per_rank_ops {
            for rank in 0..4u32 {
                let base = u64::from(rank) * (64 << 20);
                sim.posix_write(rank, f, base + i * 2048, 2048).unwrap();
            }
        }
        sim.posix_close_all(f);
        sim.finish()
    }

    #[test]
    fn small_writes_trigger_fires_above_thresholds() {
        let log = small_write_log(300); // 1200 small writes > 1000 absolute
        let report = analyze(&log);
        assert!(report.fired("small-writes"), "{}", report.render_text());
        let msg = &report.insight("small-writes").unwrap().message;
        assert!(msg.contains("1200"), "{msg}");
        assert!(msg.contains("100.00%"), "{msg}");
    }

    #[test]
    fn small_writes_trigger_respects_absolute_threshold() {
        // 10% ratio satisfied but < 1000 ops: Drishti stays silent. This is
        // the brittleness the ION paper criticizes.
        let log = small_write_log(100); // 400 small writes
        let report = analyze(&log);
        assert!(!report.fired("small-writes"));
    }

    #[test]
    fn misaligned_trigger() {
        let mut sim = Simulation::new(SimConfig::default().with_ranks(2));
        let f = sim.posix_open_all("/x").unwrap();
        for i in 0..50u64 {
            for r in 0..2u32 {
                sim.posix_write(r, f, u64::from(r) * (32 << 20) + i * 4096 + 13, 4096)
                    .unwrap();
            }
        }
        let log = sim.finish();
        let report = analyze(&log);
        assert!(report.fired("misaligned-file"), "{}", report.render_text());
        assert!(report
            .insight("misaligned-file")
            .unwrap()
            .message
            .contains("misaligned file requests"));
    }

    #[test]
    fn sequential_positive_insight_when_consecutive() {
        let log = small_write_log(100);
        let report = analyze(&log);
        assert!(report.fired("sequential-writes"));
        assert_eq!(
            report.insight("sequential-writes").unwrap().level,
            Level::Ok
        );
    }

    #[test]
    fn no_mpiio_interface_trigger() {
        let log = small_write_log(10);
        let report = analyze(&log);
        assert!(report.fired("interface-no-mpiio"));
    }

    #[test]
    fn load_imbalance_trigger() {
        let mut sim = Simulation::new(SimConfig::default().with_ranks(4));
        let f = sim.posix_open_all("/data.nc4").unwrap();
        // Rank 0 writes 100x the volume of the others.
        for i in 0..100u64 {
            sim.posix_write(0, f, i * (1 << 20), 1 << 20).unwrap();
        }
        for rank in 1..4u32 {
            sim.posix_write(rank, f, (200 + u64::from(rank)) * (1 << 20), 1 << 20)
                .unwrap();
        }
        let log = sim.finish();
        let report = analyze(&log);
        assert!(report.fired("load-imbalance"), "{}", report.render_text());
        assert!(report.fired("rank0-dominant"));
        let msg = &report.insight("load-imbalance").unwrap().message;
        assert!(msg.contains("data.nc4"), "{msg}");
    }

    #[test]
    fn collective_triggers_on_mpiio_logs() {
        let mut sim = Simulation::new(SimConfig::default().with_ranks(4));
        let f = sim.mpi_file_open("/m").unwrap();
        for i in 0..50u64 {
            for r in 0..4u32 {
                sim.mpi_write_independent(r, f, (i * 4 + u64::from(r)) * 4096, 4096)
                    .unwrap();
            }
        }
        sim.mpi_file_close(f).unwrap();
        let log = sim.finish();
        let report = analyze(&log);
        assert!(
            report.fired("mpiio-no-collective-writes"),
            "{}",
            report.render_text()
        );
        assert!(report.fired("mpiio-no-nonblocking"));
    }

    #[test]
    fn trigger_count_is_stable() {
        let a = analyze(&small_write_log(5));
        let mut sim = Simulation::new(SimConfig::default().with_ranks(2));
        let f = sim.mpi_file_open("/m").unwrap();
        sim.mpi_write_independent(0, f, 0, 100).unwrap();
        sim.mpi_file_close(f).unwrap();
        let b = analyze(&sim.finish());
        assert_eq!(a.triggers_evaluated, b.triggers_evaluated);
        assert!(a.triggers_evaluated >= 25, "{}", a.triggers_evaluated);
    }

    #[test]
    fn empty_log_produces_no_insights() {
        let log = Log::new(darshan::records::JobRecord::new(0, 1, 1));
        let report = analyze(&log);
        assert!(report.insights.is_empty());
    }
}
