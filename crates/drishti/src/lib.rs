//! Drishti — the heuristic trigger-based I/O analyzer ION is compared
//! against.
//!
//! Reimplementation of Drishti (Bez et al., PDSW 2022): a set of ~30
//! heuristic triggers with fixed thresholds that scan a Darshan log and
//! report insights at four levels (`HIGH`, `WARN`, `OK`, `INFO`), each with
//! an actionable recommendation. This is the baseline for Figure 3 of the
//! ION paper, and it exhibits exactly the properties the paper critiques:
//! thresholds are compiled in ([`thresholds`]), messages are templated, and
//! there is no interactive interface.
//!
//! # Example
//!
//! ```
//! use drishti::analyze;
//! # use iosim::{Simulation, SimConfig};
//! # let mut sim = Simulation::new(SimConfig::default().with_ranks(2));
//! # let f = sim.posix_open_all("/f").unwrap();
//! # for r in 0..2 { sim.posix_write(r, f, r as u64 * 100, 100).unwrap(); }
//! # sim.posix_close_all(f);
//! # let log = sim.finish();
//! let report = analyze(&log);
//! println!("{}", report.render_text());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod thresholds;
pub mod triggers;

pub use report::{Insight, Level, Report};
pub use triggers::analyze;
