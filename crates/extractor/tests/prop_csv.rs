//! Property-based tests for the CSV codec and table model.

use extractor::csv::{from_csv, parse_records, to_csv};
use extractor::{Table, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        (-1e15f64..1e15).prop_map(Value::Float),
        // Strings stressing the quoting path. Avoid strings that parse as
        // numbers or are empty, since those legitimately change type on a
        // round trip.
        "[a-zA-Z][a-zA-Z0-9 ,\"\n/._-]{0,30}".prop_map(|s: String| Value::Str(s.into())),
        Just(Value::Null),
    ]
}

fn arb_table() -> impl Strategy<Value = Table> {
    (1usize..6, 0usize..20).prop_flat_map(|(ncols, nrows)| {
        let cols: Vec<String> = (0..ncols).map(|i| format!("col{i}")).collect();
        proptest::collection::vec(proptest::collection::vec(arb_value(), ncols), nrows..=nrows)
            .prop_map(move |rows| {
                let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                let mut t = Table::new("T", &col_refs);
                for row in rows {
                    t.push_row(row);
                }
                t
            })
    })
}

/// Semantic equality after a CSV round trip: numbers compare numerically
/// (an Int may come back as the same Float and vice versa is impossible
/// since ints parse first), strings and nulls exactly.
fn csv_equivalent(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => (x - y).abs() <= (x.abs().max(y.abs())) * 1e-12 + f64::EPSILON,
            _ => false,
        },
    }
}

proptest! {
    #[test]
    fn csv_round_trip_preserves_values(table in arb_table()) {
        let text = to_csv(&table);
        let back = from_csv("T", &text).unwrap();
        prop_assert_eq!(back.len(), table.len());
        prop_assert_eq!(back.columns.len(), table.columns.len());
        for (orig_row, new_row) in table.iter_rows().zip(back.iter_rows()) {
            for (a, b) in orig_row.values().zip(new_row.values()) {
                prop_assert!(
                    csv_equivalent(&a, &b),
                    "value changed across round trip: {:?} -> {:?}",
                    a,
                    b
                );
            }
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "\\PC{0,500}") {
        let _ = parse_records(&input);
        let _ = from_csv("T", &input);
    }

    #[test]
    fn parse_records_field_counts_consistent(
        // Fields are non-empty: a fully empty trailing record is
        // indistinguishable from no record in bare CSV.
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-z]{1,6}", 1..5),
            1..10
        )
    ) {
        // Build unquoted CSV by hand; every row has its own width.
        let text: String = rows
            .iter()
            .map(|r| r.join(","))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = parse_records(&text).unwrap();
        prop_assert_eq!(parsed.len(), rows.len());
        for (orig, got) in rows.iter().zip(&parsed) {
            prop_assert_eq!(orig.len(), got.len());
        }
    }

    #[test]
    fn value_parse_display_is_stable(v in arb_value()) {
        // Rendering and reparsing twice reaches a fixed point.
        let once = Value::parse(&v.to_string());
        let twice = Value::parse(&once.to_string());
        prop_assert!(csv_equivalent(&once, &twice));
    }
}
