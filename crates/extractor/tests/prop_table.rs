//! Property tests for the columnar [`Table`] invariants under hostile
//! inputs: validity bitmaps always track column length, the `Mixed`
//! fallback never loses cells, and degenerate tables (zero-row, all-null)
//! digest stably through the canonical CSV form.

use extractor::csv::{from_csv, to_csv};
use extractor::table::{ColumnData, Table, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// Arbitrary cell values, including the extremes hostile logs produce.
/// Floats stay non-NaN so cells can be compared with `==`.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        Just(Value::Int(i64::MAX)),
        Just(Value::Int(i64::MIN)),
        (-1.0e300f64..1.0e300).prop_map(Value::Float),
        Just(Value::Float(f64::INFINITY)),
        Just(Value::Float(f64::NEG_INFINITY)),
        "[ -~]{0,20}".prop_map(|s| Value::Str(Arc::from(s.as_str()))),
        Just(Value::Str(Arc::from("λ\u{0}🦀"))),
    ]
}

/// The validity bitmap (when present) must be exactly as long as the
/// value vector, whatever push sequence produced the column.
fn assert_bitmap_invariant(c: &ColumnData) {
    match c {
        ColumnData::Int { values, validity } => {
            if let Some(b) = validity {
                assert_eq!(b.len(), values.len());
            }
        }
        ColumnData::Float { values, validity } => {
            if let Some(b) = validity {
                assert_eq!(b.len(), values.len());
            }
        }
        ColumnData::Str { values, validity } => {
            if let Some(b) = validity {
                assert_eq!(b.len(), values.len());
            }
        }
        ColumnData::Dict {
            codes,
            dict,
            validity,
        } => {
            if let Some(b) = validity {
                assert_eq!(b.len(), codes.len());
            }
            for (&code, i) in codes.iter().zip(0..) {
                assert!(
                    c.is_null(i) || (code as usize) < dict.len(),
                    "code {code} out of dictionary range {}",
                    dict.len()
                );
            }
        }
        ColumnData::RleInt { values, ends } => {
            assert_eq!(values.len(), ends.len());
            assert!(ends.windows(2).all(|w| w[0] < w[1]), "ends not increasing");
        }
        ColumnData::RleFloat { values, ends } => {
            assert_eq!(values.len(), ends.len());
            assert!(ends.windows(2).all(|w| w[0] < w[1]), "ends not increasing");
        }
        ColumnData::Mixed(_) => {}
    }
}

proptest! {
    // Any push sequence: bitmap length == column length, and every cell
    // reads back exactly as pushed (promotion to Mixed loses nothing).
    #[test]
    fn pushes_preserve_cells_and_bitmap_length(values in proptest::collection::vec(arb_value(), 0..50)) {
        let col = ColumnData::from_values(values.clone());
        prop_assert_eq!(col.len(), values.len());
        assert_bitmap_invariant(&col);
        let nulls = values.iter().filter(|v| v.is_null()).count();
        prop_assert_eq!(col.null_count(), nulls);
        for (i, expected) in values.iter().enumerate() {
            prop_assert_eq!(&col.value(i), expected, "cell {}", i);
            prop_assert_eq!(col.is_null(i), expected.is_null());
        }
    }

    // A column forced through every representation (ints, then floats,
    // then strings, with nulls sprinkled in) ends Mixed without dropping
    // or reordering a single cell.
    #[test]
    fn mixed_fallback_never_loses_cells(
        ints in proptest::collection::vec(any::<i64>(), 1..10),
        floats in proptest::collection::vec(-1.0e12f64..1.0e12, 1..10),
        strs in proptest::collection::vec("[a-z]{0,6}", 1..10),
        null_every in 2usize..5,
    ) {
        let mut expected = Vec::new();
        for (i, v) in ints.iter().enumerate() {
            expected.push(Value::Int(*v));
            if i % null_every == 0 {
                expected.push(Value::Null);
            }
        }
        for v in &floats {
            expected.push(Value::Float(*v));
        }
        for s in &strs {
            expected.push(Value::Str(Arc::from(s.as_str())));
        }
        let col = ColumnData::from_values(expected.clone());
        prop_assert!(matches!(col, ColumnData::Mixed(_)), "got {:?}", col);
        prop_assert_eq!(col.len(), expected.len());
        let materialized: Vec<Value> = col.iter().collect();
        prop_assert_eq!(materialized, expected);
    }

    // Gathering any subset of rows preserves cells and the bitmap
    // invariant in the gathered column.
    #[test]
    fn gather_preserves_cells(
        values in proptest::collection::vec(arb_value(), 1..40),
        picks in proptest::collection::vec(any::<u32>(), 0..40),
    ) {
        let col = ColumnData::from_values(values.clone());
        #[allow(clippy::cast_possible_truncation)]
        let indices: Vec<u32> = picks.iter().map(|p| p % values.len() as u32).collect();
        let gathered = col.gather(&indices);
        prop_assert_eq!(gathered.len(), indices.len());
        assert_bitmap_invariant(&gathered);
        for (out, &src) in indices.iter().enumerate() {
            prop_assert_eq!(gathered.value(out), col.value(src as usize));
        }
    }

    // Compression is invisible: any column compares equal to its
    // compressed form, reads back cell-for-cell, and decompresses to the
    // original representation's cells.
    #[test]
    fn compression_round_trips(values in proptest::collection::vec(arb_value(), 0..60)) {
        let col = ColumnData::from_values(values.clone());
        let comp = col.clone().compressed();
        prop_assert_eq!(&comp, &col);
        assert_bitmap_invariant(&comp);
        prop_assert_eq!(comp.null_count(), col.null_count());
        for i in 0..values.len() {
            prop_assert_eq!(comp.value(i), col.value(i), "cell {}", i);
            prop_assert_eq!(comp.f64_at(i), col.f64_at(i), "f64 {}", i);
            prop_assert_eq!(comp.is_null(i), col.is_null(i), "null {}", i);
        }
        prop_assert_eq!(comp.clone().decompressed(), col);
    }

    // Appending columns (in any mix of compressed/dense representations)
    // equals building the concatenation by pushes.
    #[test]
    fn append_equals_concatenation(
        a in proptest::collection::vec(arb_value(), 0..40),
        b in proptest::collection::vec(arb_value(), 0..40),
    ) {
        let expect = ColumnData::from_values(a.iter().cloned().chain(b.iter().cloned()));
        for (compress_left, compress_right) in
            [(false, false), (true, false), (false, true), (true, true)]
        {
            let mut l = ColumnData::from_values(a.clone());
            if compress_left {
                l = l.compressed();
            }
            let mut r = ColumnData::from_values(b.clone());
            if compress_right {
                r = r.compressed();
            }
            l.append(r);
            prop_assert_eq!(&l, &expect);
            assert_bitmap_invariant(&l);
        }
    }

    // All-null tables round-trip through CSV to the same canonical bytes
    // regardless of construction path — the digest-stability contract
    // (ion-store digests fold the canonical cell stream).
    #[test]
    fn all_null_tables_digest_stably(rows in 0usize..20, cols in 1usize..5) {
        let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();

        // Path 1: row-wise pushes.
        let mut by_rows = Table::new("t", &name_refs);
        for _ in 0..rows {
            by_rows.push_row(vec![Value::Null; cols]);
        }
        // Path 2: column-wise construction.
        let columns = names
            .iter()
            .map(|n| {
                (
                    n.clone(),
                    Arc::new(ColumnData::from_values(vec![Value::Null; rows])),
                )
            })
            .collect();
        let by_cols = Table::from_columns("t", columns);

        let csv_rows = to_csv(&by_rows);
        let csv_cols = to_csv(&by_cols);
        prop_assert_eq!(&csv_rows, &csv_cols);
        // And the canonical form is a fixpoint: parse → render is stable.
        let reparsed = from_csv("t", &csv_rows).unwrap();
        prop_assert_eq!(to_csv(&reparsed), csv_rows);
    }
}

#[test]
fn zero_row_table_digests_stably() {
    let a = Table::new("t", &["x", "y"]);
    let b = Table::from_columns(
        "t",
        vec![
            ("x".into(), Arc::new(ColumnData::empty())),
            ("y".into(), Arc::new(ColumnData::empty())),
        ],
    );
    assert_eq!(to_csv(&a), to_csv(&b));
    let reparsed = from_csv("t", &to_csv(&a)).unwrap();
    assert!(reparsed.is_empty());
    assert_eq!(to_csv(&reparsed), to_csv(&a));
}

/// Hostile cells must never panic the read paths.
#[test]
fn hostile_cells_never_panic_reads() {
    let mut t = Table::new("t", &["a", "b"]);
    t.push_row(vec![Value::Int(i64::MAX), Value::Float(f64::NAN)]);
    t.push_row(vec![Value::Null, Value::Str(Arc::from("\u{0}\u{ffff}"))]);
    t.push_row(vec![Value::Float(f64::INFINITY), Value::Int(i64::MIN)]);
    for row in t.iter_rows() {
        for v in row.values() {
            let _ = v.as_f64();
            let _ = v.as_i64();
            let _ = v.truthy();
            let _ = v.to_string();
        }
    }
    for col in 0..2 {
        let c = t.column(col).unwrap();
        for i in 0..t.len() {
            let _ = c.f64_at(i);
            let _ = c.is_null(i);
        }
        assert_eq!(c.len(), t.len());
    }
    let csv = to_csv(&t);
    assert!(!csv.is_empty());
}
