//! Minimal RFC-4180 CSV codec.
//!
//! Implemented in-repo to keep the dependency set to the allowed list.
//! Supports quoting (fields containing `,`, `"`, or newlines), escaped
//! quotes (`""`), and tolerates both `\n` and `\r\n` line endings.

use crate::table::{Table, Value};
use std::fmt;

/// Error produced when parsing malformed CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// Line (1-based) where the field started.
        line: usize,
    },
    /// A data row had a different number of fields than the header.
    RaggedRow {
        /// Row number (1-based, excluding header).
        row: usize,
        /// Fields found.
        found: usize,
        /// Fields expected from the header.
        expected: usize,
    },
    /// Input had no header row.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            CsvError::RaggedRow {
                row,
                found,
                expected,
            } => write!(f, "row {row} has {found} fields, header has {expected}"),
            CsvError::Empty => write!(f, "csv input has no header row"),
        }
    }
}

impl std::error::Error for CsvError {}

fn needs_quoting(field: &str) -> bool {
    field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r')
}

fn write_field(out: &mut String, field: &str) {
    if needs_quoting(field) {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Serialize a table to CSV text (header + rows, `\n` line endings).
#[must_use]
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    for (i, c) in table.columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_field(&mut out, &c.name);
    }
    out.push('\n');
    for row in table.iter_rows() {
        for (i, v) in row.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_field(&mut out, &v.to_string());
        }
        out.push('\n');
    }
    out
}

/// Split raw CSV text into records of string fields.
///
/// # Errors
///
/// Returns [`CsvError::UnterminatedQuote`] on a quote that never closes.
pub fn parse_records(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut quote_start_line = 1usize;
    let mut line = 1usize;
    let mut any = false;

    while let Some(ch) = chars.next() {
        any = true;
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(ch);
                }
                _ => field.push(ch),
            }
        } else {
            match ch {
                '"' => {
                    in_quotes = true;
                    quote_start_line = line;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    // Swallow; `\n` (if any) terminates the record.
                }
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(ch),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote {
            line: quote_start_line,
        });
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    if !any {
        return Err(CsvError::Empty);
    }
    Ok(records)
}

/// Parse CSV text into a [`Table`], inferring cell types.
///
/// # Errors
///
/// Returns [`CsvError::Empty`] for empty input, [`CsvError::RaggedRow`]
/// when a row's width differs from the header, or
/// [`CsvError::UnterminatedQuote`] for malformed quoting.
pub fn from_csv(name: &str, input: &str) -> Result<Table, CsvError> {
    let records = parse_records(input)?;
    let mut iter = records.into_iter();
    let header = iter.next().ok_or(CsvError::Empty)?;
    let cols: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(name, &cols);
    for (i, rec) in iter.enumerate() {
        if rec.len() != cols.len() {
            return Err(CsvError::RaggedRow {
                row: i + 1,
                found: rec.len(),
                expected: cols.len(),
            });
        }
        table.push_row(rec.iter().map(|f| Value::parse(f)).collect());
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("T", &["id", "path", "note"]);
        t.push_row(vec![
            Value::Int(1),
            Value::Str("/a/b.dat".into()),
            Value::Str("plain".into()),
        ]);
        t.push_row(vec![
            Value::Int(2),
            Value::Str("has,comma".into()),
            Value::Str("has \"quote\"".into()),
        ]);
        t.push_row(vec![
            Value::Float(2.5),
            Value::Str("multi\nline".into()),
            Value::Null,
        ]);
        t
    }

    #[test]
    fn round_trip_preserves_structure() {
        let t = sample_table();
        let text = to_csv(&t);
        let back = from_csv("T", &text).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.cell(1, "path"), Some(Value::Str("has,comma".into())));
        assert_eq!(
            back.cell(1, "note"),
            Some(Value::Str("has \"quote\"".into()))
        );
        assert_eq!(back.cell(2, "path"), Some(Value::Str("multi\nline".into())));
        assert_eq!(back.cell(2, "id"), Some(Value::Float(2.5)));
        assert_eq!(back.cell(2, "note"), Some(Value::Null));
    }

    #[test]
    fn crlf_line_endings_tolerated() {
        let t = from_csv("T", "a,b\r\n1,2\r\n3,4\r\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(1, "b"), Some(Value::Int(4)));
    }

    #[test]
    fn missing_trailing_newline_tolerated() {
        let t = from_csv("T", "a,b\n1,2").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ragged_row_rejected() {
        let err = from_csv("T", "a,b\n1\n").unwrap_err();
        assert!(matches!(err, CsvError::RaggedRow { row: 1, .. }));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let err = from_csv("T", "a\n\"oops\n").unwrap_err();
        assert!(matches!(err, CsvError::UnterminatedQuote { .. }));
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(from_csv("T", ""), Err(CsvError::Empty));
    }

    #[test]
    fn header_only_is_empty_table() {
        let t = from_csv("T", "a,b\n").unwrap();
        assert!(t.is_empty());
        assert_eq!(t.column_names(), vec!["a", "b"]);
    }

    #[test]
    fn quoted_header_fields() {
        let t = from_csv("T", "\"col,1\",col2\n1,2\n").unwrap();
        assert_eq!(t.column_index("col,1"), Some(0));
    }
}
