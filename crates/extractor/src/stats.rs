//! Descriptive statistics over table columns.
//!
//! Shared by the IQL evaluator's aggregate functions and by tests that
//! assert statistical properties of extracted traces.

use crate::table::Table;
#[cfg(test)]
use crate::table::Value;
use std::collections::BTreeMap;

/// Summary statistics of a numeric column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of non-null numeric values.
    pub count: usize,
    /// Sum of values.
    pub sum: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 when empty).
    pub std: f64,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Maximum (0 when empty).
    pub max: f64,
}

/// Summarize an iterator of numbers.
#[must_use]
pub fn summarize(values: impl IntoIterator<Item = f64>) -> Summary {
    let vals: Vec<f64> = values.into_iter().collect();
    if vals.is_empty() {
        return Summary {
            count: 0,
            sum: 0.0,
            mean: 0.0,
            std: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let count = vals.len();
    let sum: f64 = vals.iter().sum();
    let mean = sum / count as f64;
    let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
    let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
    let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Summary {
        count,
        sum,
        mean,
        std: var.sqrt(),
        min,
        max,
    }
}

/// Summarize a named column of a table (non-numeric cells are skipped).
#[must_use]
pub fn column_summary(table: &Table, column: &str) -> Option<Summary> {
    let values = table.column_values(column)?;
    Some(summarize(values.filter_map(|v| v.as_f64())))
}

/// Percentile (0–100, nearest-rank) of a numeric column.
#[must_use]
pub fn column_percentile(table: &Table, column: &str, pct: f64) -> Option<f64> {
    let mut vals: Vec<f64> = table
        .column_values(column)?
        .filter_map(|v| v.as_f64())
        .collect();
    if vals.is_empty() {
        return None;
    }
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((pct / 100.0) * vals.len() as f64).ceil().max(1.0) as usize;
    Some(vals[rank.min(vals.len()) - 1])
}

/// Sum `value_column` grouped by the string rendering of `key_column`.
///
/// Returns a sorted map so output is deterministic.
#[must_use]
pub fn group_sum(
    table: &Table,
    key_column: &str,
    value_column: &str,
) -> Option<BTreeMap<String, f64>> {
    let ki = table.column_index(key_column)?;
    let vi = table.column_index(value_column)?;
    let keys = table.column(ki)?;
    let vals = table.column(vi)?;
    let mut out = BTreeMap::new();
    for i in 0..table.len() {
        let key = keys.value(i).to_string();
        let v = vals.f64_at(i).unwrap_or(0.0);
        *out.entry(key).or_insert(0.0) += v;
    }
    Some(out)
}

/// Count rows grouped by the string rendering of `key_column`.
#[must_use]
pub fn group_count(table: &Table, key_column: &str) -> Option<BTreeMap<String, usize>> {
    let keys = table.column(table.column_index(key_column)?)?;
    let mut out = BTreeMap::new();
    for i in 0..table.len() {
        *out.entry(keys.value(i).to_string()).or_insert(0) += 1;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        let mut t = Table::new("T", &["rank", "bytes"]);
        for (rank, bytes) in [(0, 100.0), (0, 200.0), (1, 50.0), (2, 50.0)] {
            t.push_row(vec![Value::Int(rank), Value::Float(bytes)]);
        }
        t
    }

    #[test]
    fn summary_of_known_values() {
        let s = summarize([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 10.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - 1.1180339887).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = summarize(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn column_summary_skips_non_numeric() {
        let mut t = Table::new("T", &["x"]);
        t.push_row(vec![Value::Int(1)]);
        t.push_row(vec![Value::Str("oops".into())]);
        t.push_row(vec![Value::Int(3)]);
        let s = column_summary(&t, "x").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 4.0);
        assert!(column_summary(&t, "nope").is_none());
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut t = Table::new("T", &["x"]);
        for i in 1..=100 {
            t.push_row(vec![Value::Int(i)]);
        }
        assert_eq!(column_percentile(&t, "x", 50.0), Some(50.0));
        assert_eq!(column_percentile(&t, "x", 99.0), Some(99.0));
        assert_eq!(column_percentile(&t, "x", 100.0), Some(100.0));
        assert_eq!(column_percentile(&t, "x", 0.0), Some(1.0));
    }

    #[test]
    fn group_sum_and_count() {
        let table = t();
        let sums = group_sum(&table, "rank", "bytes").unwrap();
        assert_eq!(sums["0"], 300.0);
        assert_eq!(sums["1"], 50.0);
        let counts = group_count(&table, "rank").unwrap();
        assert_eq!(counts["0"], 2);
        assert_eq!(counts["2"], 1);
    }
}
