//! Typed, column-oriented table model shared by the CSV codec and IQL.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A single cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (cheaply clonable: tables copy rows constantly during
    /// query evaluation, so strings are shared, not reallocated).
    Str(Arc<str>),
    /// Missing value.
    Null,
}

impl Value {
    /// Numeric view of the value (`Int` and `Float` coerce; `Str`/`Null`
    /// do not).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    /// String view of the value (only for `Str`).
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the value is `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Parse a CSV field into the most specific type: empty → `Null`,
    /// integer, float, then string.
    #[must_use]
    pub fn parse(field: &str) -> Value {
        if field.is_empty() {
            return Value::Null;
        }
        if let Ok(i) = field.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = field.parse::<f64>() {
            return Value::Float(f);
        }
        Value::Str(Arc::from(field))
    }

    /// Truthiness used by IQL predicates: non-zero numbers and non-empty
    /// strings are true.
    #[must_use]
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Null => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => f.write_str(s),
            Value::Null => Ok(()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}

/// A named column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (header row in CSV).
    pub name: String,
}

/// An in-memory table: header plus rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table name (e.g. `POSIX`); becomes the CSV file stem.
    pub name: String,
    /// Columns, in order.
    pub columns: Vec<Column>,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Create an empty table with the given column names.
    ///
    /// # Panics
    ///
    /// Panics when column names are not unique — a table with duplicate
    /// headers is unusable downstream.
    #[must_use]
    pub fn new(name: &str, columns: &[&str]) -> Self {
        let mut seen = std::collections::HashSet::new();
        for c in columns {
            assert!(seen.insert(*c), "duplicate column name {c}");
        }
        Table {
            name: name.to_owned(),
            columns: columns
                .iter()
                .map(|c| Column {
                    name: (*c).to_owned(),
                })
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics when the row width does not match the column count.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {} in table {}",
            row.len(),
            self.columns.len(),
            self.name
        );
        self.rows.push(row);
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by name.
    #[must_use]
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Borrow all rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Cell at `(row, column name)`.
    #[must_use]
    pub fn cell(&self, row: usize, column: &str) -> Option<&Value> {
        let idx = self.column_index(column)?;
        self.rows.get(row).and_then(|r| r.get(idx))
    }

    /// Iterate one column's values.
    pub fn column_values<'a>(&'a self, name: &str) -> Option<impl Iterator<Item = &'a Value>> {
        let idx = self.column_index(name)?;
        Some(self.rows.iter().map(move |r| &r[idx]))
    }

    /// Column names as a `Vec<&str>`.
    #[must_use]
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Keep only rows satisfying the predicate (used by tests and IQL).
    pub fn retain_rows<F: FnMut(&[Value]) -> bool>(&mut self, mut f: F) {
        self.rows.retain(|r| f(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_parse_infers_types() {
        assert_eq!(Value::parse("42"), Value::Int(42));
        assert_eq!(Value::parse("-7"), Value::Int(-7));
        assert_eq!(Value::parse("3.5"), Value::Float(3.5));
        assert_eq!(Value::parse("abc"), Value::Str("abc".into()));
        assert_eq!(Value::parse(""), Value::Null);
        // Leading zeros / whitespace are not integers in Rust's parser,
        // and fall through consistently.
        assert_eq!(Value::parse("1e3"), Value::Float(1000.0));
    }

    #[test]
    fn value_display_round_trips_through_parse() {
        for v in [
            Value::Int(5),
            Value::Float(2.25),
            Value::Str("x,y".into()),
            Value::Null,
        ] {
            let shown = v.to_string();
            match &v {
                Value::Float(_) => assert!(Value::parse(&shown).as_f64().is_some()),
                Value::Null => assert_eq!(Value::parse(&shown), Value::Null),
                other => assert_eq!(&Value::parse(&shown), other),
            }
        }
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(1).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Null.truthy());
        assert!(Value::Str("x".into()).truthy());
        assert!(!Value::Str(Arc::from("")).truthy());
    }

    #[test]
    fn table_basic_accessors() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec![Value::Int(1), Value::Str("x".into())]);
        t.push_row(vec![Value::Int(2), Value::Str("y".into())]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.column_index("b"), Some(1));
        assert_eq!(t.cell(0, "a"), Some(&Value::Int(1)));
        assert_eq!(t.cell(1, "b"), Some(&Value::Str("y".into())));
        assert_eq!(t.cell(5, "a"), None);
        assert_eq!(t.cell(0, "nope"), None);
        let col: Vec<i64> = t
            .column_values("a")
            .unwrap()
            .filter_map(Value::as_i64)
            .collect();
        assert_eq!(col, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec![Value::Int(1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        let _ = Table::new("T", &["a", "a"]);
    }

    #[test]
    fn retain_rows_filters() {
        let mut t = Table::new("T", &["a"]);
        for i in 0..10 {
            t.push_row(vec![Value::Int(i)]);
        }
        t.retain_rows(|r| r[0].as_i64().unwrap() % 2 == 0);
        assert_eq!(t.len(), 5);
    }
}
