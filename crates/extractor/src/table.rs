//! Typed, column-oriented table model shared by the CSV codec and IQL.
//!
//! # Storage contract
//!
//! A [`Table`] stores one [`ColumnData`] per column: a typed vector
//! (`Int`/`Float`/`Str`) plus an optional validity bitmap for nulls, with a
//! [`ColumnData::Mixed`] fallback when a column holds heterogeneous cell
//! types. Columns are `Arc`-shared, so cloning a table — or projecting a
//! subset of its columns into a new table — copies pointers, not data.
//!
//! Row access is provided by a view adapter ([`Table::iter_rows`] /
//! [`RowView`]) that materializes cells on demand; the observable cell
//! values are identical to the old row-major representation, which keeps
//! CSV round-trips and `ion-store` content digests byte-stable.
//!
//! ```
//! use extractor::{Table, Value};
//!
//! let mut t = Table::new("T", &["a", "b"]);
//! t.push_row(vec![Value::Int(1), Value::from("x")]);
//! t.push_row(vec![Value::Null, Value::from("y")]);
//!
//! // Column access: typed, nulls tracked by a validity bitmap.
//! let col = t.column(0).unwrap();
//! assert_eq!(col.value(0), Value::Int(1));
//! assert_eq!(col.value(1), Value::Null);
//! assert_eq!(col.null_count(), 1);
//!
//! // Row access: a view that materializes cells on demand.
//! let first: Vec<Value> = t.iter_rows().next().unwrap().to_vec();
//! assert_eq!(first, vec![Value::Int(1), Value::from("x")]);
//!
//! // Column slices are zero-copy: the Arc is shared, not the data.
//! let shared = t.column_arc(1).unwrap();
//! assert_eq!(shared.value(1), Value::from("y"));
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A single cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (cheaply clonable: tables copy rows constantly during
    /// query evaluation, so strings are shared, not reallocated).
    Str(Arc<str>),
    /// Missing value.
    Null,
}

impl Value {
    /// Numeric view of the value (`Int` and `Float` coerce; `Str`/`Null`
    /// do not).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    /// String view of the value (only for `Str`).
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the value is `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Parse a CSV field into the most specific type: empty → `Null`,
    /// integer, float, then string.
    #[must_use]
    pub fn parse(field: &str) -> Value {
        if field.is_empty() {
            return Value::Null;
        }
        if let Ok(i) = field.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = field.parse::<f64>() {
            return Value::Float(f);
        }
        Value::Str(Arc::from(field))
    }

    /// Truthiness used by IQL predicates: non-zero numbers and non-empty
    /// strings are true.
    #[must_use]
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Null => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => f.write_str(s),
            Value::Null => Ok(()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}

/// A named column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (header row in CSV).
    pub name: String,
}

/// Validity bitmap: one bit per row, `true` = the row holds a real value,
/// `false` = null. Trailing bits of the last word are kept zero so the
/// derived equality is semantic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// A bitmap of `len` bits, all set to `bit`.
    #[must_use]
    pub fn filled(len: usize, bit: bool) -> Self {
        let mut b = Bitmap::default();
        for _ in 0..len {
            b.push(bit);
        }
        b
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Bit at `i` (`false` when out of range).
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set (valid) bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Typed storage for one column.
///
/// `Int`/`Float`/`Str` keep a dense typed vector; rows whose validity bit
/// is unset are null and their slot holds an ignored placeholder. A
/// validity of `None` means every row is valid. `Mixed` is the fallback
/// for columns whose cells do not share one type (e.g. an `Int` column
/// that later receives a `Float` — the distinction is observable because
/// `Int(1)` and `Float(1.0)` render differently).
///
/// `Dict`/`RleInt`/`RleFloat` are compressed encodings produced by
/// [`ColumnData::compressed`]. They answer the same row-level API
/// (`value`, `f64_at`, `push`, `gather`, …) as the dense variants and
/// compare equal to their uncompressed form, so the rest of the pipeline
/// never needs to know which physical representation a column uses.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 64-bit integers.
    Int {
        /// Cell payloads (placeholder `0` where invalid).
        values: Vec<i64>,
        /// `None` = all rows valid.
        validity: Option<Bitmap>,
    },
    /// 64-bit floats.
    Float {
        /// Cell payloads (placeholder `0.0` where invalid).
        values: Vec<f64>,
        /// `None` = all rows valid.
        validity: Option<Bitmap>,
    },
    /// Shared strings.
    Str {
        /// Cell payloads (placeholder `""` where invalid).
        values: Vec<Arc<str>>,
        /// `None` = all rows valid.
        validity: Option<Bitmap>,
    },
    /// Dictionary-encoded strings: row `i` holds `dict[codes[i]]`.
    Dict {
        /// One dictionary index per row (placeholder `0` where invalid).
        codes: Vec<u32>,
        /// Distinct strings in first-occurrence order.
        dict: Vec<Arc<str>>,
        /// `None` = all rows valid.
        validity: Option<Bitmap>,
    },
    /// Run-length-encoded integers. Only null-free columns use this
    /// encoding, so there is no validity bitmap.
    RleInt {
        /// One payload per run.
        values: Vec<i64>,
        /// Cumulative row count at the end of each run; the last entry is
        /// the column length. Strictly increasing.
        ends: Vec<u64>,
    },
    /// Run-length-encoded floats (runs grouped by bit pattern, so NaN
    /// runs compress and `-0.0`/`0.0` stay distinct). Null-free only.
    RleFloat {
        /// One payload per run.
        values: Vec<f64>,
        /// Cumulative row count at the end of each run.
        ends: Vec<u64>,
    },
    /// Heterogeneous fallback: one boxed [`Value`] per row.
    Mixed(Vec<Value>),
}

/// Index of the run containing row `i` (`ends` is cumulative).
fn run_index(ends: &[u64], i: usize) -> usize {
    ends.partition_point(|&e| e <= i as u64)
}

impl Default for ColumnData {
    fn default() -> Self {
        ColumnData::Int {
            values: Vec::new(),
            validity: None,
        }
    }
}

impl ColumnData {
    /// An empty column (untyped until the first non-null push).
    #[must_use]
    pub fn empty() -> Self {
        ColumnData::default()
    }

    /// Build a column from cell values, inferring the densest
    /// representation (same promotion rules as repeated [`push`]).
    ///
    /// [`push`]: ColumnData::push
    #[must_use]
    pub fn from_values<I: IntoIterator<Item = Value>>(values: I) -> Self {
        let mut c = ColumnData::empty();
        for v in values {
            c.push(v);
        }
        c
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int { values, .. } => values.len(),
            ColumnData::Float { values, .. } => values.len(),
            ColumnData::Str { values, .. } => values.len(),
            ColumnData::Dict { codes, .. } => codes.len(),
            ColumnData::RleInt { ends, .. } | ColumnData::RleFloat { ends, .. } => {
                ends.last().map_or(0, |&e| e as usize)
            }
            ColumnData::Mixed(values) => values.len(),
        }
    }

    /// Whether the column has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of null cells.
    #[must_use]
    pub fn null_count(&self) -> usize {
        match self {
            ColumnData::Int { validity, .. }
            | ColumnData::Float { validity, .. }
            | ColumnData::Str { validity, .. }
            | ColumnData::Dict { validity, .. } => {
                validity.as_ref().map_or(0, |b| b.len() - b.count_ones())
            }
            ColumnData::RleInt { .. } | ColumnData::RleFloat { .. } => 0,
            ColumnData::Mixed(values) => values.iter().filter(|v| v.is_null()).count(),
        }
    }

    /// Whether row `i` holds a null.
    #[must_use]
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ColumnData::Int { validity, .. }
            | ColumnData::Float { validity, .. }
            | ColumnData::Str { validity, .. }
            | ColumnData::Dict { validity, .. } => validity.as_ref().is_some_and(|b| !b.get(i)),
            ColumnData::RleInt { .. } | ColumnData::RleFloat { .. } => false,
            ColumnData::Mixed(values) => values[i].is_null(),
        }
    }

    /// Materialize the cell at row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnData::Int { values, validity } => {
                if validity.as_ref().is_some_and(|b| !b.get(i)) {
                    assert!(i < values.len(), "row {i} out of range");
                    Value::Null
                } else {
                    Value::Int(values[i])
                }
            }
            ColumnData::Float { values, validity } => {
                if validity.as_ref().is_some_and(|b| !b.get(i)) {
                    assert!(i < values.len(), "row {i} out of range");
                    Value::Null
                } else {
                    Value::Float(values[i])
                }
            }
            ColumnData::Str { values, validity } => {
                if validity.as_ref().is_some_and(|b| !b.get(i)) {
                    assert!(i < values.len(), "row {i} out of range");
                    Value::Null
                } else {
                    Value::Str(values[i].clone())
                }
            }
            ColumnData::Dict {
                codes,
                dict,
                validity,
            } => {
                if validity.as_ref().is_some_and(|b| !b.get(i)) {
                    assert!(i < codes.len(), "row {i} out of range");
                    Value::Null
                } else {
                    Value::Str(dict[codes[i] as usize].clone())
                }
            }
            ColumnData::RleInt { values, ends } => Value::Int(values[run_index(ends, i)]),
            ColumnData::RleFloat { values, ends } => Value::Float(values[run_index(ends, i)]),
            ColumnData::Mixed(values) => values[i].clone(),
        }
    }

    /// Numeric view of row `i` without materializing a [`Value`].
    #[must_use]
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        match self {
            ColumnData::Int { values, validity } => {
                if validity.as_ref().is_some_and(|b| !b.get(i)) {
                    None
                } else {
                    Some(values[i] as f64)
                }
            }
            ColumnData::Float { values, validity } => {
                if validity.as_ref().is_some_and(|b| !b.get(i)) {
                    None
                } else {
                    Some(values[i])
                }
            }
            ColumnData::Str { .. } | ColumnData::Dict { .. } => None,
            ColumnData::RleInt { values, ends } => Some(values[run_index(ends, i)] as f64),
            ColumnData::RleFloat { values, ends } => Some(values[run_index(ends, i)]),
            ColumnData::Mixed(values) => values[i].as_f64(),
        }
    }

    /// Append a cell, promoting the representation when the type of `v`
    /// does not match (`Mixed` once a column is genuinely heterogeneous).
    pub fn push(&mut self, v: Value) {
        match (&mut *self, v) {
            (ColumnData::Int { values, validity }, Value::Int(i)) => {
                values.push(i);
                if let Some(b) = validity {
                    b.push(true);
                }
            }
            (ColumnData::Float { values, validity }, Value::Float(f)) => {
                values.push(f);
                if let Some(b) = validity {
                    b.push(true);
                }
            }
            (ColumnData::Str { values, validity }, Value::Str(s)) => {
                values.push(s);
                if let Some(b) = validity {
                    b.push(true);
                }
            }
            (ColumnData::Int { values, validity }, Value::Null) => {
                let b = validity.get_or_insert_with(|| Bitmap::filled(values.len(), true));
                values.push(0);
                b.push(false);
            }
            (ColumnData::Float { values, validity }, Value::Null) => {
                let b = validity.get_or_insert_with(|| Bitmap::filled(values.len(), true));
                values.push(0.0);
                b.push(false);
            }
            (ColumnData::Str { values, validity }, Value::Null) => {
                let b = validity.get_or_insert_with(|| Bitmap::filled(values.len(), true));
                values.push(Arc::from(""));
                b.push(false);
            }
            (
                ColumnData::Dict {
                    codes,
                    dict,
                    validity,
                },
                Value::Str(s),
            ) => {
                // Linear dictionary probe: pushes into an already-built
                // Dict are rare (bulk building goes through `compressed`).
                let code = dict.iter().position(|d| **d == *s).unwrap_or_else(|| {
                    dict.push(s);
                    dict.len() - 1
                });
                codes.push(u32::try_from(code).expect("dictionary fits u32"));
                if let Some(b) = validity {
                    b.push(true);
                }
            }
            (
                ColumnData::Dict {
                    codes, validity, ..
                },
                Value::Null,
            ) => {
                let b = validity.get_or_insert_with(|| Bitmap::filled(codes.len(), true));
                codes.push(0);
                b.push(false);
            }
            (ColumnData::RleInt { values, ends }, Value::Int(i)) => {
                if values.last() == Some(&i) {
                    *ends.last_mut().expect("non-empty runs") += 1;
                } else {
                    let len = ends.last().copied().unwrap_or(0);
                    values.push(i);
                    ends.push(len + 1);
                }
            }
            (ColumnData::RleFloat { values, ends }, Value::Float(f)) => {
                if values.last().map(|v| v.to_bits()) == Some(f.to_bits()) {
                    *ends.last_mut().expect("non-empty runs") += 1;
                } else {
                    let len = ends.last().copied().unwrap_or(0);
                    values.push(f);
                    ends.push(len + 1);
                }
            }
            (ColumnData::Mixed(values), v) => values.push(v),
            (slot, v) => {
                let old = std::mem::take(slot);
                *slot = old.promoted(v);
            }
        }
    }

    /// Called on a type clash: if every existing cell is null the column
    /// adopts the new value's type (the placeholders carried no payload);
    /// otherwise it degrades to `Mixed`.
    fn promoted(self, v: Value) -> ColumnData {
        let n = self.len();
        if self.null_count() == n {
            let mut fresh = match &v {
                Value::Int(_) => ColumnData::Int {
                    values: Vec::new(),
                    validity: None,
                },
                Value::Float(_) => ColumnData::Float {
                    values: Vec::new(),
                    validity: None,
                },
                Value::Str(_) => ColumnData::Str {
                    values: Vec::new(),
                    validity: None,
                },
                Value::Null => unreachable!("null never causes a type clash"),
            };
            for _ in 0..n {
                fresh.push(Value::Null);
            }
            fresh.push(v);
            fresh
        } else {
            let mut vals: Vec<Value> = (0..n).map(|i| self.value(i)).collect();
            vals.push(v);
            ColumnData::Mixed(vals)
        }
    }

    /// Iterate the column's cells as materialized values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// New column holding `indices`-selected rows, in order. Keeps the
    /// typed representation (canonicalizing away an all-true validity).
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    #[must_use]
    pub fn gather(&self, indices: &[u32]) -> ColumnData {
        fn gathered_validity(validity: Option<&Bitmap>, indices: &[u32]) -> Option<Bitmap> {
            let b = validity?;
            if indices.iter().all(|&i| b.get(i as usize)) {
                return None;
            }
            let mut out = Bitmap::default();
            for &i in indices {
                out.push(b.get(i as usize));
            }
            Some(out)
        }
        match self {
            ColumnData::Int { values, validity } => ColumnData::Int {
                values: indices.iter().map(|&i| values[i as usize]).collect(),
                validity: gathered_validity(validity.as_ref(), indices),
            },
            ColumnData::Float { values, validity } => ColumnData::Float {
                values: indices.iter().map(|&i| values[i as usize]).collect(),
                validity: gathered_validity(validity.as_ref(), indices),
            },
            ColumnData::Str { values, validity } => ColumnData::Str {
                values: indices
                    .iter()
                    .map(|&i| values[i as usize].clone())
                    .collect(),
                validity: gathered_validity(validity.as_ref(), indices),
            },
            ColumnData::Dict {
                codes,
                dict,
                validity,
            } => ColumnData::Dict {
                codes: indices.iter().map(|&i| codes[i as usize]).collect(),
                dict: dict.clone(),
                validity: gathered_validity(validity.as_ref(), indices),
            },
            ColumnData::RleInt { values, ends } => ColumnData::Int {
                values: indices
                    .iter()
                    .map(|&i| {
                        assert!(
                            (i as u64) < ends.last().copied().unwrap_or(0),
                            "row {i} out of range"
                        );
                        values[run_index(ends, i as usize)]
                    })
                    .collect(),
                validity: None,
            },
            ColumnData::RleFloat { values, ends } => ColumnData::Float {
                values: indices
                    .iter()
                    .map(|&i| {
                        assert!(
                            (i as u64) < ends.last().copied().unwrap_or(0),
                            "row {i} out of range"
                        );
                        values[run_index(ends, i as usize)]
                    })
                    .collect(),
                validity: None,
            },
            ColumnData::Mixed(values) => {
                ColumnData::from_values(indices.iter().map(|&i| values[i as usize].clone()))
            }
        }
    }

    /// Re-encode the column into the most compact representation this
    /// model knows: strings dictionary-encode when the dictionary is at
    /// most half the row count, and null-free `Int`/`Float` columns
    /// run-length-encode when the run count is at most half the row
    /// count. Columns that would not shrink are returned unchanged, and
    /// every cell observable through [`value`](ColumnData::value) stays
    /// identical — compression never changes table equality or digests.
    #[must_use]
    pub fn compressed(self) -> ColumnData {
        match self {
            ColumnData::Str { values, validity } => {
                let mut dict: Vec<Arc<str>> = Vec::new();
                let mut map: std::collections::HashMap<Arc<str>, u32> =
                    std::collections::HashMap::new();
                let codes: Vec<u32> = values
                    .iter()
                    .map(|s| {
                        *map.entry(Arc::clone(s)).or_insert_with(|| {
                            dict.push(Arc::clone(s));
                            u32::try_from(dict.len() - 1).expect("dictionary fits u32")
                        })
                    })
                    .collect();
                if !values.is_empty() && dict.len() * 2 <= values.len() {
                    ColumnData::Dict {
                        codes,
                        dict,
                        validity,
                    }
                } else {
                    ColumnData::Str { values, validity }
                }
            }
            ColumnData::Int {
                values,
                validity: None,
            } => {
                let runs = count_runs(&values, |a, b| a == b);
                if runs * 2 <= values.len() && !values.is_empty() {
                    let (rv, ends) = encode_runs(&values, |a, b| a == b);
                    ColumnData::RleInt { values: rv, ends }
                } else {
                    ColumnData::Int {
                        values,
                        validity: None,
                    }
                }
            }
            ColumnData::Float {
                values,
                validity: None,
            } => {
                let same = |a: &f64, b: &f64| a.to_bits() == b.to_bits();
                let runs = count_runs(&values, same);
                if runs * 2 <= values.len() && !values.is_empty() {
                    let (rv, ends) = encode_runs(&values, same);
                    ColumnData::RleFloat { values: rv, ends }
                } else {
                    ColumnData::Float {
                        values,
                        validity: None,
                    }
                }
            }
            other => other,
        }
    }

    /// Expand a compressed encoding back into its dense typed form.
    /// Identity for columns that are already dense.
    #[must_use]
    pub fn decompressed(self) -> ColumnData {
        match self {
            ColumnData::Dict {
                codes,
                dict,
                validity,
            } => ColumnData::Str {
                values: codes
                    .iter()
                    .map(|&c| Arc::clone(&dict[c as usize]))
                    .collect(),
                validity,
            },
            ColumnData::RleInt { values, ends } => ColumnData::Int {
                values: expand_runs(&values, &ends),
                validity: None,
            },
            ColumnData::RleFloat { values, ends } => ColumnData::Float {
                values: expand_runs(&values, &ends),
                validity: None,
            },
            other => other,
        }
    }

    /// Append every cell of `other` to this column, preserving compressed
    /// representations when both sides share one (RLE runs merge across
    /// the boundary; dictionary codes are remapped). Mismatched
    /// representations fall back to cell-by-cell [`push`], which applies
    /// the usual promotion rules.
    ///
    /// [`push`]: ColumnData::push
    pub fn append(&mut self, other: ColumnData) {
        if self.is_empty() {
            *self = other;
            return;
        }
        match (&mut *self, other) {
            (
                ColumnData::RleInt { values, ends },
                ColumnData::RleInt {
                    values: ov,
                    ends: oe,
                },
            ) => {
                let base = ends.last().copied().unwrap_or(0);
                for (v, e) in ov.into_iter().zip(oe) {
                    if values.last() == Some(&v) {
                        *ends.last_mut().expect("non-empty runs") = base + e;
                    } else {
                        values.push(v);
                        ends.push(base + e);
                    }
                }
            }
            (
                ColumnData::RleFloat { values, ends },
                ColumnData::RleFloat {
                    values: ov,
                    ends: oe,
                },
            ) => {
                let base = ends.last().copied().unwrap_or(0);
                for (v, e) in ov.into_iter().zip(oe) {
                    if values.last().map(|p| p.to_bits()) == Some(v.to_bits()) {
                        *ends.last_mut().expect("non-empty runs") = base + e;
                    } else {
                        values.push(v);
                        ends.push(base + e);
                    }
                }
            }
            (
                ColumnData::Dict {
                    codes,
                    dict,
                    validity,
                },
                ColumnData::Dict {
                    codes: oc,
                    dict: od,
                    validity: ov,
                },
            ) => {
                let map: std::collections::HashMap<Arc<str>, u32> = dict
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (Arc::clone(s), i as u32))
                    .collect();
                let remap: Vec<u32> = od
                    .iter()
                    .map(|s| {
                        map.get(&**s).copied().unwrap_or_else(|| {
                            let code = u32::try_from(dict.len()).expect("dictionary fits u32");
                            dict.push(Arc::clone(s));
                            code
                        })
                    })
                    .collect();
                let before = codes.len();
                codes.extend(oc.iter().map(|&c| remap[c as usize]));
                merge_validity(validity, before, ov.as_ref(), oc.len());
            }
            (
                ColumnData::Int { values, validity },
                ColumnData::Int {
                    values: ov,
                    validity: o_validity,
                },
            ) => {
                let before = values.len();
                values.extend_from_slice(&ov);
                merge_validity(validity, before, o_validity.as_ref(), ov.len());
            }
            (
                ColumnData::Float { values, validity },
                ColumnData::Float {
                    values: ov,
                    validity: o_validity,
                },
            ) => {
                let before = values.len();
                values.extend_from_slice(&ov);
                merge_validity(validity, before, o_validity.as_ref(), ov.len());
            }
            (
                ColumnData::Str { values, validity },
                ColumnData::Str {
                    values: ov,
                    validity: o_validity,
                },
            ) => {
                let before = values.len();
                let added = ov.len();
                values.extend(ov);
                merge_validity(validity, before, o_validity.as_ref(), added);
            }
            (_, other) => {
                for v in other.iter() {
                    self.push(v);
                }
            }
        }
    }
}

/// Number of runs under the given equality.
fn count_runs<T, F: Fn(&T, &T) -> bool>(values: &[T], same: F) -> usize {
    let mut runs = 0;
    let mut prev: Option<&T> = None;
    for v in values {
        if prev.is_none_or(|p| !same(p, v)) {
            runs += 1;
        }
        prev = Some(v);
    }
    runs
}

/// Run-length encode `values` into (run payloads, cumulative ends).
fn encode_runs<T: Copy, F: Fn(&T, &T) -> bool>(values: &[T], same: F) -> (Vec<T>, Vec<u64>) {
    let mut rv = Vec::new();
    let mut ends = Vec::new();
    for (i, v) in values.iter().enumerate() {
        if rv.last().is_none_or(|p| !same(p, v)) {
            rv.push(*v);
            ends.push(i as u64 + 1);
        } else {
            *ends.last_mut().expect("non-empty runs") = i as u64 + 1;
        }
    }
    (rv, ends)
}

/// Expand (run payloads, cumulative ends) back into a dense vector.
fn expand_runs<T: Copy>(values: &[T], ends: &[u64]) -> Vec<T> {
    let total = ends.last().copied().unwrap_or(0) as usize;
    let mut out = Vec::with_capacity(total);
    let mut start = 0u64;
    for (v, &e) in values.iter().zip(ends) {
        out.extend(std::iter::repeat_n(*v, (e - start) as usize));
        start = e;
    }
    out
}

/// Extend `validity` (covering `before` rows) with `added` rows whose
/// validity comes from `other` (`None` = all valid), keeping the
/// `None` ⇔ all-valid canonical form.
fn merge_validity(
    validity: &mut Option<Bitmap>,
    before: usize,
    other: Option<&Bitmap>,
    added: usize,
) {
    match (validity.as_mut(), other) {
        (None, None) => {}
        (Some(b), o) => {
            for i in 0..added {
                b.push(o.is_none_or(|ob| ob.get(i)));
            }
        }
        (None, Some(ob)) => {
            if ob.count_ones() == ob.len() {
                return;
            }
            let mut b = Bitmap::filled(before, true);
            for i in 0..added {
                b.push(ob.get(i));
            }
            *validity = Some(b);
        }
    }
}

impl PartialEq for ColumnData {
    /// Semantic equality: same cell values, regardless of representation
    /// (an all-`Int` `Mixed` column equals the dense `Int` column).
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && (0..self.len()).all(|i| self.value(i) == other.value(i))
    }
}

/// An in-memory table: named, typed columns of equal length.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name (e.g. `POSIX`); becomes the CSV file stem.
    pub name: String,
    /// Columns, in order.
    pub columns: Vec<Column>,
    cols: Vec<Arc<ColumnData>>,
    nrows: usize,
}

impl Table {
    /// Create an empty table with the given column names.
    ///
    /// # Panics
    ///
    /// Panics when column names are not unique — a table with duplicate
    /// headers is unusable downstream.
    #[must_use]
    pub fn new(name: &str, columns: &[&str]) -> Self {
        let mut seen = std::collections::HashSet::new();
        for c in columns {
            assert!(seen.insert(*c), "duplicate column name {c}");
        }
        Table {
            name: name.to_owned(),
            columns: columns
                .iter()
                .map(|c| Column {
                    name: (*c).to_owned(),
                })
                .collect(),
            cols: columns
                .iter()
                .map(|_| Arc::new(ColumnData::empty()))
                .collect(),
            nrows: 0,
        }
    }

    /// Assemble a table directly from column data (zero-copy: the `Arc`s
    /// are stored as-is). This is the constructor the vectorized IQL
    /// executor uses to materialize results.
    ///
    /// # Panics
    ///
    /// Panics on duplicate column names or unequal column lengths.
    #[must_use]
    pub fn from_columns(name: &str, columns: Vec<(String, Arc<ColumnData>)>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for (c, _) in &columns {
            assert!(seen.insert(c.as_str()), "duplicate column name {c}");
        }
        let nrows = columns.first().map_or(0, |(_, d)| d.len());
        for (c, d) in &columns {
            assert_eq!(
                d.len(),
                nrows,
                "column {c} length {} != {} in table {name}",
                d.len(),
                nrows
            );
        }
        let (names, cols): (Vec<_>, Vec<_>) = columns.into_iter().unzip();
        Table {
            name: name.to_owned(),
            columns: names.into_iter().map(|name| Column { name }).collect(),
            cols,
            nrows,
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics when the row width does not match the column count.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {} in table {}",
            row.len(),
            self.columns.len(),
            self.name
        );
        for (col, v) in self.cols.iter_mut().zip(row) {
            Arc::make_mut(col).push(v);
        }
        self.nrows += 1;
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nrows
    }

    /// Whether the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// Index of a column by name.
    #[must_use]
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Typed storage of column `idx`.
    #[must_use]
    pub fn column(&self, idx: usize) -> Option<&ColumnData> {
        self.cols.get(idx).map(Arc::as_ref)
    }

    /// Zero-copy shared handle to column `idx` (pointer clone, no data
    /// copy).
    #[must_use]
    pub fn column_arc(&self, idx: usize) -> Option<Arc<ColumnData>> {
        self.cols.get(idx).cloned()
    }

    /// Materialize the cell at `(row, column idx)`.
    #[must_use]
    pub fn value(&self, row: usize, col: usize) -> Option<Value> {
        if row >= self.nrows {
            return None;
        }
        self.cols.get(col).map(|c| c.value(row))
    }

    /// Materialize the cell at `(row, column name)`.
    #[must_use]
    pub fn cell(&self, row: usize, column: &str) -> Option<Value> {
        let idx = self.column_index(column)?;
        self.value(row, idx)
    }

    /// Iterate rows as on-demand views (no row materialization).
    pub fn iter_rows(&self) -> impl Iterator<Item = RowView<'_>> {
        (0..self.nrows).map(move |row| RowView { table: self, row })
    }

    /// Iterate one column's values.
    pub fn column_values<'a>(&'a self, name: &str) -> Option<impl Iterator<Item = Value> + 'a> {
        let idx = self.column_index(name)?;
        Some(self.cols[idx].iter())
    }

    /// Column names as a `Vec<&str>`.
    #[must_use]
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Keep only rows satisfying the predicate (used by tests and IQL).
    pub fn retain_rows<F: FnMut(RowView<'_>) -> bool>(&mut self, mut f: F) {
        let kept: Vec<u32> = (0..self.nrows)
            .filter(|&row| f(RowView { table: self, row }))
            .map(|row| u32::try_from(row).expect("row index fits u32"))
            .collect();
        self.cols = self
            .cols
            .iter()
            .map(|c| Arc::new(c.gather(&kept)))
            .collect();
        self.nrows = kept.len();
    }
}

impl PartialEq for Table {
    /// Semantic equality: same name, headers, and cell values, regardless
    /// of the physical column representation.
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.columns == other.columns
            && self.nrows == other.nrows
            && self.cols.iter().zip(&other.cols).all(|(a, b)| a == b)
    }
}

/// On-demand view of one table row; cells materialize only when read.
#[derive(Clone, Copy)]
pub struct RowView<'a> {
    table: &'a Table,
    row: usize,
}

impl RowView<'_> {
    /// Cell at column `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range (like slice indexing did).
    #[must_use]
    pub fn get(&self, idx: usize) -> Value {
        self.table.cols[idx].value(self.row)
    }

    /// Number of cells (== column count).
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.cols.len()
    }

    /// Whether the row has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.cols.is_empty()
    }

    /// Row ordinal within the table.
    #[must_use]
    pub fn index(&self) -> usize {
        self.row
    }

    /// Iterate the row's cells.
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Materialize the row as a vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<Value> {
        self.values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_parse_infers_types() {
        assert_eq!(Value::parse("42"), Value::Int(42));
        assert_eq!(Value::parse("-7"), Value::Int(-7));
        assert_eq!(Value::parse("3.5"), Value::Float(3.5));
        assert_eq!(Value::parse("abc"), Value::Str("abc".into()));
        assert_eq!(Value::parse(""), Value::Null);
        // Leading zeros / whitespace are not integers in Rust's parser,
        // and fall through consistently.
        assert_eq!(Value::parse("1e3"), Value::Float(1000.0));
    }

    #[test]
    fn value_display_round_trips_through_parse() {
        for v in [
            Value::Int(5),
            Value::Float(2.25),
            Value::Str("x,y".into()),
            Value::Null,
        ] {
            let shown = v.to_string();
            match &v {
                Value::Float(_) => assert!(Value::parse(&shown).as_f64().is_some()),
                Value::Null => assert_eq!(Value::parse(&shown), Value::Null),
                other => assert_eq!(&Value::parse(&shown), other),
            }
        }
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(1).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Null.truthy());
        assert!(Value::Str("x".into()).truthy());
        assert!(!Value::Str(Arc::from("")).truthy());
    }

    #[test]
    fn table_basic_accessors() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec![Value::Int(1), Value::Str("x".into())]);
        t.push_row(vec![Value::Int(2), Value::Str("y".into())]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.column_index("b"), Some(1));
        assert_eq!(t.cell(0, "a"), Some(Value::Int(1)));
        assert_eq!(t.cell(1, "b"), Some(Value::Str("y".into())));
        assert_eq!(t.cell(5, "a"), None);
        assert_eq!(t.cell(0, "nope"), None);
        let col: Vec<i64> = t
            .column_values("a")
            .unwrap()
            .filter_map(|v| v.as_i64())
            .collect();
        assert_eq!(col, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec![Value::Int(1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        let _ = Table::new("T", &["a", "a"]);
    }

    #[test]
    fn retain_rows_filters() {
        let mut t = Table::new("T", &["a"]);
        for i in 0..10 {
            t.push_row(vec![Value::Int(i)]);
        }
        t.retain_rows(|r| r.get(0).as_i64().unwrap() % 2 == 0);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn typed_columns_promote_and_track_nulls() {
        let mut c = ColumnData::empty();
        c.push(Value::Int(1));
        c.push(Value::Null);
        c.push(Value::Int(3));
        assert!(matches!(c, ColumnData::Int { .. }));
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.f64_at(2), Some(3.0));
        assert_eq!(c.f64_at(1), None);

        // A float lands in an int column -> Mixed (Display differs: 1 vs 1.0).
        c.push(Value::Float(2.5));
        assert!(matches!(c, ColumnData::Mixed(_)));
        assert_eq!(c.value(0), Value::Int(1));
        assert_eq!(c.value(3), Value::Float(2.5));
    }

    #[test]
    fn all_null_column_adopts_first_real_type() {
        let mut c = ColumnData::empty();
        c.push(Value::Null);
        c.push(Value::Null);
        c.push(Value::Str("w".into()));
        assert!(matches!(c, ColumnData::Str { .. }));
        assert_eq!(c.value(0), Value::Null);
        assert_eq!(c.value(2), Value::Str("w".into()));
    }

    #[test]
    fn gather_keeps_values_and_canonicalizes_validity() {
        let c = ColumnData::from_values(vec![
            Value::Int(0),
            Value::Null,
            Value::Int(2),
            Value::Int(3),
        ]);
        let no_nulls = c.gather(&[0, 2, 3]);
        assert!(matches!(no_nulls, ColumnData::Int { validity: None, .. }));
        let with_null = c.gather(&[1, 3]);
        assert_eq!(with_null.value(0), Value::Null);
        assert_eq!(with_null.value(1), Value::Int(3));
        assert_eq!(with_null.null_count(), 1);
    }

    #[test]
    fn semantic_equality_ignores_representation() {
        let dense = ColumnData::from_values(vec![Value::Int(1), Value::Int(2)]);
        let mixed = ColumnData::Mixed(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(dense, mixed);
    }

    #[test]
    fn column_slices_are_shared_not_copied() {
        let mut t = Table::new("T", &["a"]);
        for i in 0..4 {
            t.push_row(vec![Value::Int(i)]);
        }
        let shared = t.column_arc(0).unwrap();
        let t2 = t.clone();
        assert!(Arc::ptr_eq(&shared, &t2.column_arc(0).unwrap()));
        assert_eq!(t, t2);
    }

    #[test]
    fn compressed_round_trips_losslessly() {
        let ints = ColumnData::from_values((0..100).map(|i| Value::Int(i / 10)));
        let rle = ints.clone().compressed();
        assert!(matches!(rle, ColumnData::RleInt { .. }));
        assert_eq!(rle, ints);
        assert_eq!(rle.clone().decompressed(), ints);

        let floats = ColumnData::from_values((0..100).map(|i| Value::Float(f64::from(i / 25))));
        let rle_f = floats.clone().compressed();
        assert!(matches!(rle_f, ColumnData::RleFloat { .. }));
        assert_eq!(rle_f, floats);

        let strs =
            ColumnData::from_values((0..100).map(|i| Value::Str(Arc::from(["a", "b"][i % 2]))));
        let dict = strs.clone().compressed();
        assert!(matches!(dict, ColumnData::Dict { .. }));
        assert_eq!(dict, strs);
        assert_eq!(dict.clone().decompressed(), strs);
    }

    #[test]
    fn incompressible_columns_stay_dense() {
        let ints = ColumnData::from_values((0..100).map(Value::Int));
        assert!(matches!(ints.clone().compressed(), ColumnData::Int { .. }));
        let strs = ColumnData::from_values((0..100).map(|i| Value::from(format!("s{i}"))));
        assert!(matches!(strs.compressed(), ColumnData::Str { .. }));
        // Nullable int columns never RLE-encode.
        let mut nullable = ColumnData::from_values(vec![Value::Int(1); 10]);
        nullable.push(Value::Null);
        assert!(matches!(
            nullable.compressed(),
            ColumnData::Int {
                validity: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn rle_float_runs_group_by_bit_pattern() {
        let mut vals = vec![Value::Float(f64::NAN); 4];
        vals.extend(vec![Value::Float(0.0); 4]);
        vals.extend(vec![Value::Float(-0.0); 4]);
        let c = ColumnData::from_values(vals).compressed();
        let ColumnData::RleFloat { values, ends } = &c else {
            panic!("expected RleFloat, got {c:?}");
        };
        assert_eq!(ends, &[4, 8, 12]);
        assert!(values[0].is_nan());
        assert!(values[1].is_sign_positive());
        assert!(values[2].is_sign_negative());
    }

    #[test]
    fn push_into_compressed_extends_or_promotes() {
        let mut rle = ColumnData::from_values(vec![Value::Int(7); 8]).compressed();
        rle.push(Value::Int(7));
        rle.push(Value::Int(9));
        assert!(matches!(&rle, ColumnData::RleInt { values, .. } if values.len() == 2));
        assert_eq!(rle.len(), 10);
        assert_eq!(rle.value(9), Value::Int(9));
        // A type clash degrades exactly like the dense column would.
        rle.push(Value::Float(1.5));
        assert!(matches!(rle, ColumnData::Mixed(_)));
        assert_eq!(rle.value(0), Value::Int(7));

        let mut dict =
            ColumnData::from_values((0..10).map(|i| Value::Str(Arc::from(["x", "y"][i % 2]))))
                .compressed();
        dict.push(Value::Str("z".into()));
        dict.push(Value::Null);
        assert_eq!(dict.value(10), Value::Str("z".into()));
        assert_eq!(dict.value(11), Value::Null);
        assert_eq!(dict.null_count(), 1);
    }

    #[test]
    fn gather_on_compressed_matches_dense_gather() {
        let dense = ColumnData::from_values((0..50).map(|i| Value::Int(i / 7)));
        let rle = dense.clone().compressed();
        let idx = [0u32, 13, 13, 49, 7];
        assert_eq!(rle.gather(&idx), dense.gather(&idx));

        let strs =
            ColumnData::from_values((0..50).map(|i| Value::Str(Arc::from(["p", "q"][i % 2]))));
        let dict = strs.clone().compressed();
        let g = dict.gather(&idx);
        assert!(matches!(g, ColumnData::Dict { .. }));
        assert_eq!(g, strs.gather(&idx));
    }

    #[test]
    fn append_merges_runs_and_remaps_dicts() {
        let mut a = ColumnData::from_values(vec![Value::Int(1); 6]).compressed();
        let b = ColumnData::from_values([1, 1, 2, 2, 2, 2].map(Value::Int).to_vec()).compressed();
        a.append(b);
        let ColumnData::RleInt { values, ends } = &a else {
            panic!("expected RleInt, got {a:?}");
        };
        assert_eq!(values, &[1, 2]);
        assert_eq!(ends, &[8, 12]);

        let mut d1 =
            ColumnData::from_values((0..8).map(|i| Value::Str(Arc::from(["a", "b"][i % 2]))))
                .compressed();
        let d2 = ColumnData::from_values((0..8).map(|i| Value::Str(Arc::from(["b", "c"][i % 2]))))
            .compressed();
        let expect = ColumnData::from_values(
            (0..8)
                .map(|i| Value::Str(Arc::from(["a", "b"][i % 2])))
                .chain((0..8).map(|i| Value::Str(Arc::from(["b", "c"][i % 2])))),
        );
        d1.append(d2);
        assert!(matches!(&d1, ColumnData::Dict { dict, .. } if dict.len() == 3));
        assert_eq!(d1, expect);
    }

    #[test]
    fn append_mismatched_representations_falls_back_to_push() {
        let mut a = ColumnData::from_values(vec![Value::Int(1), Value::Int(2)]);
        let b = ColumnData::from_values(vec![Value::Int(3); 4]).compressed();
        a.append(b);
        assert_eq!(
            a,
            ColumnData::from_values([1, 2, 3, 3, 3, 3].map(Value::Int).to_vec())
        );
        // Appending into an empty column adopts the incoming representation.
        let mut e = ColumnData::empty();
        e.append(ColumnData::from_values(vec![Value::Int(5); 4]).compressed());
        assert!(matches!(e, ColumnData::RleInt { .. }));
    }

    #[test]
    fn append_merges_validity() {
        let mut a = ColumnData::from_values(vec![Value::Int(1), Value::Null]);
        a.append(ColumnData::from_values(vec![Value::Int(2), Value::Null]));
        assert_eq!(a.null_count(), 2);
        assert_eq!(a.value(3), Value::Null);
        let mut b = ColumnData::from_values(vec![Value::Int(1)]);
        b.append(ColumnData::from_values(vec![Value::Null, Value::Int(4)]));
        assert_eq!(b.null_count(), 1);
        assert_eq!(b.value(1), Value::Null);
        assert_eq!(b.value(2), Value::Int(4));
    }

    #[test]
    fn row_views_materialize_on_demand() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec![Value::Int(1), Value::Null]);
        t.push_row(vec![Value::Int(2), Value::Float(0.5)]);
        let rows: Vec<Vec<Value>> = t.iter_rows().map(|r| r.to_vec()).collect();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Null],
                vec![Value::Int(2), Value::Float(0.5)],
            ]
        );
        assert_eq!(t.iter_rows().nth(1).unwrap().index(), 1);
    }
}
