//! Streaming extraction: Darshan bytes → chunked tables, one region at
//! a time.
//!
//! [`extract_stream`] drives a [`StreamDecoder`] over any [`Read`]
//! source and folds each decoded region straight into per-module
//! [`ChunkedTableBuilder`]s, so the full record vectors of a large log
//! (most importantly DXT traces) never exist in memory at once. The
//! resulting [`TableSet`] is cell-for-cell identical to
//! [`extract_tables`](crate::extract::extract_tables) over the eagerly
//! decoded log — row builders are shared between the two paths — which
//! keeps `ion-store` content digests byte-stable across ingest modes.
//!
//! Alongside the tables the extractor returns a *skeleton* [`Log`]:
//! the job record, the name table, and the first Lustre record. That is
//! exactly the subset `ion`'s `SystemParams::from_log` reads, so callers
//! can derive analysis parameters without a full decode.

use crate::chunked::{ChunkPager, ChunkedTableBuilder};
use crate::extract::{
    counter_row, dxt_row, heatmap_row, lustre_columns, lustre_row, mpiio_columns, posix_columns,
    stdio_columns, TableSet, DXT_COLUMNS, HEATMAP_COLUMNS,
};
use darshan::log::{Log, StreamDecoder};
use darshan::records::JobRecord;
use darshan::DarshanError;
use std::collections::HashMap;
use std::io::{self, Read};
use std::sync::Arc;

/// Default rows per chunk: large enough that per-chunk overheads vanish,
/// small enough that an open chunk of the widest table stays in the
/// tens of megabytes.
pub const DEFAULT_CHUNK_ROWS: usize = 65_536;

/// Failure modes of [`extract_stream`].
#[derive(Debug)]
pub enum StreamExtractError {
    /// The log itself failed to frame or decode.
    Decode(DarshanError),
    /// The chunk pager failed to spill or reload a chunk.
    Spill(io::Error),
}

impl std::fmt::Display for StreamExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamExtractError::Decode(e) => write!(f, "decode failed: {e}"),
            StreamExtractError::Spill(e) => write!(f, "chunk spill failed: {e}"),
        }
    }
}

impl std::error::Error for StreamExtractError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamExtractError::Decode(e) => Some(e),
            StreamExtractError::Spill(e) => Some(e),
        }
    }
}

impl From<DarshanError> for StreamExtractError {
    fn from(e: DarshanError) -> Self {
        StreamExtractError::Decode(e)
    }
}

impl From<io::Error> for StreamExtractError {
    fn from(e: io::Error) -> Self {
        StreamExtractError::Spill(e)
    }
}

/// Everything [`extract_stream`] produces.
#[derive(Debug)]
pub struct StreamExtracted {
    /// Per-module tables, identical to the batch extractor's output.
    pub tables: TableSet,
    /// Job record, name table, and first Lustre record — the subset of
    /// the log that parameter derivation reads. Module record vectors
    /// are intentionally left empty.
    pub skeleton: Log,
    /// Total table rows extracted.
    pub rows: u64,
    /// Bytes consumed from the source.
    pub bytes_read: u64,
}

/// Per-module chunked builders, created lazily so absent modules yield
/// absent tables (module absence is a signal downstream).
#[derive(Default)]
struct Builders {
    posix: Option<ChunkedTableBuilder>,
    mpiio: Option<ChunkedTableBuilder>,
    stdio: Option<ChunkedTableBuilder>,
    lustre: Option<ChunkedTableBuilder>,
    dxt: Option<ChunkedTableBuilder>,
    heatmap: Option<ChunkedTableBuilder>,
}

fn builder<'a>(
    slot: &'a mut Option<ChunkedTableBuilder>,
    name: &str,
    columns: &[&str],
    chunk_rows: usize,
    pager: Option<&Arc<dyn ChunkPager>>,
) -> &'a mut ChunkedTableBuilder {
    slot.get_or_insert_with(|| match pager {
        Some(p) => ChunkedTableBuilder::with_pager(name, columns, chunk_rows, Arc::clone(p)),
        None => ChunkedTableBuilder::new(name, columns, chunk_rows),
    })
}

/// Extract every module of a serialized log into tables without ever
/// materializing the full record vectors.
///
/// `chunk_rows` bounds the rows held uncompressed per table; sealed
/// chunks are compressed in place, and spill through `pager` when one
/// is provided. Decoding is strict, like `LogReader::read`: the first
/// framing, checksum, or record error aborts the extraction.
///
/// # Errors
///
/// [`StreamExtractError::Decode`] for log-level failures (including a
/// missing job region), [`StreamExtractError::Spill`] when the pager
/// fails.
pub fn extract_stream<R: Read>(
    src: R,
    chunk_rows: usize,
    pager: Option<Arc<dyn ChunkPager>>,
) -> Result<StreamExtracted, StreamExtractError> {
    let mut span = ion_obs::span!("extract.stream");
    ion_obs::counter("extract.runs", 1);

    let mut decoder = StreamDecoder::new(src)?;
    let mut skeleton = Log::new(JobRecord::new(0, 0, 0));
    let mut scratch = Log::new(JobRecord::new(0, 0, 0));
    // Insert-if-absent mirrors `Log::path_for`'s first-match semantics.
    let mut name_index: HashMap<u64, usize> = HashMap::new();
    let mut builders = Builders::default();
    let mut saw_job = false;

    while let Some(region) = decoder.next_region()? {
        let is_job = region.decode_into(&mut scratch)?;
        if is_job {
            skeleton.job = scratch.job.clone();
            saw_job = true;
            continue;
        }
        for n in scratch.names.drain(..) {
            name_index.entry(n.id).or_insert(skeleton.names.len());
            skeleton.names.push(n);
        }
        let path_of = |id: u64| -> Option<&str> {
            name_index
                .get(&id)
                .map(|&i| skeleton.names[i].path.as_str())
        };
        for r in scratch.posix.drain(..) {
            let b = builder(
                &mut builders.posix,
                "POSIX",
                &posix_columns(),
                chunk_rows,
                pager.as_ref(),
            );
            b.push_row(counter_row(
                r.file_id,
                r.rank,
                path_of(r.file_id),
                &r.counters,
                &r.fcounters,
            ))?;
        }
        for r in scratch.mpiio.drain(..) {
            let b = builder(
                &mut builders.mpiio,
                "MPIIO",
                &mpiio_columns(),
                chunk_rows,
                pager.as_ref(),
            );
            b.push_row(counter_row(
                r.file_id,
                r.rank,
                path_of(r.file_id),
                &r.counters,
                &r.fcounters,
            ))?;
        }
        for r in scratch.stdio.drain(..) {
            let b = builder(
                &mut builders.stdio,
                "STDIO",
                &stdio_columns(),
                chunk_rows,
                pager.as_ref(),
            );
            b.push_row(counter_row(
                r.file_id,
                r.rank,
                path_of(r.file_id),
                &r.counters,
                &r.fcounters,
            ))?;
        }
        for r in scratch.lustre.drain(..) {
            let b = builder(
                &mut builders.lustre,
                "LUSTRE",
                &lustre_columns(),
                chunk_rows,
                pager.as_ref(),
            );
            b.push_row(lustre_row(&r, path_of(r.file_id)))?;
            // Parameter derivation reads only the first Lustre record.
            if skeleton.lustre.is_empty() {
                skeleton.lustre.push(r);
            }
        }
        for r in scratch.dxt.drain(..) {
            let b = builder(
                &mut builders.dxt,
                "DXT",
                &DXT_COLUMNS,
                chunk_rows,
                pager.as_ref(),
            );
            let path = name_index
                .get(&r.file_id)
                .map(|&i| skeleton.names[i].path.as_str());
            for (seg_no, (kind, s)) in r.iter().enumerate() {
                b.push_row(dxt_row(&r, path, seg_no, kind, s))?;
            }
        }
        for r in scratch.heatmap.drain(..) {
            let b = builder(
                &mut builders.heatmap,
                "HEATMAP",
                &HEATMAP_COLUMNS,
                chunk_rows,
                pager.as_ref(),
            );
            for (bin, (rd, wr)) in r.read_bytes.iter().zip(&r.write_bytes).enumerate() {
                b.push_row(heatmap_row(&r, bin, *rd, *wr))?;
            }
        }
    }
    if !saw_job {
        return Err(DarshanError::UnexpectedEof {
            decoding: "job region",
        }
        .into());
    }

    let mut tables = TableSet::default();
    let mut rows = 0u64;
    for b in [
        builders.posix,
        builders.mpiio,
        builders.stdio,
        builders.lustre,
        builders.heatmap,
        builders.dxt,
    ]
    .into_iter()
    .flatten()
    {
        let t = b.finish()?;
        rows += t.len() as u64;
        tables.insert(t);
    }
    let bytes_read = decoder.bytes_read() as u64;

    span.attr("tables", tables.len());
    span.attr("rows", rows);
    if ion_obs::enabled() {
        for (name, table) in tables.iter() {
            ion_obs::counter(&format!("extract.rows.{name}"), table.len() as u64);
        }
    }
    Ok(StreamExtracted {
        tables,
        skeleton,
        rows,
        bytes_read,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_tables;
    use darshan::accum::PosixAccumulator;
    use darshan::dxt::{DxtLayer, DxtRecord, DxtSegment, OpKind};
    use darshan::heatmap::HeatmapAccumulator;
    use darshan::log::LogWriter;
    use darshan::record_id;
    use darshan::records::{JobRecord, LustreRecord};

    fn sample_log() -> Log {
        let mut w = LogWriter::new(JobRecord::new(7, 42, 4));
        let id = record_id("/scratch/big.h5");
        w.register_name(id, "/scratch/big.h5");
        for rank in 0..4 {
            let mut acc = PosixAccumulator::new(id, rank);
            acc.open(0.0, 0.01);
            acc.write(0, 4096, 0.01, 0.02, true);
            acc.close(0.03, 0.04);
            w.add_posix_record(acc.finish());
            let mut d = DxtRecord::new(id, rank, DxtLayer::Posix, "nid0");
            for i in 0..10u64 {
                d.push(
                    OpKind::Write,
                    DxtSegment {
                        offset: i * 4096,
                        length: 4096,
                        start_time: 0.01 * i as f64,
                        end_time: 0.01 * i as f64 + 0.004,
                    },
                );
            }
            w.add_dxt_record(d);
        }
        w.add_lustre_record(LustreRecord::new(id, 0, 1 << 20, vec![1, 3]));
        let mut hm = HeatmapAccumulator::new(0);
        hm.observe(true, 4096, 0.02, 0.03);
        hm.observe(false, 512, 0.05, 0.06);
        w.add_heatmap_record(hm.finish());
        w.into_log()
    }

    #[test]
    fn stream_extract_matches_batch_extract() {
        let log = sample_log();
        let bytes = LogWriter::from_log(log.clone()).finish().unwrap();
        let batch = extract_tables(&log);
        // Chunk budget smaller than the row count to force sealing.
        let streamed = extract_stream(&bytes[..], 7, None).unwrap();
        assert_eq!(streamed.tables.names(), batch.names());
        for (name, t) in batch.iter() {
            assert_eq!(streamed.tables.get(name).unwrap(), t, "table {name}");
        }
        assert_eq!(streamed.bytes_read as usize, bytes.len());
    }

    #[test]
    fn skeleton_carries_params_inputs() {
        let log = sample_log();
        let bytes = LogWriter::from_log(log.clone()).finish().unwrap();
        let s = extract_stream(&bytes[..], 1024, None).unwrap();
        assert_eq!(s.skeleton.job, log.job);
        assert_eq!(s.skeleton.names, log.names);
        assert_eq!(s.skeleton.lustre.first(), log.lustre.first());
        // Module vectors stay empty (except the single Lustre record).
        assert!(s.skeleton.posix.is_empty());
        assert!(s.skeleton.dxt.is_empty());
    }

    #[test]
    fn missing_job_region_is_strict_error() {
        let err = extract_stream(&b"DSHN\x01\x00\x00\x00\xff"[..], 16, None).unwrap_err();
        assert!(matches!(
            err,
            StreamExtractError::Decode(DarshanError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn truncated_stream_is_strict_error() {
        let bytes = LogWriter::from_log(sample_log()).finish().unwrap();
        let err = extract_stream(&bytes[..bytes.len() - 6], 16, None).unwrap_err();
        assert!(matches!(err, StreamExtractError::Decode(_)));
    }
}
