//! ION Extractor: Darshan logs → per-module CSV tables.
//!
//! The first stage of the ION pipeline (paper §3) unpacks a Darshan log and
//! renders each module into a CSV file named after the module (`POSIX.csv`,
//! `MPIIO.csv`, `STDIO.csv`, `LUSTRE.csv`) plus `DXT.csv` with one row per
//! traced operation. The Analyzer later attaches these tables to prompts
//! and the code interpreter runs generated analysis programs against them.
//!
//! This crate provides:
//!
//! * [`csv`] — a minimal RFC-4180 CSV codec (quoting, escaping, CRLF
//!   tolerance), written in-repo to stay within the allowed dependency set.
//! * [`table`] — a typed, column-oriented table model ([`Table`],
//!   [`Value`]) that both the CSV layer and the IQL interpreter share.
//! * [`schema`] — prose descriptions of every column, used verbatim in ION
//!   prompts ("a description of the columns in the associated CSV files").
//! * [`extract`] — the extractor itself: [`extract::extract_tables`].
//! * [`chunked`] — out-of-core table building: fixed-row chunks,
//!   compressed column encodings, and the spill pager contract.
//! * [`stream`] — streaming extraction ([`stream::extract_stream`])
//!   that folds a lazily decoded log straight into chunked tables.
//! * [`stats`] — descriptive statistics over table columns.
//!
//! # Example
//!
//! ```
//! use extractor::extract::extract_tables;
//! # use darshan::{log::LogWriter, records::JobRecord, accum::PosixAccumulator};
//! # let mut w = LogWriter::new(JobRecord::new(0, 1, 1));
//! # let id = darshan::record_id("/f");
//! # w.register_name(id, "/f");
//! # let mut acc = PosixAccumulator::new(id, 0);
//! # acc.write(0, 10, 0.0, 0.1, true);
//! # w.add_posix_record(acc.finish());
//! # let log = w.into_log();
//! let tables = extract_tables(&log);
//! let posix = tables.get("POSIX").unwrap();
//! assert_eq!(posix.column_index("POSIX_WRITES").is_some(), true);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunked;
pub mod csv;
pub mod extract;
pub mod schema;
pub mod stats;
pub mod stream;
pub mod table;

pub use chunked::{decode_chunk, encode_chunk, ChunkPager, ChunkTicket, ChunkedTableBuilder};
pub use extract::{extract_tables, TableSet};
pub use stream::{extract_stream, StreamExtractError, StreamExtracted, DEFAULT_CHUNK_ROWS};
pub use table::{Bitmap, Column, ColumnData, RowView, Table, Value};
