//! The extractor: Darshan [`Log`] → per-module [`Table`]s.

use crate::table::{Table, Value};
use darshan::counters::{
    LustreCounter, MpiioCounter, MpiioFCounter, PosixCounter, PosixFCounter, StdioCounter,
    StdioFCounter,
};
use darshan::dxt::{DxtRecord, DxtSegment, OpKind};
use darshan::heatmap::HeatmapRecord;
use darshan::log::Log;
use darshan::records::LustreRecord;
use std::collections::HashMap;

/// The set of tables the extractor produces for one log.
#[derive(Debug, Clone, Default)]
pub struct TableSet {
    tables: HashMap<String, Table>,
}

impl TableSet {
    /// Fetch a table by module name (`POSIX`, `MPIIO`, `STDIO`, `LUSTRE`,
    /// `DXT`).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Insert a table under its name.
    pub fn insert(&mut self, table: Table) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Names of tables present (sorted for determinism).
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Number of tables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterate `(name, table)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Table)> {
        let mut v: Vec<(&str, &Table)> = self.tables.iter().map(|(k, t)| (k.as_str(), t)).collect();
        v.sort_by_key(|(k, _)| *k);
        v.into_iter()
    }
}

/// Column names common to every counter table.
const ID_COLUMNS: [&str; 3] = ["file_id", "file_name", "rank"];

/// `HEATMAP` table columns.
pub(crate) const HEATMAP_COLUMNS: [&str; 6] = [
    "rank",
    "bin",
    "bin_start",
    "bin_end",
    "read_bytes",
    "write_bytes",
];

/// `DXT` table columns.
pub(crate) const DXT_COLUMNS: [&str; 10] = [
    "file_id",
    "file_name",
    "rank",
    "module",
    "op",
    "segment",
    "offset",
    "length",
    "start_time",
    "end_time",
];

/// `POSIX` table columns.
pub(crate) fn posix_columns() -> Vec<&'static str> {
    let mut cols: Vec<&str> = ID_COLUMNS.to_vec();
    cols.extend(PosixCounter::ALL.iter().map(|c| c.name()));
    cols.extend(PosixFCounter::ALL.iter().map(|c| c.name()));
    cols
}

/// `MPIIO` table columns.
pub(crate) fn mpiio_columns() -> Vec<&'static str> {
    let mut cols: Vec<&str> = ID_COLUMNS.to_vec();
    cols.extend(MpiioCounter::ALL.iter().map(|c| c.name()));
    cols.extend(MpiioFCounter::ALL.iter().map(|c| c.name()));
    cols
}

/// `STDIO` table columns.
pub(crate) fn stdio_columns() -> Vec<&'static str> {
    let mut cols: Vec<&str> = ID_COLUMNS.to_vec();
    cols.extend(StdioCounter::ALL.iter().map(|c| c.name()));
    cols.extend(StdioFCounter::ALL.iter().map(|c| c.name()));
    cols
}

/// `LUSTRE` table columns.
pub(crate) fn lustre_columns() -> Vec<&'static str> {
    let mut cols: Vec<&str> = ID_COLUMNS.to_vec();
    cols.extend(LustreCounter::ALL.iter().map(|c| c.name()));
    cols.push("LUSTRE_OST_IDS");
    cols
}

fn id_cells(path: Option<&str>, file_id: u64, rank: i32) -> Vec<Value> {
    vec![
        Value::Int(file_id as i64),
        Value::Str(path.unwrap_or("<unknown>").into()),
        Value::Int(i64::from(rank)),
    ]
}

/// One row of a counter table (`POSIX`/`MPIIO`/`STDIO`). Shared between
/// the batch and streaming extractors so both produce identical cells.
pub(crate) fn counter_row(
    file_id: u64,
    rank: i32,
    path: Option<&str>,
    counters: &[i64],
    fcounters: &[f64],
) -> Vec<Value> {
    let mut row = id_cells(path, file_id, rank);
    row.extend(counters.iter().map(|&c| Value::Int(c)));
    row.extend(fcounters.iter().map(|&f| Value::Float(f)));
    row
}

/// One `LUSTRE` table row.
pub(crate) fn lustre_row(r: &LustreRecord, path: Option<&str>) -> Vec<Value> {
    let mut row = id_cells(path, r.file_id, r.rank);
    row.extend(r.counters.iter().map(|&c| Value::Int(c)));
    let ids: Vec<String> = r.ost_ids.iter().map(ToString::to_string).collect();
    row.push(Value::Str(ids.join(" ").into()));
    row
}

/// One `HEATMAP` table row (one per time bin of a record).
pub(crate) fn heatmap_row(r: &HeatmapRecord, bin: usize, rd: u64, wr: u64) -> Vec<Value> {
    vec![
        Value::Int(i64::from(r.rank)),
        Value::Int(bin as i64),
        Value::Float(bin as f64 * r.bin_width),
        Value::Float((bin + 1) as f64 * r.bin_width),
        Value::Int(rd as i64),
        Value::Int(wr as i64),
    ]
}

/// One `DXT` table row (one per traced operation of a record).
pub(crate) fn dxt_row(
    r: &DxtRecord,
    path: Option<&str>,
    seg_no: usize,
    kind: OpKind,
    s: &DxtSegment,
) -> Vec<Value> {
    vec![
        Value::Int(r.file_id as i64),
        Value::Str(path.unwrap_or("<unknown>").into()),
        Value::Int(i64::from(r.rank)),
        Value::Str(r.layer.name().into()),
        Value::Str(kind.name().into()),
        Value::Int(seg_no as i64),
        Value::Int(s.offset as i64),
        Value::Int(s.length as i64),
        Value::Float(s.start_time),
        Value::Float(s.end_time),
    ]
}

/// Extract every module of `log` into CSV-shaped tables.
///
/// Only modules that actually collected records appear in the result —
/// ION's module mapping later uses absence (e.g. no `MPIIO` table) as a
/// signal in itself.
#[must_use]
pub fn extract_tables(log: &Log) -> TableSet {
    let mut span = ion_obs::span!("extract");
    // Counted (not just spanned) so cache layers can prove "zero
    // extractions happened" from a metrics snapshot alone.
    ion_obs::counter("extract.runs", 1);
    let mut set = TableSet::default();

    if !log.posix.is_empty() {
        let mut t = Table::new("POSIX", &posix_columns());
        for r in &log.posix {
            t.push_row(counter_row(
                r.file_id,
                r.rank,
                log.path_for(r.file_id),
                &r.counters,
                &r.fcounters,
            ));
        }
        set.insert(t);
    }

    if !log.mpiio.is_empty() {
        let mut t = Table::new("MPIIO", &mpiio_columns());
        for r in &log.mpiio {
            t.push_row(counter_row(
                r.file_id,
                r.rank,
                log.path_for(r.file_id),
                &r.counters,
                &r.fcounters,
            ));
        }
        set.insert(t);
    }

    if !log.stdio.is_empty() {
        let mut t = Table::new("STDIO", &stdio_columns());
        for r in &log.stdio {
            t.push_row(counter_row(
                r.file_id,
                r.rank,
                log.path_for(r.file_id),
                &r.counters,
                &r.fcounters,
            ));
        }
        set.insert(t);
    }

    if !log.lustre.is_empty() {
        let mut t = Table::new("LUSTRE", &lustre_columns());
        for r in &log.lustre {
            t.push_row(lustre_row(r, log.path_for(r.file_id)));
        }
        set.insert(t);
    }

    if !log.heatmap.is_empty() {
        let mut t = Table::new("HEATMAP", &HEATMAP_COLUMNS);
        for r in &log.heatmap {
            for (bin, (rd, wr)) in r.read_bytes.iter().zip(&r.write_bytes).enumerate() {
                t.push_row(heatmap_row(r, bin, *rd, *wr));
            }
        }
        set.insert(t);
    }

    if !log.dxt.is_empty() {
        let mut t = Table::new("DXT", &DXT_COLUMNS);
        for r in &log.dxt {
            let path = log.path_for(r.file_id);
            for (seg_no, (kind, s)) in r.iter().enumerate() {
                t.push_row(dxt_row(r, path, seg_no, kind, s));
            }
        }
        set.insert(t);
    }

    span.attr("tables", set.len());
    if ion_obs::enabled() {
        for (name, table) in set.iter() {
            ion_obs::counter(&format!("extract.rows.{name}"), table.len() as u64);
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use darshan::accum::PosixAccumulator;
    use darshan::dxt::{DxtLayer, DxtRecord, DxtSegment, OpKind};
    use darshan::log::LogWriter;
    use darshan::record_id;
    use darshan::records::{JobRecord, LustreRecord};

    fn sample_log() -> Log {
        let mut w = LogWriter::new(JobRecord::new(0, 1, 2));
        let id = record_id("/scratch/x.h5");
        w.register_name(id, "/scratch/x.h5");
        for rank in 0..2 {
            let mut acc = PosixAccumulator::new(id, rank);
            acc.open(0.0, 0.01);
            acc.write(0, 1024, 0.01, 0.02, true);
            acc.write(1024, 1024, 0.02, 0.03, true);
            acc.close(0.03, 0.04);
            w.add_posix_record(acc.finish());
        }
        w.add_lustre_record(LustreRecord::new(id, 0, 1 << 20, vec![2, 4]));
        let mut d = DxtRecord::new(id, 0, DxtLayer::Posix, "nid0");
        d.push(
            OpKind::Write,
            DxtSegment {
                offset: 0,
                length: 1024,
                start_time: 0.01,
                end_time: 0.02,
            },
        );
        d.push(
            OpKind::Read,
            DxtSegment {
                offset: 0,
                length: 512,
                start_time: 0.05,
                end_time: 0.06,
            },
        );
        w.add_dxt_record(d);
        w.into_log()
    }

    #[test]
    fn extracts_only_present_modules() {
        let set = extract_tables(&sample_log());
        assert_eq!(set.names(), vec!["DXT", "LUSTRE", "POSIX"]);
        assert!(set.get("MPIIO").is_none());
    }

    #[test]
    fn posix_table_shape_and_values() {
        let set = extract_tables(&sample_log());
        let t = set.get("POSIX").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.columns.len(),
            3 + darshan::counters::PosixCounter::COUNT + darshan::counters::PosixFCounter::COUNT
        );
        assert_eq!(t.cell(0, "POSIX_WRITES"), Some(Value::Int(2)));
        assert_eq!(t.cell(0, "POSIX_BYTES_WRITTEN"), Some(Value::Int(2048)));
        assert_eq!(
            t.cell(0, "file_name"),
            Some(Value::Str("/scratch/x.h5".into()))
        );
    }

    #[test]
    fn dxt_table_one_row_per_operation() {
        let set = extract_tables(&sample_log());
        let t = set.get("DXT").unwrap();
        assert_eq!(t.len(), 2);
        // Writes come first (parser order).
        assert_eq!(t.cell(0, "op"), Some(Value::Str("write".into())));
        assert_eq!(t.cell(1, "op"), Some(Value::Str("read".into())));
        assert_eq!(t.cell(0, "length"), Some(Value::Int(1024)));
        assert_eq!(t.cell(0, "module"), Some(Value::Str("X_POSIX".into())));
    }

    #[test]
    fn lustre_table_carries_ost_list() {
        let set = extract_tables(&sample_log());
        let t = set.get("LUSTRE").unwrap();
        assert_eq!(t.cell(0, "LUSTRE_OST_IDS"), Some(Value::Str("2 4".into())));
        assert_eq!(t.cell(0, "LUSTRE_STRIPE_SIZE"), Some(Value::Int(1 << 20)));
    }

    #[test]
    fn counter_sums_match_log() {
        // CSV totals must equal counter totals in the log — the extractor
        // must not lose or duplicate information.
        let log = sample_log();
        let set = extract_tables(&log);
        let t = set.get("POSIX").unwrap();
        let csv_total: i64 = t
            .column_values("POSIX_BYTES_WRITTEN")
            .unwrap()
            .filter_map(|v| v.as_i64())
            .sum();
        let log_total: i64 = log
            .posix
            .iter()
            .map(|r| r.get(darshan::counters::PosixCounter::POSIX_BYTES_WRITTEN))
            .sum();
        assert_eq!(csv_total, log_total);
    }

    #[test]
    fn empty_log_yields_empty_set() {
        let log = Log::new(JobRecord::new(0, 1, 1));
        let set = extract_tables(&log);
        assert!(set.is_empty());
    }
}
