//! Out-of-core table building: fixed-row-budget chunks, compressed as
//! they seal, optionally spilled to a pager and reassembled at finish.
//!
//! The streaming extractor appends rows to a [`ChunkedTableBuilder`]
//! instead of a [`Table`]. Every `chunk_rows` rows the builder seals the
//! open chunk: each column is re-encoded via
//! [`ColumnData::compressed`] and either appended to the in-memory
//! accumulator or handed to a [`ChunkPager`] (e.g. `ion-store`'s spill
//! directory) as an opaque byte blob. [`ChunkedTableBuilder::finish`]
//! reloads any spilled chunks in order and returns a [`Table`] that
//! compares equal — cell for cell — to the one the batch extractor would
//! have built, so content digests and warm stores are unaffected.

use crate::table::{Bitmap, ColumnData, Table, Value};
use std::io;
use std::sync::Arc;

/// Destination for sealed chunks that should leave memory.
///
/// Implementations must return, from [`load`](ChunkPager::load), exactly
/// the bytes that [`spill`](ChunkPager::spill) produced for the ticket.
pub trait ChunkPager {
    /// Persist one encoded chunk (`seq` is the chunk ordinal within the
    /// table) and return a ticket that can retrieve it later.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    fn spill(&self, table: &str, seq: usize, bytes: &[u8]) -> io::Result<ChunkTicket>;

    /// Fetch the bytes behind a ticket.
    ///
    /// # Errors
    ///
    /// Propagates storage failures (including a missing object).
    fn load(&self, ticket: &ChunkTicket) -> io::Result<Vec<u8>>;
}

/// Handle to one spilled chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkTicket {
    /// Pager-assigned key (e.g. a content address).
    pub key: String,
    /// Rows in the chunk (informational; lets callers size reloads).
    pub rows: usize,
}

/// Builds one table from streamed rows under a fixed chunk-row budget.
#[derive(Clone)]
pub struct ChunkedTableBuilder {
    name: String,
    columns: Vec<String>,
    chunk_rows: usize,
    current: Vec<ColumnData>,
    current_rows: usize,
    acc: Vec<ColumnData>,
    spilled: Vec<ChunkTicket>,
    chunks_sealed: usize,
    total_rows: usize,
    pager: Option<Arc<dyn ChunkPager>>,
}

impl std::fmt::Debug for ChunkedTableBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkedTableBuilder")
            .field("name", &self.name)
            .field("chunk_rows", &self.chunk_rows)
            .field("total_rows", &self.total_rows)
            .field("chunks_sealed", &self.chunks_sealed)
            .field("spilled", &self.spilled.len())
            .finish_non_exhaustive()
    }
}

impl ChunkedTableBuilder {
    /// A builder that accumulates sealed chunks in memory (compressed).
    ///
    /// # Panics
    ///
    /// Panics when `chunk_rows` is zero.
    #[must_use]
    pub fn new(name: &str, columns: &[&str], chunk_rows: usize) -> Self {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        ChunkedTableBuilder {
            name: name.to_owned(),
            columns: columns.iter().map(|&c| c.to_owned()).collect(),
            chunk_rows,
            current: columns.iter().map(|_| ColumnData::empty()).collect(),
            current_rows: 0,
            acc: columns.iter().map(|_| ColumnData::empty()).collect(),
            spilled: Vec::new(),
            chunks_sealed: 0,
            total_rows: 0,
            pager: None,
        }
    }

    /// A builder that spills sealed chunks through `pager` instead of
    /// holding them in memory.
    ///
    /// # Panics
    ///
    /// Panics when `chunk_rows` is zero.
    #[must_use]
    pub fn with_pager(
        name: &str,
        columns: &[&str],
        chunk_rows: usize,
        pager: Arc<dyn ChunkPager>,
    ) -> Self {
        let mut b = ChunkedTableBuilder::new(name, columns, chunk_rows);
        b.pager = Some(pager);
        b
    }

    /// Table name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rows pushed so far.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.total_rows
    }

    /// Append one row; seals the open chunk when it reaches the budget.
    ///
    /// # Errors
    ///
    /// Propagates pager failures when a sealed chunk spills.
    ///
    /// # Panics
    ///
    /// Panics when the row width does not match the column count.
    pub fn push_row(&mut self, row: Vec<Value>) -> io::Result<()> {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {} in table {}",
            row.len(),
            self.columns.len(),
            self.name
        );
        for (col, v) in self.current.iter_mut().zip(row) {
            col.push(v);
        }
        self.current_rows += 1;
        self.total_rows += 1;
        if self.current_rows >= self.chunk_rows {
            self.seal()?;
        }
        Ok(())
    }

    /// Seal the open chunk: compress its columns and either spill them
    /// or fold them into the in-memory accumulator.
    fn seal(&mut self) -> io::Result<()> {
        if self.current_rows == 0 {
            return Ok(());
        }
        let rows = self.current_rows;
        let chunk: Vec<ColumnData> = self
            .current
            .iter_mut()
            .map(|c| std::mem::take(c).compressed())
            .collect();
        self.current_rows = 0;
        if let Some(pager) = &self.pager {
            let bytes = encode_chunk(&chunk);
            let mut ticket = pager.spill(&self.name, self.chunks_sealed, &bytes)?;
            ticket.rows = rows;
            self.spilled.push(ticket);
        } else {
            for (dst, src) in self.acc.iter_mut().zip(chunk) {
                dst.append(src);
            }
        }
        self.chunks_sealed += 1;
        Ok(())
    }

    /// Seal the remainder, reload any spilled chunks in order, and
    /// assemble the final table.
    ///
    /// # Errors
    ///
    /// Propagates pager failures (spill of the final partial chunk,
    /// reload of earlier chunks, or a chunk that fails to decode).
    pub fn finish(mut self) -> io::Result<Table> {
        self.seal()?;
        if let Some(pager) = self.pager.take() {
            for ticket in &self.spilled {
                let bytes = pager.load(ticket)?;
                let chunk = decode_chunk(&bytes)?;
                if chunk.len() != self.acc.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "chunk {} of table {} has {} columns, expected {}",
                            ticket.key,
                            self.name,
                            chunk.len(),
                            self.acc.len()
                        ),
                    ));
                }
                for (dst, src) in self.acc.iter_mut().zip(chunk) {
                    dst.append(src);
                }
            }
        }
        let columns = self
            .columns
            .iter()
            .zip(self.acc)
            .map(|(name, data)| (name.clone(), Arc::new(data)))
            .collect();
        Ok(Table::from_columns(&self.name, columns))
    }
}

const CHUNK_MAGIC: u32 = u32::from_le_bytes(*b"ICK1");

const TAG_INT: u8 = 0;
const TAG_FLOAT: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_DICT: u8 = 3;
const TAG_RLE_INT: u8 = 4;
const TAG_RLE_FLOAT: u8 = 5;
const TAG_MIXED: u8 = 6;

/// Serialize one sealed chunk (its columns, whatever their encodings)
/// into an opaque blob for a [`ChunkPager`]. [`decode_chunk`] restores
/// the exact physical representation, so spilling and reloading a chunk
/// never changes what downstream scans see.
#[must_use]
pub fn encode_chunk(cols: &[ColumnData]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&CHUNK_MAGIC.to_le_bytes());
    out.extend_from_slice(
        &u32::try_from(cols.len())
            .expect("column count fits u32")
            .to_le_bytes(),
    );
    for col in cols {
        encode_column(&mut out, col);
    }
    out
}

fn put_len(out: &mut Vec<u8>, n: usize) {
    out.extend_from_slice(&(n as u64).to_le_bytes());
}

fn encode_validity(out: &mut Vec<u8>, validity: Option<&Bitmap>) {
    match validity {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            put_len(out, b.len());
            let mut byte = 0u8;
            for i in 0..b.len() {
                if b.get(i) {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    out.push(byte);
                    byte = 0;
                }
            }
            if b.len() % 8 != 0 {
                out.push(byte);
            }
        }
    }
}

fn encode_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(
        &u32::try_from(s.len())
            .expect("string fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(s.as_bytes());
}

fn encode_column(out: &mut Vec<u8>, col: &ColumnData) {
    match col {
        ColumnData::Int { values, validity } => {
            out.push(TAG_INT);
            put_len(out, values.len());
            for v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
            encode_validity(out, validity.as_ref());
        }
        ColumnData::Float { values, validity } => {
            out.push(TAG_FLOAT);
            put_len(out, values.len());
            for v in values {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            encode_validity(out, validity.as_ref());
        }
        ColumnData::Str { values, validity } => {
            out.push(TAG_STR);
            put_len(out, values.len());
            for v in values {
                encode_str(out, v);
            }
            encode_validity(out, validity.as_ref());
        }
        ColumnData::Dict {
            codes,
            dict,
            validity,
        } => {
            out.push(TAG_DICT);
            put_len(out, codes.len());
            for c in codes {
                out.extend_from_slice(&c.to_le_bytes());
            }
            put_len(out, dict.len());
            for d in dict {
                encode_str(out, d);
            }
            encode_validity(out, validity.as_ref());
        }
        ColumnData::RleInt { values, ends } => {
            out.push(TAG_RLE_INT);
            put_len(out, values.len());
            for v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for e in ends {
                out.extend_from_slice(&e.to_le_bytes());
            }
        }
        ColumnData::RleFloat { values, ends } => {
            out.push(TAG_RLE_FLOAT);
            put_len(out, values.len());
            for v in values {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            for e in ends {
                out.extend_from_slice(&e.to_le_bytes());
            }
        }
        ColumnData::Mixed(values) => {
            out.push(TAG_MIXED);
            put_len(out, values.len());
            for v in values {
                match v {
                    Value::Int(i) => {
                        out.push(0);
                        out.extend_from_slice(&i.to_le_bytes());
                    }
                    Value::Float(f) => {
                        out.push(1);
                        out.extend_from_slice(&f.to_bits().to_le_bytes());
                    }
                    Value::Str(s) => {
                        out.push(2);
                        encode_str(out, s);
                    }
                    Value::Null => out.push(3),
                }
            }
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| bad(format!("chunk truncated at byte {}", self.pos)))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> io::Result<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn len(&mut self) -> io::Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| bad("length overflows usize"))
    }

    fn str(&mut self) -> io::Result<Arc<str>> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        std::str::from_utf8(raw)
            .map(Arc::from)
            .map_err(|_| bad("invalid utf-8 in chunk string"))
    }
}

fn decode_validity(cur: &mut Cursor<'_>, rows: usize) -> io::Result<Option<Bitmap>> {
    match cur.u8()? {
        0 => Ok(None),
        1 => {
            let len = cur.len()?;
            if len != rows {
                return Err(bad(format!("validity length {len} != row count {rows}")));
            }
            let bytes = cur.take(len.div_ceil(8))?;
            let mut b = Bitmap::default();
            for i in 0..len {
                b.push(bytes[i / 8] >> (i % 8) & 1 == 1);
            }
            Ok(Some(b))
        }
        other => Err(bad(format!("bad validity flag {other}"))),
    }
}

/// Deserialize a chunk produced by [`encode_chunk`].
///
/// # Errors
///
/// Fails with `InvalidData` on truncation, bad magic, unknown column
/// tags, malformed UTF-8, dictionary codes out of range, or
/// non-increasing RLE run ends — a pager returning corrupted bytes can
/// never panic the caller.
pub fn decode_chunk(bytes: &[u8]) -> io::Result<Vec<ColumnData>> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.u32()? != CHUNK_MAGIC {
        return Err(bad("bad chunk magic"));
    }
    let ncols = cur.u32()? as usize;
    let mut cols = Vec::new();
    for _ in 0..ncols {
        cols.push(decode_column(&mut cur)?);
    }
    if cur.pos != bytes.len() {
        return Err(bad(format!(
            "{} trailing bytes after chunk",
            bytes.len() - cur.pos
        )));
    }
    Ok(cols)
}

fn decode_column(cur: &mut Cursor<'_>) -> io::Result<ColumnData> {
    match cur.u8()? {
        TAG_INT => {
            let n = cur.len()?;
            let mut values = Vec::new();
            for _ in 0..n {
                values.push(cur.i64()?);
            }
            let validity = decode_validity(cur, n)?;
            Ok(ColumnData::Int { values, validity })
        }
        TAG_FLOAT => {
            let n = cur.len()?;
            let mut values = Vec::new();
            for _ in 0..n {
                values.push(cur.f64()?);
            }
            let validity = decode_validity(cur, n)?;
            Ok(ColumnData::Float { values, validity })
        }
        TAG_STR => {
            let n = cur.len()?;
            let mut values = Vec::new();
            for _ in 0..n {
                values.push(cur.str()?);
            }
            let validity = decode_validity(cur, n)?;
            Ok(ColumnData::Str { values, validity })
        }
        TAG_DICT => {
            let n = cur.len()?;
            let mut codes = Vec::new();
            for _ in 0..n {
                codes.push(cur.u32()?);
            }
            let dn = cur.len()?;
            let mut dict = Vec::new();
            for _ in 0..dn {
                dict.push(cur.str()?);
            }
            let validity = decode_validity(cur, n)?;
            for (i, &c) in codes.iter().enumerate() {
                let null = validity.as_ref().is_some_and(|b| !b.get(i));
                if !null && c as usize >= dict.len() {
                    return Err(bad(format!("dictionary code {c} out of range {dn}")));
                }
            }
            Ok(ColumnData::Dict {
                codes,
                dict,
                validity,
            })
        }
        TAG_RLE_INT => {
            let n = cur.len()?;
            let mut values = Vec::new();
            for _ in 0..n {
                values.push(cur.i64()?);
            }
            let ends = decode_ends(cur, n)?;
            Ok(ColumnData::RleInt { values, ends })
        }
        TAG_RLE_FLOAT => {
            let n = cur.len()?;
            let mut values = Vec::new();
            for _ in 0..n {
                values.push(cur.f64()?);
            }
            let ends = decode_ends(cur, n)?;
            Ok(ColumnData::RleFloat { values, ends })
        }
        TAG_MIXED => {
            let n = cur.len()?;
            let mut values = Vec::new();
            for _ in 0..n {
                values.push(match cur.u8()? {
                    0 => Value::Int(cur.i64()?),
                    1 => Value::Float(cur.f64()?),
                    2 => Value::Str(cur.str()?),
                    3 => Value::Null,
                    other => return Err(bad(format!("bad value tag {other}"))),
                });
            }
            Ok(ColumnData::Mixed(values))
        }
        other => Err(bad(format!("bad column tag {other}"))),
    }
}

fn decode_ends(cur: &mut Cursor<'_>, runs: usize) -> io::Result<Vec<u64>> {
    let mut ends = Vec::new();
    let mut prev = 0u64;
    for _ in 0..runs {
        let e = cur.u64()?;
        if e <= prev {
            return Err(bad(format!("run end {e} not increasing past {prev}")));
        }
        ends.push(e);
        prev = e;
    }
    Ok(ends)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row(i: usize) -> Vec<Value> {
        vec![
            Value::Int(i as i64 / 10),
            Value::Float(f64::from(u32::try_from(i / 25).unwrap())),
            Value::Str(Arc::from(["alpha", "beta"][i % 2])),
            Value::Int(i as i64),
        ]
    }

    const COLS: [&str; 4] = ["run", "grp", "name", "seq"];

    fn plain_table(rows: usize) -> Table {
        let mut t = Table::new("T", &COLS);
        for i in 0..rows {
            t.push_row(sample_row(i));
        }
        t
    }

    #[test]
    fn chunked_builder_matches_plain_table_at_boundaries() {
        // 0, 1, budget-1, budget, budget+1, several chunks.
        for rows in [0usize, 1, 15, 16, 17, 100] {
            let mut b = ChunkedTableBuilder::new("T", &COLS, 16);
            for i in 0..rows {
                b.push_row(sample_row(i)).unwrap();
            }
            assert_eq!(b.rows(), rows);
            let t = b.finish().unwrap();
            assert_eq!(t, plain_table(rows), "rows={rows}");
        }
    }

    #[test]
    fn sealed_chunks_compress() {
        let mut b = ChunkedTableBuilder::new("T", &COLS, 50);
        for i in 0..100 {
            b.push_row(sample_row(i)).unwrap();
        }
        let t = b.finish().unwrap();
        assert!(matches!(t.column(0), Some(ColumnData::RleInt { .. })));
        assert!(matches!(t.column(1), Some(ColumnData::RleFloat { .. })));
        assert!(matches!(t.column(2), Some(ColumnData::Dict { .. })));
        // The strictly increasing column stays dense.
        assert!(matches!(t.column(3), Some(ColumnData::Int { .. })));
    }

    /// In-memory pager that records traffic.
    #[derive(Default)]
    struct MemPager {
        blobs: std::sync::Mutex<std::collections::HashMap<String, Vec<u8>>>,
    }

    impl ChunkPager for MemPager {
        fn spill(&self, table: &str, seq: usize, bytes: &[u8]) -> io::Result<ChunkTicket> {
            let key = format!("{table}.{seq}");
            self.blobs
                .lock()
                .unwrap()
                .insert(key.clone(), bytes.to_vec());
            Ok(ChunkTicket { key, rows: 0 })
        }

        fn load(&self, ticket: &ChunkTicket) -> io::Result<Vec<u8>> {
            self.blobs
                .lock()
                .unwrap()
                .get(&ticket.key)
                .cloned()
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, ticket.key.clone()))
        }
    }

    #[test]
    fn spilled_chunks_reload_in_order() {
        let pager = Arc::new(MemPager::default());
        let mut b = ChunkedTableBuilder::with_pager("T", &COLS, 16, pager.clone());
        for i in 0..100 {
            b.push_row(sample_row(i)).unwrap();
        }
        // 6 full chunks of 16 plus the final partial chunk of 4.
        let t = b.finish().unwrap();
        assert_eq!(pager.blobs.lock().unwrap().len(), 7);
        assert_eq!(t, plain_table(100));
    }

    #[test]
    fn every_encoding_round_trips_through_chunk_codec() {
        let cols = vec![
            ColumnData::from_values(vec![Value::Int(1), Value::Null, Value::Int(3)]),
            ColumnData::from_values(vec![Value::Float(0.5), Value::Null, Value::Float(-0.0)]),
            ColumnData::from_values(vec![
                Value::Str("a".into()),
                Value::Null,
                Value::Str("".into()),
            ]),
            ColumnData::from_values((0..20).map(|i| Value::Str(Arc::from(["x", "y"][i % 2]))))
                .compressed(),
            ColumnData::from_values(vec![Value::Int(9); 12]).compressed(),
            ColumnData::from_values(vec![Value::Float(2.5); 12]).compressed(),
            ColumnData::Mixed(vec![
                Value::Int(1),
                Value::Float(f64::NAN),
                Value::Str("s".into()),
                Value::Null,
            ]),
        ];
        let bytes = encode_chunk(&cols);
        let back = decode_chunk(&bytes).unwrap();
        assert_eq!(back.len(), cols.len());
        for (a, b) in cols.iter().zip(&back) {
            // Physical representation survives (not just semantic equality).
            assert_eq!(
                std::mem::discriminant(a),
                std::mem::discriminant(b),
                "{a:?} vs {b:?}"
            );
            assert_eq!(a.len(), b.len());
            for i in 0..a.len() {
                match (a.value(i), b.value(i)) {
                    (Value::Float(x), Value::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                    (x, y) => assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn corrupt_chunks_error_without_panicking() {
        let cols = vec![ColumnData::from_values(vec![Value::Int(5); 8]).compressed()];
        let good = encode_chunk(&cols);
        assert!(decode_chunk(&good[..good.len() - 1]).is_err());
        assert!(decode_chunk(&[]).is_err());
        assert!(decode_chunk(b"nonsense bytes here").is_err());
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xff;
            // Any single-byte corruption either decodes to *something*
            // or errors — it must never panic.
            let _ = decode_chunk(&bad);
        }
    }
}
