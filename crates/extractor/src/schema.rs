//! Column documentation used verbatim in ION prompts.
//!
//! Each ION prompt includes "a description of the columns in the associated
//! CSV files" (paper §3). This module is that knowledge: prose for the
//! identification columns and the counters the issue contexts consult, and
//! derived descriptions for regular counter families (histogram bins,
//! access/stride slots).

use crate::table::Table;
use std::fmt::Write as _;

/// Human description of one column, or `None` if the column is unknown.
#[must_use]
pub fn column_description(column: &str) -> Option<String> {
    let fixed = match column {
        "file_id" => "64-bit Darshan record id of the file",
        "file_name" => "path of the file as seen by the application",
        "rank" => "MPI rank the row belongs to; -1 denotes a record shared by all ranks",
        "module" => "interface layer the operation was captured at (X_POSIX or X_MPIIO)",
        "op" => "operation direction: read or write",
        "segment" => "per-record operation sequence number",
        "offset" => "byte offset of the access within the file",
        "bin" => "temporal bin index within the job's runtime",
        "bin_start" => "bin start time, seconds relative to job start",
        "bin_end" => "bin end time, seconds relative to job start",
        "read_bytes" => "bytes read during this bin by this rank",
        "write_bytes" => "bytes written during this bin by this rank",
        "length" => "transfer size of the access in bytes",
        "start_time" => "operation start time in seconds relative to job start",
        "end_time" => "operation end time in seconds relative to job start",
        "POSIX_OPENS" => "number of POSIX open calls",
        "POSIX_FILENOS" => "number of fileno calls",
        "POSIX_DUPS" => "number of dup calls",
        "POSIX_MMAPS" => "number of mmap calls",
        "POSIX_FDSYNCS" => "number of fdatasync calls",
        "POSIX_RENAME_SOURCES" => "times this file was the source of a rename",
        "POSIX_RENAME_TARGETS" => "times this file was the target of a rename",
        "POSIX_MODE" => "mode bits the file was created with",
        "POSIX_READS" => "number of POSIX read calls",
        "POSIX_WRITES" => "number of POSIX write calls",
        "POSIX_SEEKS" => "number of POSIX seek calls",
        "POSIX_STATS" => "number of POSIX stat-family calls",
        "POSIX_FSYNCS" => "number of fsync calls",
        "POSIX_BYTES_READ" => "total bytes read through POSIX",
        "POSIX_BYTES_WRITTEN" => "total bytes written through POSIX",
        "POSIX_MAX_BYTE_READ" => "highest byte offset read",
        "POSIX_MAX_BYTE_WRITTEN" => "highest byte offset written",
        "POSIX_CONSEC_READS" => {
            "reads starting exactly where the previous read ended (immediately adjacent)"
        }
        "POSIX_CONSEC_WRITES" => {
            "writes starting exactly where the previous write ended (immediately adjacent)"
        }
        "POSIX_SEQ_READS" => "reads at an offset at or past where the previous read ended",
        "POSIX_SEQ_WRITES" => "writes at an offset at or past where the previous write ended",
        "POSIX_RW_SWITCHES" => "times the access pattern alternated between read and write",
        "POSIX_MEM_NOT_ALIGNED" => "accesses from client buffers not meeting memory alignment",
        "POSIX_MEM_ALIGNMENT" => "memory alignment requirement in bytes",
        "POSIX_FILE_NOT_ALIGNED" => {
            "accesses whose file offset was not aligned to the file alignment"
        }
        "POSIX_FILE_ALIGNMENT" => {
            "file alignment in bytes (the Lustre stripe size on Lustre systems)"
        }
        "POSIX_FASTEST_RANK" => "rank that spent the least I/O time on this shared file",
        "POSIX_SLOWEST_RANK" => "rank that spent the most I/O time on this shared file",
        "POSIX_FASTEST_RANK_BYTES" => "bytes moved by the fastest rank",
        "POSIX_SLOWEST_RANK_BYTES" => "bytes moved by the slowest rank",
        "POSIX_F_READ_TIME" => "cumulative seconds spent in reads",
        "POSIX_F_WRITE_TIME" => "cumulative seconds spent in writes",
        "POSIX_F_META_TIME" => {
            "cumulative seconds spent in metadata operations (open/close/seek/stat/sync)"
        }
        "POSIX_F_MAX_READ_TIME" => "duration of the single slowest read",
        "POSIX_F_MAX_WRITE_TIME" => "duration of the single slowest write",
        "POSIX_F_VARIANCE_RANK_TIME" => "variance of total I/O time across ranks (shared records)",
        "POSIX_F_VARIANCE_RANK_BYTES" => "variance of bytes moved across ranks (shared records)",
        "MPIIO_INDEP_OPENS" => "independent MPI-IO opens",
        "MPIIO_COLL_OPENS" => "collective MPI-IO opens",
        "MPIIO_INDEP_READS" => "independent MPI-IO reads",
        "MPIIO_INDEP_WRITES" => "independent MPI-IO writes",
        "MPIIO_COLL_READS" => "collective MPI-IO reads",
        "MPIIO_COLL_WRITES" => "collective MPI-IO writes",
        "MPIIO_NB_READS" => "non-blocking MPI-IO reads",
        "MPIIO_NB_WRITES" => "non-blocking MPI-IO writes",
        "MPIIO_SPLIT_READS" => "split-collective MPI-IO reads",
        "MPIIO_SPLIT_WRITES" => "split-collective MPI-IO writes",
        "MPIIO_SYNCS" => "MPI_File_sync calls",
        "MPIIO_MODE" => "access mode flags the file was opened with",
        "MPIIO_RW_SWITCHES" => "times the access pattern alternated between read and write",
        "MPIIO_HINTS" => "MPI-IO hints applied at open",
        "MPIIO_VIEWS" => "MPI_File_set_view calls",
        "MPIIO_BYTES_READ" => "total bytes read through MPI-IO",
        "MPIIO_BYTES_WRITTEN" => "total bytes written through MPI-IO",
        "STDIO_OPENS" => "stdio fopen calls",
        "STDIO_FDOPENS" => "stdio fdopen calls",
        "STDIO_SEEKS" => "stdio fseek calls",
        "STDIO_FLUSHES" => "stdio fflush calls",
        "STDIO_MAX_BYTE_READ" => "highest byte offset read through stdio",
        "STDIO_MAX_BYTE_WRITTEN" => "highest byte offset written through stdio",
        "STDIO_READS" => "stdio fread calls",
        "STDIO_WRITES" => "stdio fwrite calls",
        "STDIO_BYTES_READ" => "total bytes read through stdio",
        "STDIO_BYTES_WRITTEN" => "total bytes written through stdio",
        "LUSTRE_OSTS" => "number of object storage targets holding file data",
        "LUSTRE_MDTS" => "number of metadata targets",
        "LUSTRE_STRIPE_OFFSET" => "index of the first OST in the stripe pattern",
        "LUSTRE_STRIPE_SIZE" => "stripe size in bytes",
        "LUSTRE_STRIPE_WIDTH" => "number of OSTs the file is striped across",
        "LUSTRE_OST_IDS" => "space-separated list of OST indices the file is striped over",
        _ => "",
    };
    if !fixed.is_empty() {
        return Some(fixed.to_owned());
    }
    derived_description(column)
}

fn derived_description(column: &str) -> Option<String> {
    // Size histogram bins: {POSIX|MPIIO}_SIZE_{READ|WRITE}[_AGG]_<LO>_<HI>.
    if let Some(rest) = column
        .strip_prefix("POSIX_SIZE_")
        .or_else(|| column.strip_prefix("MPIIO_SIZE_"))
    {
        let rest = rest
            .trim_start_matches("READ_")
            .trim_start_matches("WRITE_")
            .trim_start_matches("AGG_");
        let dir = if column.contains("READ") {
            "read"
        } else {
            "write"
        };
        if let Some((lo, hi)) = rest.split_once('_') {
            if hi == "PLUS" {
                return Some(format!(
                    "number of {dir} operations of size {lo} bytes or larger"
                ));
            }
            return Some(format!(
                "number of {dir} operations with size in [{lo}, {hi}) bytes"
            ));
        }
    }
    if column.contains("ACCESS") && column.ends_with("_ACCESS") {
        return Some("one of the four most common access sizes, bytes".to_owned());
    }
    if column.contains("ACCESS") && column.ends_with("_COUNT") {
        return Some("occurrences of the corresponding common access size".to_owned());
    }
    if column.contains("STRIDE") && column.ends_with("_STRIDE") {
        return Some("one of the four most common strides between accesses, bytes".to_owned());
    }
    if column.contains("STRIDE") && column.ends_with("_COUNT") {
        return Some("occurrences of the corresponding common stride".to_owned());
    }
    if column.ends_with("FASTEST_RANK") {
        return Some("rank that spent the least I/O time on this shared file".to_owned());
    }
    if column.ends_with("SLOWEST_RANK") {
        return Some("rank that spent the most I/O time on this shared file".to_owned());
    }
    if column.ends_with("FASTEST_RANK_BYTES") || column.ends_with("SLOWEST_RANK_BYTES") {
        return Some("bytes moved by that rank".to_owned());
    }
    if column.ends_with("FASTEST_RANK_TIME") || column.ends_with("SLOWEST_RANK_TIME") {
        return Some("seconds of I/O time spent by that rank".to_owned());
    }
    if column.ends_with("VARIANCE_RANK_TIME") {
        return Some("variance of total I/O time across ranks (shared records)".to_owned());
    }
    if column.ends_with("VARIANCE_RANK_BYTES") {
        return Some("variance of bytes moved across ranks (shared records)".to_owned());
    }
    if column.ends_with("_TIMESTAMP") {
        return Some("timestamp in seconds relative to job start".to_owned());
    }
    if column.ends_with("_TIME") && column.contains("_F_") {
        return Some("cumulative seconds".to_owned());
    }
    if column.ends_with("_TIME_SIZE") {
        return Some("size in bytes of the slowest operation".to_owned());
    }
    None
}

/// Short description of a module table.
#[must_use]
pub fn table_description(table: &str) -> &'static str {
    match table {
        "POSIX" => {
            "one row per (file, rank) pair with POSIX-level statistical counters for that file"
        }
        "MPIIO" => {
            "one row per (file, rank) pair with MPI-IO-level counters, distinguishing independent and collective operations"
        }
        "STDIO" => "one row per (file, rank) pair with buffered standard-I/O counters",
        "LUSTRE" => "one row per file with its Lustre striping layout",
        "DXT" => {
            "one row per traced read/write operation with its file, rank, offset, length and wall-clock interval"
        }
        "HEATMAP" => {
            "one row per (rank, time bin) with the bytes that rank read and wrote during the bin"
        }
        _ => "auxiliary table",
    }
}

/// The module tables the extractor can produce, in stable order.
pub const MODULE_TABLES: [&str; 6] = ["DXT", "HEATMAP", "LUSTRE", "MPIIO", "POSIX", "STDIO"];

/// Environment variable carrying test-only extractor version bumps, as
/// comma-separated `TABLE=N` pairs (`POSIX=2,DXT=3`). A bump simulates
/// an extractor change scoped to those tables: incremental layers that
/// key extraction per module re-extract, while tables whose content
/// digests come out unchanged leave their dependents green.
pub const VERSION_BUMP_ENV: &str = "ION_TABLE_VERSION_BUMP";

/// Extraction-logic version of one module table. Bump the baseline when
/// the rows or columns a module extracts change shape or meaning, so
/// stores keyed per module dirty exactly the tables the change touches.
#[must_use]
pub fn module_version(table: &str) -> u32 {
    let base = 1;
    let bump = std::env::var(VERSION_BUMP_ENV)
        .ok()
        .and_then(|spec| {
            spec.split(',').find_map(|pair| {
                let (name, v) = pair.split_once('=')?;
                (name.trim() == table).then(|| v.trim().parse::<u32>().ok())?
            })
        })
        .unwrap_or(0);
    base + bump
}

/// Combined fingerprint of every module's extraction version — the
/// schema half of a per-trace extraction key. Changes whenever any
/// module's version does.
#[must_use]
pub fn schema_fingerprint() -> String {
    let mut out = String::new();
    for (i, table) in MODULE_TABLES.iter().enumerate() {
        if i > 0 {
            out.push('.');
        }
        let _ = write!(out, "{}", module_version(table));
    }
    out
}

/// Render the prompt-ready description block for a table: the table
/// description followed by one line per column.
#[must_use]
pub fn describe_table(table: &Table) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "File {name}.csv: {desc}. Columns:",
        name = table.name,
        desc = table_description(&table.name)
    );
    for c in &table.columns {
        let desc = column_description(&c.name).unwrap_or_else(|| "module counter".to_owned());
        let _ = writeln!(out, "  - {}: {desc}", c.name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use darshan::counters::{MpiioCounter, MpiioFCounter, PosixCounter, PosixFCounter};

    #[test]
    fn key_columns_have_descriptions() {
        for c in [
            "file_id",
            "rank",
            "POSIX_FILE_NOT_ALIGNED",
            "POSIX_CONSEC_WRITES",
            "LUSTRE_STRIPE_SIZE",
            "MPIIO_COLL_WRITES",
        ] {
            assert!(column_description(c).is_some(), "{c} lacks description");
        }
    }

    #[test]
    fn histogram_bins_derive_descriptions() {
        let d = column_description("POSIX_SIZE_READ_100_1K").unwrap();
        assert!(d.contains("read"), "{d}");
        assert!(d.contains("[100, 1K)"), "{d}");
        let d = column_description("POSIX_SIZE_WRITE_1G_PLUS").unwrap();
        assert!(d.contains("1G bytes or larger"), "{d}");
        let d = column_description("MPIIO_SIZE_WRITE_AGG_0_100").unwrap();
        assert!(d.contains("write"), "{d}");
    }

    #[test]
    fn every_posix_counter_is_describable() {
        for c in PosixCounter::ALL {
            assert!(
                column_description(c.name()).is_some(),
                "{} lacks description",
                c.name()
            );
        }
        for c in PosixFCounter::ALL {
            assert!(
                column_description(c.name()).is_some(),
                "{} lacks description",
                c.name()
            );
        }
    }

    #[test]
    fn every_mpiio_counter_is_describable() {
        for c in MpiioCounter::ALL {
            assert!(
                column_description(c.name()).is_some(),
                "{} lacks description",
                c.name()
            );
        }
        for c in MpiioFCounter::ALL {
            assert!(
                column_description(c.name()).is_some(),
                "{} lacks description",
                c.name()
            );
        }
    }

    #[test]
    fn describe_table_mentions_every_column() {
        let t = Table::new("DXT", &["file_id", "op", "offset"]);
        let text = describe_table(&t);
        assert!(text.contains("DXT.csv"));
        assert!(text.contains("- op:"));
        assert!(text.contains("- offset:"));
    }

    #[test]
    fn unknown_column_falls_back_to_none() {
        assert!(column_description("TOTALLY_UNKNOWN").is_none());
    }

    #[test]
    fn schema_fingerprint_covers_every_module() {
        // Default (no env bump): every module at its baseline version.
        // Env-bump behavior is exercised by ion-store's incremental
        // tests, which already serialize on a process-wide lock.
        let fp = schema_fingerprint();
        assert_eq!(fp.split('.').count(), MODULE_TABLES.len());
        for table in MODULE_TABLES {
            assert!(module_version(table) >= 1);
        }
    }
}
