//! E2E domain-decomposition I/O kernel emulation (Figure 3, second
//! application).
//!
//! The baseline reproduces the defect the paper's users diagnosed: the
//! netCDF layer wrote *fill values* for datasets that were subsequently
//! overwritten, and the fill pass is performed by **rank 0 alone** — so
//! rank 0 writes nearly the whole file once before anyone else writes a
//! byte, an overwhelming load imbalance (~99.9%). Domain-decomposition
//! record offsets are not stripe-aligned, so misalignment is pervasive in
//! both variants (~99.8%).
//!
//! The optimized variant disables fill values (the 10× fix). What remains
//! is the kernel's own two-stage output: a subset of writer ranks (64 of
//! 1024 in the paper) collects its group's data and performs ~98% of the
//! writes — behaviour inherent to the algorithm, not a defect.

use crate::spec::{Expectation, GroundTruth};
use crate::Workload;
use darshan::log::Log;
use iosim::{SimConfig, Simulation};

/// Which variant of the E2E trace to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum E2eVariant {
    /// With rank-0 fill values (load imbalance).
    Baseline,
    /// With fill values disabled (subset-writer pattern remains).
    Optimized,
}

/// The output file of the kernel.
pub const E2E_FILE: &str = "/scratch/e2e/3d_32_32_16_32_32_32.nc4";

/// E2E workload configuration.
#[derive(Debug, Clone)]
pub struct E2e {
    /// Variant.
    pub variant: E2eVariant,
    /// MPI ranks (paper: 1024).
    pub nprocs: u32,
    /// Ranks per writer group (paper: 16 → 64 writers at 1024 ranks).
    pub group_size: u32,
    /// Record size of one domain block (deliberately unaligned).
    pub record_size: u64,
}

impl E2e {
    /// Scaled instance: `scale = 1.0` ≈ the paper's 1024 ranks.
    #[must_use]
    pub fn scaled(variant: E2eVariant, scale: f64) -> Self {
        let nprocs = ((1024.0 * scale) as u32).clamp(16, 1024);
        E2e {
            variant,
            nprocs,
            group_size: 16,
            record_size: 93_216, // 3d decomposition block, not stripe aligned
        }
    }

    fn generate_inner(&self) -> Log {
        let exe = match self.variant {
            E2eVariant::Baseline => "e2e-io-kernel (fill values enabled)",
            E2eVariant::Optimized => "e2e-io-kernel (no_fill)",
        };
        let config = SimConfig::default().with_ranks(self.nprocs).with_exe(exe);
        let mut sim = Simulation::new(config);
        let f = sim.posix_open_all(E2E_FILE).expect("open");

        let records_per_rank = 8u64;
        let total_records = records_per_rank * u64::from(self.nprocs);

        if self.variant == E2eVariant::Baseline {
            // Fill pass: rank 0 writes a fill value for EVERY record that
            // the decomposition will subsequently overwrite.
            for rec in 0..total_records {
                sim.posix_write_opts(0, f, rec * self.record_size, self.record_size, false)
                    .expect("fill write");
            }
            sim.barrier();
            // Decomposition pass: each rank overwrites its own records.
            for rank in 0..self.nprocs {
                for i in 0..records_per_rank {
                    let rec = u64::from(rank) * records_per_rank + i;
                    sim.posix_write_opts(rank, f, rec * self.record_size, self.record_size, false)
                        .expect("write");
                }
            }
        } else {
            // no_fill: writer ranks gather their group's records and write
            // them; non-writers contribute only a tiny header/attribute
            // update of their corner block.
            for rank in 0..self.nprocs {
                if rank % self.group_size == 0 {
                    let group_records = records_per_rank * u64::from(self.group_size);
                    let base = u64::from(rank / self.group_size) * group_records;
                    for i in 0..group_records {
                        sim.posix_write_opts(
                            rank,
                            f,
                            (base + i) * self.record_size,
                            self.record_size,
                            false,
                        )
                        .expect("writer write");
                    }
                } else {
                    // Corner metadata only.
                    let rec = u64::from(rank) * records_per_rank;
                    sim.posix_write_opts(rank, f, rec * self.record_size, 256, false)
                        .expect("corner write");
                }
            }
        }
        sim.posix_close_all(f);
        sim.finish()
    }
}

impl Workload for E2e {
    fn name(&self) -> &str {
        match self.variant {
            E2eVariant::Baseline => "E2E (Baseline)",
            E2eVariant::Optimized => "E2E (Optimized)",
        }
    }

    fn generate(&self) -> Log {
        self.generate_inner()
    }

    fn ground_truth(&self) -> GroundTruth {
        match self.variant {
            E2eVariant::Baseline => GroundTruth::new(
                "Fill values for subsequently overwritten datasets are written by rank 0, causing overwhelming load imbalance; record offsets are misaligned; memory buffers unaligned",
                &[
                    ("load-imbalance", Expectation::Present),
                    ("misaligned-io", Expectation::Present),
                    ("interface-usage", Expectation::Present),
                ],
            ),
            E2eVariant::Optimized => GroundTruth::new(
                "Fill disabled; a subset of writer ranks performs ~98% of writes (inherent to the algorithm); misalignment persists",
                &[
                    ("misaligned-io", Expectation::Present),
                    ("load-imbalance", Expectation::Mitigated),
                    ("interface-usage", Expectation::Present),
                ],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darshan::counters::PosixCounter;

    fn psum(log: &Log, c: PosixCounter) -> i64 {
        log.posix.iter().map(|r| r.get(c)).sum()
    }

    fn bytes_by_rank(log: &Log) -> std::collections::HashMap<i32, i64> {
        let mut m = std::collections::HashMap::new();
        for r in &log.posix {
            *m.entry(r.rank).or_insert(0) += r.get(PosixCounter::POSIX_BYTES_WRITTEN);
        }
        m
    }

    #[test]
    fn baseline_rank0_dominates() {
        let log = E2e::scaled(E2eVariant::Baseline, 0.03).generate(); // 30 ranks
        let by_rank = bytes_by_rank(&log);
        let rank0 = by_rank[&0];
        let total: i64 = by_rank.values().sum();
        // Rank 0 wrote all fill values plus its own records.
        assert!(
            rank0 as f64 / total as f64 > 0.5,
            "rank0 share {}",
            rank0 as f64 / total as f64
        );
        // Imbalance (max-mean)/max is extreme.
        let max = *by_rank.values().max().unwrap() as f64;
        let mean = total as f64 / by_rank.len() as f64;
        assert!((max - mean) / max > 0.9);
    }

    #[test]
    fn misalignment_pervasive_in_both_variants() {
        for variant in [E2eVariant::Baseline, E2eVariant::Optimized] {
            let log = E2e::scaled(variant, 0.03).generate();
            let ops = psum(&log, PosixCounter::POSIX_WRITES);
            let unaligned = psum(&log, PosixCounter::POSIX_FILE_NOT_ALIGNED);
            let pct = 100.0 * unaligned as f64 / ops as f64;
            assert!(pct > 99.0, "{variant:?}: misaligned {pct}%");
        }
    }

    #[test]
    fn baseline_memory_buffers_unaligned() {
        let log = E2e::scaled(E2eVariant::Baseline, 0.03).generate();
        let mem = psum(&log, PosixCounter::POSIX_MEM_NOT_ALIGNED);
        let ops = psum(&log, PosixCounter::POSIX_WRITES);
        assert_eq!(mem, ops);
    }

    #[test]
    fn optimized_subset_of_writers_dominates() {
        let w = E2e::scaled(E2eVariant::Optimized, 0.0625); // 64 ranks, 4 writers
        let log = w.generate();
        let by_rank = bytes_by_rank(&log);
        let total: i64 = by_rank.values().sum();
        let writers: i64 = by_rank
            .iter()
            .filter(|(r, _)| **r % 16 == 0)
            .map(|(_, b)| *b)
            .sum();
        let share = writers as f64 / total as f64;
        assert!(share > 0.95, "writer share {share}");
        // Number of writers is nprocs / group_size.
        let writer_count = by_rank.keys().filter(|r| **r % 16 == 0).count();
        assert_eq!(writer_count, 4);
    }

    #[test]
    fn optimized_no_rank0_outlier_versus_other_writers() {
        let log = E2e::scaled(E2eVariant::Optimized, 0.0625).generate();
        let by_rank = bytes_by_rank(&log);
        let w0 = by_rank[&0];
        let w16 = by_rank[&16];
        assert_eq!(w0, w16, "writers share the load evenly");
    }

    #[test]
    fn deterministic() {
        let a = E2e::scaled(E2eVariant::Baseline, 0.02).generate();
        let b = E2e::scaled(E2eVariant::Baseline, 0.02).generate();
        assert_eq!(a, b);
    }
}
