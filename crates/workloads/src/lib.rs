//! Workload generators: IO500-style benchmarks and real-application
//! emulations, producing Darshan logs through the [`iosim`] simulator.
//!
//! The ION paper's evaluation uses two trace families:
//!
//! * **Figure 2** — controlled IO500 runs with known injected issues:
//!   `ior-easy` variants (transfer size and shared-file vs
//!   file-per-process), `ior-hard` (small interleaved shared-file),
//!   `ior-rnd4k` (4 KiB random) and MD-Workbench (metadata-heavy). See
//!   [`ior`] and [`mdworkbench`].
//! * **Figure 3** — two real applications in baseline and optimized forms:
//!   OpenPMD (with the HDF5 collective-write defect and with it fixed) and
//!   the E2E domain-decomposition kernel (with rank-0 fill-value imbalance
//!   and with it disabled). See [`openpmd`] and [`e2e`].
//!
//! Every generator is deterministic for a given seed and takes a `scale`
//! knob so tests run in milliseconds while the experiment binaries can
//! approach the paper's operation counts. Each also publishes its
//! [`spec::GroundTruth`] — the issues the trace is known to contain — which
//! is what Figure 2 scores ION against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod e2e;
pub mod ior;
pub mod mdworkbench;
pub mod openpmd;
pub mod spec;

pub use spec::{Expectation, GroundTruth};

/// A named workload producing a Darshan log plus its ground truth.
pub trait Workload {
    /// Short name used in experiment output (e.g. `IOR-Easy-2KB-Shared`).
    fn name(&self) -> &str;
    /// Generate the trace.
    fn generate(&self) -> darshan::log::Log;
    /// The issues the trace is constructed to contain.
    fn ground_truth(&self) -> GroundTruth;

    /// Generate the trace inside a `workload.generate` span tagged with the
    /// workload's name (no-op overhead when profiling is off).
    fn generate_traced(&self) -> darshan::log::Log {
        let mut span = ion_obs::span!("workload.generate");
        span.attr("workload", self.name());
        self.generate()
    }
}
