//! IOR-style benchmark generator (the IO500 data phases).
//!
//! Reproduces the access patterns of the IO500 configurations the paper
//! injects issues with:
//!
//! * **ior-easy** — each rank streams sequential, consecutive transfers of
//!   a configurable size into its own region (shared file) or its own file
//!   (file-per-process). Transfer size is the injection knob: 2 KiB makes
//!   every transfer "small" and almost every offset misaligned, 1 MiB is
//!   stripe-aligned.
//! * **ior-hard** — all ranks interleave fixed 47008-byte records into one
//!   shared file (`offset = (segment * nprocs + rank) * 47008`), producing
//!   small, unaligned, stripe-shared accesses that cannot be aggregated.
//! * **ior-rnd4k** — 4 KiB transfers at random 4 KiB-aligned offsets across
//!   the whole shared file.

use crate::spec::{Expectation, GroundTruth};
use crate::Workload;
use darshan::log::Log;
use iosim::{SimConfig, Simulation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which interface the benchmark drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Api {
    /// Raw POSIX calls from every rank.
    Posix,
    /// Independent MPI-IO operations.
    MpiIoIndependent,
    /// Collective MPI-IO operations.
    MpiIoCollective,
}

/// Shared file vs file-per-process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileMode {
    /// One file written by every rank (segmented regions).
    Shared,
    /// One file per rank.
    FilePerProcess,
}

/// Spatial pattern of the offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Each rank streams consecutively through its region.
    Sequential,
    /// Ranks interleave records round-robin (ior-hard).
    Interleaved,
    /// Random transfer-aligned offsets over the whole file.
    Random,
}

/// Full IOR run configuration.
#[derive(Debug, Clone)]
pub struct IorConfig {
    /// Workload display name.
    pub name: String,
    /// MPI ranks.
    pub nprocs: u32,
    /// Transfer size in bytes.
    pub transfer_size: u64,
    /// Write (and, with `read_back`, read) operations per rank.
    pub ops_per_rank: u64,
    /// Interface.
    pub api: Api,
    /// File layout.
    pub file_mode: FileMode,
    /// Offset pattern.
    pub pattern: AccessPattern,
    /// Whether a read phase follows the write phase.
    pub read_back: bool,
    /// RNG seed for random patterns.
    pub seed: u64,
}

impl IorConfig {
    fn file_path(&self, rank: u32) -> String {
        match self.file_mode {
            FileMode::Shared => "/io500/ior_file_easy".to_owned(),
            FileMode::FilePerProcess => format!("/io500/ior_easy/testFile.{rank:08}"),
        }
    }

    fn offset(&self, rank: u32, op: u64, rng: &mut SmallRng) -> u64 {
        match self.pattern {
            AccessPattern::Sequential => {
                // Rank regions are stripe-aligned, as they are in real
                // ior-easy runs where block sizes are GiB-scale; without
                // this, scaled-down runs would artificially share boundary
                // stripes between ranks.
                const STRIPE: u64 = 1 << 20;
                let region = (self.ops_per_rank * self.transfer_size).div_ceil(STRIPE) * STRIPE;
                let base = match self.file_mode {
                    FileMode::Shared => u64::from(rank) * region,
                    FileMode::FilePerProcess => 0,
                };
                base + op * self.transfer_size
            }
            AccessPattern::Interleaved => {
                (op * u64::from(self.nprocs) + u64::from(rank)) * self.transfer_size
            }
            AccessPattern::Random => {
                let slots = self.ops_per_rank * u64::from(self.nprocs);
                rng.gen_range(0..slots) * self.transfer_size
            }
        }
    }

    /// Run the benchmark through the simulator and return its Darshan log.
    #[must_use]
    pub fn run(&self) -> Log {
        let config = SimConfig::default()
            .with_ranks(self.nprocs)
            .with_exe(&format!("ior {}", self.name));
        let mut sim = Simulation::new(config);

        let handles: Vec<_> = match self.file_mode {
            FileMode::Shared => {
                let h = match self.api {
                    Api::Posix => sim.posix_open_all(&self.file_path(0)).expect("open"),
                    _ => sim.mpi_file_open(&self.file_path(0)).expect("open"),
                };
                vec![h; self.nprocs as usize]
            }
            FileMode::FilePerProcess => (0..self.nprocs)
                .map(|r| sim.posix_open(r, &self.file_path(r)).expect("open"))
                .collect(),
        };

        // Write phase. Random patterns replay the same offset stream in the
        // read phase (IOR's -z behaviour), so reads never cross EOF.
        let mut write_rngs: Vec<SmallRng> = (0..self.nprocs)
            .map(|r| SmallRng::seed_from_u64(self.seed ^ u64::from(r)))
            .collect();
        for op in 0..self.ops_per_rank {
            match self.api {
                Api::MpiIoCollective => {
                    let reqs: Vec<(u32, u64, u64)> = (0..self.nprocs)
                        .map(|r| {
                            let off = self.offset(r, op, &mut write_rngs[r as usize]);
                            (r, off, self.transfer_size)
                        })
                        .collect();
                    sim.mpi_write_collective(handles[0], &reqs)
                        .expect("coll write");
                }
                _ => {
                    for rank in 0..self.nprocs {
                        let off = self.offset(rank, op, &mut write_rngs[rank as usize]);
                        match self.api {
                            Api::Posix => sim
                                .posix_write(rank, handles[rank as usize], off, self.transfer_size)
                                .expect("write"),
                            Api::MpiIoIndependent => sim
                                .mpi_write_independent(
                                    rank,
                                    handles[rank as usize],
                                    off,
                                    self.transfer_size,
                                )
                                .expect("write"),
                            Api::MpiIoCollective => unreachable!(),
                        }
                    }
                }
            }
        }
        sim.barrier();

        if self.read_back {
            let mut read_rngs: Vec<SmallRng> = (0..self.nprocs)
                .map(|r| SmallRng::seed_from_u64(self.seed ^ u64::from(r)))
                .collect();
            for op in 0..self.ops_per_rank {
                match self.api {
                    Api::MpiIoCollective => {
                        let reqs: Vec<(u32, u64, u64)> = (0..self.nprocs)
                            .map(|r| {
                                let off = self.offset(r, op, &mut read_rngs[r as usize]);
                                (r, off, self.transfer_size)
                            })
                            .collect();
                        sim.mpi_read_collective(handles[0], &reqs)
                            .expect("coll read");
                    }
                    _ => {
                        for rank in 0..self.nprocs {
                            let off = self.offset(rank, op, &mut read_rngs[rank as usize]);
                            match self.api {
                                Api::Posix => sim
                                    .posix_read(
                                        rank,
                                        handles[rank as usize],
                                        off,
                                        self.transfer_size,
                                    )
                                    .expect("read"),
                                Api::MpiIoIndependent => sim
                                    .mpi_read_independent(
                                        rank,
                                        handles[rank as usize],
                                        off,
                                        self.transfer_size,
                                    )
                                    .expect("read"),
                                Api::MpiIoCollective => unreachable!(),
                            }
                        }
                    }
                }
            }
        }

        match (self.api, self.file_mode) {
            (Api::Posix, FileMode::Shared) => sim.posix_close_all(handles[0]),
            (Api::Posix, FileMode::FilePerProcess) => {
                for (r, h) in handles.iter().enumerate() {
                    sim.posix_close(r as u32, *h).expect("close");
                }
            }
            _ => sim.mpi_file_close(handles[0]).map(|_| ()).expect("close"),
        }
        sim.finish()
    }
}

/// An IOR preset bundled with its ground truth.
#[derive(Debug, Clone)]
pub struct IorWorkload {
    /// The configuration to run.
    pub config: IorConfig,
    truth: GroundTruth,
}

impl Workload for IorWorkload {
    fn name(&self) -> &str {
        &self.config.name
    }

    fn generate(&self) -> Log {
        self.config.run()
    }

    fn ground_truth(&self) -> GroundTruth {
        self.truth.clone()
    }
}

fn scaled(base: u64, scale: f64) -> u64 {
    ((base as f64) * scale).max(8.0) as u64
}

/// IOR-Easy, 2 KiB transfers, shared file (Figure 2 row 1).
#[must_use]
pub fn ior_easy_2kb_shared(scale: f64) -> IorWorkload {
    IorWorkload {
        config: IorConfig {
            name: "IOR-Easy-2KB-Shared-File".into(),
            nprocs: 4,
            transfer_size: 2048,
            ops_per_rank: scaled(2048, scale),
            api: Api::Posix,
            file_mode: FileMode::Shared,
            pattern: AccessPattern::Sequential,
            read_back: true,
            seed: 0x10500,
        },
        truth: GroundTruth::new(
            "Small read and write requests, but Sequential and Consecutive; 4 ranks read/write a single shared file; POSIX API with multiple ranks",
            &[
                ("small-io", Expectation::Mitigated),
                ("misaligned-io", Expectation::Present),
                ("shared-file-contention", Expectation::Mitigated),
                ("interface-usage", Expectation::Present),
                ("random-access", Expectation::Absent),
                ("load-imbalance", Expectation::Absent),
                ("metadata-load", Expectation::Absent),
            ],
        ),
    }
}

/// IOR-Easy, 1 MiB transfers, shared file (Figure 2 row 2).
#[must_use]
pub fn ior_easy_1mb_shared(scale: f64) -> IorWorkload {
    IorWorkload {
        config: IorConfig {
            name: "IOR-Easy-1MB-Shared-File".into(),
            nprocs: 4,
            transfer_size: 1 << 20,
            ops_per_rank: scaled(1024, scale),
            api: Api::Posix,
            file_mode: FileMode::Shared,
            pattern: AccessPattern::Sequential,
            read_back: true,
            seed: 0x10501,
        },
        truth: GroundTruth::new(
            "1 MiB requests (smaller than the 4 MiB RPC size) but Sequential and Consecutive; 4 ranks share one file; POSIX API",
            &[
                ("small-io", Expectation::Mitigated),
                ("misaligned-io", Expectation::Absent),
                ("shared-file-contention", Expectation::Mitigated),
                ("interface-usage", Expectation::Present),
                ("random-access", Expectation::Absent),
                ("load-imbalance", Expectation::Absent),
            ],
        ),
    }
}

/// IOR-Easy, 1 MiB transfers, file per process (Figure 2 row 3).
#[must_use]
pub fn ior_easy_1mb_fpp(scale: f64) -> IorWorkload {
    IorWorkload {
        config: IorConfig {
            name: "IOR-Easy-1MB-File-per-process".into(),
            nprocs: 4,
            transfer_size: 1 << 20,
            ops_per_rank: scaled(1024, scale),
            api: Api::Posix,
            file_mode: FileMode::FilePerProcess,
            pattern: AccessPattern::Sequential,
            read_back: true,
            seed: 0x10502,
        },
        truth: GroundTruth::new(
            "1 MiB sequential consecutive requests; 4 ranks write their own files; POSIX API",
            &[
                ("small-io", Expectation::Mitigated),
                ("misaligned-io", Expectation::Absent),
                ("shared-file-contention", Expectation::Absent),
                ("interface-usage", Expectation::Present),
                ("random-access", Expectation::Absent),
            ],
        ),
    }
}

/// IOR-Hard: 47008-byte interleaved records on a shared file (Figure 2
/// row 4).
#[must_use]
pub fn ior_hard(scale: f64) -> IorWorkload {
    IorWorkload {
        config: IorConfig {
            name: "IOR-Hard".into(),
            nprocs: 4,
            transfer_size: 47_008,
            ops_per_rank: scaled(100_000, scale),
            api: Api::Posix,
            file_mode: FileMode::Shared,
            pattern: AccessPattern::Interleaved,
            read_back: true,
            seed: 0x10503,
        },
        truth: GroundTruth::new(
            "Small interleaved requests that cannot be aggregated; 4 ranks share one file; POSIX API",
            &[
                ("small-io", Expectation::Present),
                ("misaligned-io", Expectation::Present),
                ("shared-file-contention", Expectation::Present),
                ("interface-usage", Expectation::Present),
            ],
        ),
    }
}

/// IOR-Random-4K: 4 KiB random accesses on a shared file (Figure 2 row 5).
#[must_use]
pub fn ior_rnd4k(scale: f64) -> IorWorkload {
    IorWorkload {
        config: IorConfig {
            name: "IOR-Random-4K-Shared-File".into(),
            nprocs: 4,
            transfer_size: 4096,
            ops_per_rank: scaled(36_000, scale),
            api: Api::Posix,
            file_mode: FileMode::Shared,
            pattern: AccessPattern::Random,
            read_back: true,
            seed: 0x10504,
        },
        truth: GroundTruth::new(
            "Small random reads/writes that cannot be aggregated; 4 ranks share one file; POSIX API",
            &[
                ("small-io", Expectation::Present),
                ("misaligned-io", Expectation::Present),
                ("random-access", Expectation::Present),
                ("shared-file-contention", Expectation::Present),
                ("interface-usage", Expectation::Present),
            ],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darshan::counters::PosixCounter;

    fn psum(log: &Log, c: PosixCounter) -> i64 {
        log.posix.iter().map(|r| r.get(c)).sum()
    }

    #[test]
    fn easy_2kb_ops_and_misalignment_shape() {
        let w = ior_easy_2kb_shared(0.25); // 512 ops/rank
        let log = w.generate();
        let ops = psum(&log, PosixCounter::POSIX_READS) + psum(&log, PosixCounter::POSIX_WRITES);
        assert_eq!(ops, 4 * 512 * 2);
        let unaligned = psum(&log, PosixCounter::POSIX_FILE_NOT_ALIGNED);
        let pct = 100.0 * unaligned as f64 / ops as f64;
        // 2 KiB offsets against a 1 MiB stripe: 511/512 misaligned.
        assert!((pct - 99.8).abs() < 0.5, "misaligned {pct}%");
        // Everything but each rank's first op per phase is consecutive.
        let consec = psum(&log, PosixCounter::POSIX_CONSEC_READS)
            + psum(&log, PosixCounter::POSIX_CONSEC_WRITES);
        assert_eq!(consec, ops - 8);
    }

    #[test]
    fn easy_1mb_shared_is_aligned() {
        let w = ior_easy_1mb_shared(0.125); // 128 ops/rank
        let log = w.generate();
        assert_eq!(psum(&log, PosixCounter::POSIX_FILE_NOT_ALIGNED), 0);
        // Exactly one shared file.
        let files: std::collections::HashSet<u64> = log.posix.iter().map(|r| r.file_id).collect();
        assert_eq!(files.len(), 1);
    }

    #[test]
    fn fpp_creates_one_file_per_rank() {
        let w = ior_easy_1mb_fpp(0.05);
        let log = w.generate();
        let files: std::collections::HashSet<u64> = log.posix.iter().map(|r| r.file_id).collect();
        assert_eq!(files.len(), 4);
        // Each file has exactly one rank's records.
        for f in files {
            let ranks: std::collections::HashSet<i32> = log
                .posix
                .iter()
                .filter(|r| r.file_id == f)
                .map(|r| r.rank)
                .collect();
            assert_eq!(ranks.len(), 1);
        }
    }

    #[test]
    fn hard_interleaving_is_unaligned_and_strided() {
        let w = ior_hard(0.01); // 1000 ops/rank
        let log = w.generate();
        let ops = psum(&log, PosixCounter::POSIX_READS) + psum(&log, PosixCounter::POSIX_WRITES);
        let unaligned = psum(&log, PosixCounter::POSIX_FILE_NOT_ALIGNED);
        assert!(unaligned as f64 / ops as f64 > 0.999);
        // Interleaved: strided, so sequential but never consecutive.
        let consec = psum(&log, PosixCounter::POSIX_CONSEC_READS)
            + psum(&log, PosixCounter::POSIX_CONSEC_WRITES);
        assert_eq!(consec, 0);
        let seq =
            psum(&log, PosixCounter::POSIX_SEQ_READS) + psum(&log, PosixCounter::POSIX_SEQ_WRITES);
        assert!(seq as f64 / ops as f64 > 0.99);
    }

    #[test]
    fn rnd4k_misalignment_matches_paper_rate() {
        let w = ior_rnd4k(0.1); // 3600 ops/rank
        let log = w.generate();
        let ops = psum(&log, PosixCounter::POSIX_READS) + psum(&log, PosixCounter::POSIX_WRITES);
        let unaligned = psum(&log, PosixCounter::POSIX_FILE_NOT_ALIGNED);
        let pct = 100.0 * unaligned as f64 / ops as f64;
        // 4 KiB-aligned random offsets against 1 MiB stripes: ≈ 99.61%.
        assert!((pct - 99.61).abs() < 0.4, "misaligned {pct}%");
        // Random: most ops are not sequential.
        let seq =
            psum(&log, PosixCounter::POSIX_SEQ_READS) + psum(&log, PosixCounter::POSIX_SEQ_WRITES);
        assert!((seq as f64 / ops as f64) < 0.6);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ior_rnd4k(0.02).generate();
        let b = ior_rnd4k(0.02).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn dxt_traces_every_operation() {
        let w = ior_easy_2kb_shared(0.05);
        let log = w.generate();
        let posix_ops =
            psum(&log, PosixCounter::POSIX_READS) + psum(&log, PosixCounter::POSIX_WRITES);
        let dxt_ops: usize = log.dxt.iter().map(darshan::dxt::DxtRecord::len).sum();
        assert_eq!(dxt_ops as i64, posix_ops);
    }

    #[test]
    fn ground_truths_cover_key_issues() {
        for w in [
            ior_easy_2kb_shared(0.01),
            ior_easy_1mb_shared(0.01),
            ior_easy_1mb_fpp(0.01),
            ior_hard(0.001),
            ior_rnd4k(0.01),
        ] {
            let gt = w.ground_truth();
            assert!(!gt.description.is_empty());
            assert!(gt.expectation("small-io").is_some());
            assert!(gt.expectation("interface-usage").is_some());
        }
    }
}
