//! MD-Workbench-style metadata benchmark (Figure 2 row 6).
//!
//! MD-Workbench stresses the metadata path: each iteration a rank creates
//! a small object, reads a previously created object, and deletes the
//! oldest — touching many small files with open/stat/read-or-write/close
//! cycles at the same offset. Ranks rotate over a shared pool of datasets,
//! so over time several ranks touch the same (tiny, single-stripe) files,
//! which is why roughly half of the data operations land in stripes that
//! more than one rank has visited.

use crate::spec::{Expectation, GroundTruth};
use crate::Workload;
use darshan::log::Log;
use iosim::{SimConfig, Simulation};

/// MD-Workbench configuration.
#[derive(Debug, Clone)]
pub struct MdWorkbenchConfig {
    /// MPI ranks.
    pub nprocs: u32,
    /// Objects precreated per rank.
    pub precreate_per_rank: u64,
    /// Benchmark iterations per rank.
    pub iterations_per_rank: u64,
    /// Object size in bytes (small by design).
    pub object_size: u64,
}

impl Default for MdWorkbenchConfig {
    fn default() -> Self {
        MdWorkbenchConfig {
            nprocs: 4,
            precreate_per_rank: 64,
            iterations_per_rank: 256,
            object_size: 3901, // MD-Workbench's default object size
        }
    }
}

/// The MD-Workbench workload.
#[derive(Debug, Clone)]
pub struct MdWorkbench {
    /// Configuration.
    pub config: MdWorkbenchConfig,
}

impl MdWorkbench {
    /// Scaled instance (scale multiplies iteration and object counts).
    #[must_use]
    pub fn scaled(scale: f64) -> Self {
        let d = MdWorkbenchConfig::default();
        MdWorkbench {
            config: MdWorkbenchConfig {
                precreate_per_rank: ((d.precreate_per_rank as f64 * scale) as u64).max(4),
                iterations_per_rank: ((d.iterations_per_rank as f64 * scale) as u64).max(8),
                ..d
            },
        }
    }

    fn object_path(dataset: u64) -> String {
        format!("/io500/mdw/dataset.{dataset:06}/obj")
    }
}

impl Workload for MdWorkbench {
    fn name(&self) -> &str {
        "MD-Workbench"
    }

    fn generate(&self) -> Log {
        let c = &self.config;
        let sim_config = SimConfig::default()
            .with_ranks(c.nprocs)
            .with_exe("md-workbench");
        let mut sim = Simulation::new(sim_config);
        let datasets = c.precreate_per_rank * u64::from(c.nprocs);

        // Precreate phase: rank r creates datasets [r*P, (r+1)*P).
        for rank in 0..c.nprocs {
            for i in 0..c.precreate_per_rank {
                let ds = u64::from(rank) * c.precreate_per_rank + i;
                let h = sim
                    .posix_open(rank, &Self::object_path(ds))
                    .expect("create");
                sim.posix_write(rank, h, 0, c.object_size).expect("write");
                sim.posix_close(rank, h).expect("close");
            }
        }
        sim.barrier();

        // Benchmark phase: each iteration rank r works on dataset
        // ((iter + r) mod datasets): stat it, read the object, overwrite it.
        // The rotation makes ranks revisit datasets other ranks created.
        for iter in 0..c.iterations_per_rank {
            for rank in 0..c.nprocs {
                let ds = (iter * u64::from(c.nprocs) + u64::from(rank)) % datasets;
                let path = Self::object_path(ds);
                sim.posix_stat(rank, &path).expect("stat");
                let h = sim.posix_open(rank, &path).expect("open");
                sim.posix_read(rank, h, 0, c.object_size).expect("read");
                sim.posix_write(rank, h, 0, c.object_size).expect("write");
                sim.posix_close(rank, h).expect("close");
            }
        }
        sim.finish()
    }

    fn ground_truth(&self) -> GroundTruth {
        GroundTruth::new(
            "Excessive metadata requests: repeated small reads and writes to many files at the same offset",
            &[
                ("metadata-load", Expectation::Present),
                ("small-io", Expectation::Present),
                ("interface-usage", Expectation::Present),
                ("misaligned-io", Expectation::Absent),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darshan::counters::{PosixCounter, PosixFCounter};

    fn psum(log: &Log, c: PosixCounter) -> i64 {
        log.posix.iter().map(|r| r.get(c)).sum()
    }

    #[test]
    fn metadata_dominates() {
        let log = MdWorkbench::scaled(0.25).generate();
        let meta_time: f64 = log
            .posix
            .iter()
            .map(|r| r.fget(PosixFCounter::POSIX_F_META_TIME))
            .sum();
        let rw_time: f64 = log
            .posix
            .iter()
            .map(|r| {
                r.fget(PosixFCounter::POSIX_F_READ_TIME) + r.fget(PosixFCounter::POSIX_F_WRITE_TIME)
            })
            .sum();
        assert!(
            meta_time > rw_time,
            "meta {meta_time} vs rw {rw_time} — metadata must dominate"
        );
    }

    #[test]
    fn many_small_files_touched() {
        let log = MdWorkbench::scaled(0.25).generate();
        let files: std::collections::HashSet<u64> = log.posix.iter().map(|r| r.file_id).collect();
        assert!(files.len() >= 64, "{} files", files.len());
        // Every data op is small (object_size bytes).
        let small = psum(&log, PosixCounter::POSIX_SIZE_WRITE_1K_10K)
            + psum(&log, PosixCounter::POSIX_SIZE_READ_1K_10K);
        let ops = psum(&log, PosixCounter::POSIX_READS) + psum(&log, PosixCounter::POSIX_WRITES);
        assert_eq!(small, ops);
    }

    #[test]
    fn rotation_shares_datasets_across_ranks() {
        let log = MdWorkbench::scaled(0.5).generate();
        // At least one file must have records from more than one rank.
        let mut ranks_per_file: std::collections::HashMap<u64, std::collections::HashSet<i32>> =
            std::collections::HashMap::new();
        for r in &log.posix {
            ranks_per_file.entry(r.file_id).or_default().insert(r.rank);
        }
        assert!(ranks_per_file.values().any(|s| s.len() > 1));
    }

    #[test]
    fn opens_exceed_files_meaningfully() {
        let log = MdWorkbench::scaled(0.5).generate();
        let opens = psum(&log, PosixCounter::POSIX_OPENS);
        let files = log
            .posix
            .iter()
            .map(|r| r.file_id)
            .collect::<std::collections::HashSet<_>>()
            .len() as i64;
        assert!(opens > files, "opens {opens} files {files}");
        let stats = psum(&log, PosixCounter::POSIX_STATS);
        assert!(stats > 0);
    }
}
