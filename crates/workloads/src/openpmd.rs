//! OpenPMD trace emulation (Figure 3, first application).
//!
//! The baseline reproduces the HDF5 defect the paper describes: the
//! application requests *collective* dataset writes, but a bug in HDF5's
//! collective path decomposed them into **independent, small, misaligned**
//! operations — visible in Darshan as collective opens with zero collective
//! data operations, an ocean of sub-megabyte POSIX transfers at
//! header-shifted offsets (100% misaligned), most of them consecutive
//! per rank (so aggregation *would* have worked), with roughly two thirds
//! of the small writes hitting one heavy dataset file.
//!
//! The optimized variant models the fixed HDF5: real collective writes
//! aggregate into large aligned accesses; what remains is a modest number
//! of small random reads (metadata/attribute lookups), low in count per
//! rank and in volume.

use crate::spec::{Expectation, GroundTruth};
use crate::Workload;
use darshan::log::Log;
use iosim::{SimConfig, Simulation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which variant of the OpenPMD trace to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenPmdVariant {
    /// With the HDF5 collective-write defect (small misaligned independent
    /// ops).
    Baseline,
    /// With the defect fixed (true collective writes).
    Optimized,
}

/// OpenPMD workload configuration.
#[derive(Debug, Clone)]
pub struct OpenPmd {
    /// Variant.
    pub variant: OpenPmdVariant,
    /// MPI ranks (paper: 384).
    pub nprocs: u32,
    /// Small writes per rank in the baseline (paper total: ~427k over 384
    /// ranks ≈ 1113 per rank).
    pub writes_per_rank: u64,
    /// Small reads per rank in the baseline (paper total: ~276k ≈ 718).
    pub reads_per_rank: u64,
}

/// The heavy dataset file that receives ~64% of the small writes.
pub const HEAVY_FILE: &str = "/scratch/openpmd/8a_parallel_3Db_0000001.h5";
/// The second dataset file.
pub const LIGHT_FILE: &str = "/scratch/openpmd/8a_parallel_3Db_0000002.h5";

/// HDF5 header offset that shifts every access off stripe alignment.
const HEADER_SHIFT: u64 = 2688;

impl OpenPmd {
    /// Scaled-down instance: `scale = 1.0` approximates the paper's
    /// operation counts (384 ranks); tests use small scales.
    #[must_use]
    pub fn scaled(variant: OpenPmdVariant, scale: f64) -> Self {
        let nprocs = ((384.0 * scale) as u32).clamp(4, 384);
        OpenPmd {
            variant,
            nprocs,
            writes_per_rank: 1113,
            reads_per_rank: 718,
        }
    }

    fn generate_baseline(&self) -> Log {
        let config = SimConfig::default()
            .with_ranks(self.nprocs)
            .with_exe("openpmd-pipe (hdf5 collective bug)");
        let mut sim = Simulation::new(config);
        let heavy = sim.mpi_file_open(HEAVY_FILE).expect("open heavy");
        let light = sim.mpi_file_open(LIGHT_FILE).expect("open light");

        // The defect: nominally collective writes issued as per-rank
        // independent small operations. Each rank streams its hyperslab
        // pieces consecutively (so they *would* aggregate), all offsets
        // shifted by the HDF5 header so nothing is stripe-aligned.
        let piece = 6144u64; // sub-stripe hyperslab piece
        for rank in 0..self.nprocs {
            // 64.38% of writes to the heavy file, the rest to the light one.
            let heavy_writes = (self.writes_per_rank as f64 * 0.6438) as u64;
            let light_writes = self.writes_per_rank - heavy_writes;
            for (file, count, region) in [(heavy, heavy_writes, 0u64), (light, light_writes, 0u64)]
            {
                let base = region + u64::from(rank) * (self.writes_per_rank * piece) + HEADER_SHIFT;
                for i in 0..count {
                    sim.mpi_write_independent(rank, file, base + i * piece, piece)
                        .expect("write");
                }
            }
            // Reads of particle data, also decomposed small + misaligned.
            // Reads wrap within the region this rank has already written.
            let base = u64::from(rank) * (self.writes_per_rank * piece) + HEADER_SHIFT;
            for i in 0..self.reads_per_rank {
                let slot = i % heavy_writes.max(1);
                sim.mpi_read_independent(rank, heavy, base + slot * piece, piece)
                    .expect("read");
            }
            // A couple of large bulk ops per rank keep the small fraction
            // at ~98.8%, matching the trace.
            let bulk = 8u64 << 20;
            let bulk_base = (1u64 << 40) + u64::from(rank) * 4 * bulk + HEADER_SHIFT;
            for i in 0..2u64 {
                sim.mpi_write_independent(rank, heavy, bulk_base + i * bulk, bulk)
                    .expect("bulk write");
            }
        }
        sim.mpi_file_close(heavy).expect("close");
        sim.mpi_file_close(light).expect("close");
        sim.finish()
    }

    fn generate_optimized(&self) -> Log {
        let config = SimConfig::default()
            .with_ranks(self.nprocs)
            .with_exe("openpmd-pipe (hdf5 fixed)");
        let mut sim = Simulation::new(config);
        let heavy = sim.mpi_file_open(HEAVY_FILE).expect("open heavy");

        // Fixed HDF5: true collective writes, aggregated into large aligned
        // accesses by two-phase I/O.
        let per_rank = 4u64 << 20;
        for round in 0..16u64 {
            let reqs: Vec<(u32, u64, u64)> = (0..self.nprocs)
                .map(|r| {
                    (
                        r,
                        (round * u64::from(self.nprocs) + u64::from(r)) * per_rank,
                        per_rank,
                    )
                })
                .collect();
            sim.mpi_write_collective(heavy, &reqs).expect("coll write");
        }

        // Residual behaviour: each rank performs a few attribute/metadata
        // reads; roughly a third are at random (non-sequential) offsets but
        // the count per rank and volume are tiny.
        let total_written = 16 * u64::from(self.nprocs) * per_rank;
        let reads_per_rank = 12u64;
        let mut rng = SmallRng::seed_from_u64(0x0bed);
        for rank in 0..self.nprocs {
            let mut offset = u64::from(rank) * 64 * 1024;
            for i in 0..reads_per_rank {
                // Most attribute lookups are random (the paper measures
                // ~88% of the remaining small ops as random), the rest walk
                // the header sequentially.
                let (off, len) = if i % 8 == 0 {
                    let o = offset;
                    offset += 512;
                    (o, 512)
                } else {
                    (rng.gen_range(0..total_written / 4096) * 4096, 512)
                };
                sim.mpi_read_independent(rank, heavy, off.min(total_written - 4096), len)
                    .expect("read");
            }
        }
        sim.mpi_file_close(heavy).expect("close");
        sim.finish()
    }
}

impl Workload for OpenPmd {
    fn name(&self) -> &str {
        match self.variant {
            OpenPmdVariant::Baseline => "OpenPMD (Baseline)",
            OpenPmdVariant::Optimized => "OpenPMD (Optimized)",
        }
    }

    fn generate(&self) -> Log {
        match self.variant {
            OpenPmdVariant::Baseline => self.generate_baseline(),
            OpenPmdVariant::Optimized => self.generate_optimized(),
        }
    }

    fn ground_truth(&self) -> GroundTruth {
        match self.variant {
            OpenPmdVariant::Baseline => GroundTruth::new(
                "HDF5 defect turns collective writes into individual small, misaligned operations; most are consecutive (aggregatable); ~64% of small writes hit one dataset file",
                &[
                    ("small-io", Expectation::Mitigated),
                    ("misaligned-io", Expectation::Present),
                    ("collective-io", Expectation::Present),
                    ("shared-file-contention", Expectation::Mitigated),
                ],
            ),
            OpenPmdVariant::Optimized => GroundTruth::new(
                "Collective writes restored (large aligned aggregated accesses); a small number of random attribute reads remain, low in count and volume",
                &[
                    ("small-io", Expectation::Absent),
                    ("misaligned-io", Expectation::Absent),
                    ("random-access", Expectation::Mitigated),
                    ("collective-io", Expectation::Absent),
                ],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darshan::counters::{MpiioCounter, PosixCounter};

    fn psum(log: &Log, c: PosixCounter) -> i64 {
        log.posix.iter().map(|r| r.get(c)).sum()
    }

    fn msum(log: &Log, c: MpiioCounter) -> i64 {
        log.mpiio.iter().map(|r| r.get(c)).sum()
    }

    fn small_writes(log: &Log) -> i64 {
        use PosixCounter::*;
        [
            POSIX_SIZE_WRITE_0_100,
            POSIX_SIZE_WRITE_100_1K,
            POSIX_SIZE_WRITE_1K_10K,
            POSIX_SIZE_WRITE_10K_100K,
            POSIX_SIZE_WRITE_100K_1M,
        ]
        .iter()
        .map(|&c| psum(log, c))
        .sum()
    }

    #[test]
    fn baseline_is_small_misaligned_and_independent() {
        let w = OpenPmd::scaled(OpenPmdVariant::Baseline, 0.02); // 7 ranks
        let log = w.generate();
        let ops = psum(&log, PosixCounter::POSIX_READS) + psum(&log, PosixCounter::POSIX_WRITES);
        let unaligned = psum(&log, PosixCounter::POSIX_FILE_NOT_ALIGNED);
        assert_eq!(unaligned, ops, "every access must be misaligned");
        // ~98.8% small.
        let writes = psum(&log, PosixCounter::POSIX_WRITES);
        let small = small_writes(&log);
        let pct = 100.0 * small as f64 / writes as f64;
        assert!(pct > 98.0 && pct < 99.9, "small fraction {pct}");
        // Collective opens, zero collective data ops — the bug's signature.
        assert!(msum(&log, MpiioCounter::MPIIO_COLL_OPENS) > 0);
        assert_eq!(msum(&log, MpiioCounter::MPIIO_COLL_WRITES), 0);
        assert!(msum(&log, MpiioCounter::MPIIO_INDEP_WRITES) > 0);
    }

    #[test]
    fn baseline_heavy_file_dominates_small_writes() {
        let w = OpenPmd::scaled(OpenPmdVariant::Baseline, 0.02);
        let log = w.generate();
        let heavy_id = darshan::record_id(HEAVY_FILE);
        let heavy_writes: i64 = log
            .posix
            .iter()
            .filter(|r| r.file_id == heavy_id)
            .map(|r| r.get(PosixCounter::POSIX_WRITES))
            .sum();
        let all_writes = psum(&log, PosixCounter::POSIX_WRITES);
        let share = heavy_writes as f64 / all_writes as f64;
        assert!(share > 0.55 && share < 0.75, "heavy share {share}");
    }

    #[test]
    fn baseline_small_writes_are_consecutive_per_rank() {
        let w = OpenPmd::scaled(OpenPmdVariant::Baseline, 0.02);
        let log = w.generate();
        let writes = psum(&log, PosixCounter::POSIX_WRITES);
        let consec = psum(&log, PosixCounter::POSIX_CONSEC_WRITES);
        assert!(
            consec as f64 / writes as f64 > 0.9,
            "consecutive fraction {}",
            consec as f64 / writes as f64
        );
    }

    #[test]
    fn optimized_aggregates_into_large_aligned_ops() {
        let w = OpenPmd::scaled(OpenPmdVariant::Optimized, 0.02);
        let log = w.generate();
        // Collective writes present at the MPI level.
        assert!(msum(&log, MpiioCounter::MPIIO_COLL_WRITES) > 0);
        // POSIX writes are few and large; small fraction of all ops is low.
        let writes = psum(&log, PosixCounter::POSIX_WRITES);
        let small_w = small_writes(&log);
        assert!(
            (small_w as f64 / writes.max(1) as f64) < 0.2,
            "small writes {small_w}/{writes}"
        );
        // Aggregated writes land stripe-aligned.
        let ops = psum(&log, PosixCounter::POSIX_READS) + psum(&log, PosixCounter::POSIX_WRITES);
        let unaligned = psum(&log, PosixCounter::POSIX_FILE_NOT_ALIGNED);
        assert!((unaligned as f64 / ops as f64) < 0.9);
    }

    #[test]
    fn optimized_random_reads_are_low_volume() {
        let w = OpenPmd::scaled(OpenPmdVariant::Optimized, 0.05);
        let log = w.generate();
        let reads = psum(&log, PosixCounter::POSIX_READS);
        let seq_reads = psum(&log, PosixCounter::POSIX_SEQ_READS);
        let random = reads - seq_reads;
        assert!(random > 0, "some random reads must exist");
        let read_bytes = psum(&log, PosixCounter::POSIX_BYTES_READ);
        let write_bytes = psum(&log, PosixCounter::POSIX_BYTES_WRITTEN);
        assert!(
            read_bytes * 100 < write_bytes,
            "random read volume must be negligible"
        );
    }

    #[test]
    fn deterministic() {
        let a = OpenPmd::scaled(OpenPmdVariant::Optimized, 0.02).generate();
        let b = OpenPmd::scaled(OpenPmdVariant::Optimized, 0.02).generate();
        assert_eq!(a, b);
    }
}
