//! Ground-truth specifications scored by the Figure 2 experiment.

use serde::{Deserialize, Serialize};

/// What the ground truth expects ION to say about one issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expectation {
    /// The issue is present and should be reported.
    Present,
    /// The issue is present but mitigated (e.g. small ops that aggregate);
    /// ION should report it together with the mitigating factor.
    Mitigated,
    /// The issue is absent and must not be reported.
    Absent,
}

/// The known issues a generated trace contains.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct GroundTruth {
    /// Human description of the injected behaviour (the "Ground Truth"
    /// column of Figure 2).
    pub description: String,
    /// Per-issue expectations, `(issue id, expectation)`.
    pub expectations: Vec<(String, Expectation)>,
}

impl GroundTruth {
    /// Build from a description and expectation pairs.
    #[must_use]
    pub fn new(description: &str, expectations: &[(&str, Expectation)]) -> Self {
        GroundTruth {
            description: description.to_owned(),
            expectations: expectations
                .iter()
                .map(|(id, e)| ((*id).to_owned(), *e))
                .collect(),
        }
    }

    /// Expectation for one issue, if specified.
    #[must_use]
    pub fn expectation(&self, issue: &str) -> Option<Expectation> {
        self.expectations
            .iter()
            .find(|(id, _)| id == issue)
            .map(|(_, e)| *e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup() {
        let gt = GroundTruth::new(
            "small sequential writes",
            &[
                ("small-io", Expectation::Mitigated),
                ("misaligned-io", Expectation::Present),
            ],
        );
        assert_eq!(gt.expectation("small-io"), Some(Expectation::Mitigated));
        assert_eq!(gt.expectation("nope"), None);
    }
}
