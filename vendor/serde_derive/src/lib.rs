//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a marker —
//! nothing serializes through serde at runtime (JSON output is hand-rolled).
//! These derives therefore expand to nothing, which keeps the derive
//! attribute valid without pulling the real proc-macro stack into an
//! offline build.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
