//! Offline stand-in for the `criterion` crate.
//!
//! Implements the bench-definition surface the workspace uses
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, throughput
//! annotations) over a simple warmup-then-measure wall-clock harness.
//! There is no statistical analysis — each benchmark reports the mean
//! time per iteration and, when a throughput was declared, the implied
//! rate. Good enough to rank hot paths and catch order-of-magnitude
//! regressions without the real crate's dependency tree.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Per-benchmark measurement settings.
#[derive(Debug, Clone, Copy)]
struct Settings {
    /// Samples to average over (each sample auto-sizes its iteration count).
    sample_size: usize,
    /// Target measurement time across all samples.
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// Top-level bench context handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_owned(),
            settings: Settings::default(),
            throughput: None,
        }
    }
}

/// Throughput annotation: reported as a rate next to the mean time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier `group/function/parameter` for parameterised benches.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id for `function_name` at `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the number of samples averaged per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id, |b| f(b));
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.name, |b| f(b, input));
        self
    }

    /// End the group (spacing line, mirroring criterion's output rhythm).
    pub fn finish(&mut self) {
        println!();
    }

    fn run(&self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            settings: self.settings,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        let mean_ns = bencher.mean_ns;
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!(" ({:.3} Melem/s)", n as f64 / mean_ns * 1e3)
            }
            Throughput::Bytes(n) => {
                format!(
                    " ({:.3} MiB/s)",
                    n as f64 / mean_ns * 1e9 / (1 << 20) as f64
                )
            }
        });
        println!(
            "{}/{:<40} time: [{}]{}",
            self.name,
            id,
            format_ns(mean_ns),
            rate.unwrap_or_default()
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Timing harness passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    settings: Settings,
    mean_ns: f64,
}

impl Bencher {
    /// Measure `routine`, recording the mean wall time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + auto-size: time one call, then pick an iteration count
        // that fills the per-sample budget.
        let warm_start = Instant::now();
        std_black_box(routine());
        let once = warm_start.elapsed().max(Duration::from_nanos(20));

        let samples = self.settings.sample_size as u32;
        let per_sample = self.settings.measurement_time / samples.max(1);
        let iters_per_sample = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            total += start.elapsed();
            iters += iters_per_sample;
            if total > self.settings.measurement_time * 2 {
                break; // slow benchmark: don't overrun the budget hard
            }
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

/// Define a bench group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_mean() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        let mut observed = 0.0;
        group.bench_function("count", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            observed = b.mean_ns;
        });
        assert!(observed > 0.0);
        group.finish();
    }

    #[test]
    fn benchmark_id_formats_with_parameter() {
        let id = BenchmarkId::new("encode", 4096);
        assert_eq!(id.name, "encode/4096");
    }
}
