//! Offline stand-in for the `bytes` crate.
//!
//! The container build has no access to crates.io, so the workspace vendors
//! the tiny slice of the `bytes` API it actually uses: the [`Buf`] /
//! [`BufMut`] cursor traits over `&[u8]` and `Vec<u8>`. Semantics match the
//! real crate for the implemented subset (panics on under-run mirror
//! `bytes`' own contract; callers bounds-check via `remaining()` first).

/// Read cursor over a contiguous byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consume and return one byte. Panics if empty.
    fn get_u8(&mut self) -> u8;
    /// Consume 8 bytes as a little-endian `u64`. Panics on under-run.
    fn get_u64_le(&mut self) -> u64;
    /// Consume `dst.len()` bytes into `dst`. Panics on under-run.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

/// Append-only write cursor.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64);
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (first, rest) = self.split_first().expect("Buf::get_u8 on empty buffer");
        *self = rest;
        *first
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        let v = u64::from_le_bytes(head.try_into().expect("split_at(8) yields 8 bytes"));
        *self = rest;
        v
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn get_u8(&mut self) -> u8 {
        (**self).get_u8()
    }

    fn get_u64_le(&mut self) -> u64 {
        (**self).get_u64_le()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        (**self).copy_to_slice(dst);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_u8(&mut self, v: u8) {
        (**self).put_u8(v);
    }

    fn put_u64_le(&mut self, v: u64) {
        (**self).put_u64_le(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_via_vec_and_slice() {
        let mut buf = Vec::new();
        buf.put_u8(0xab);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_slice(b"xyz");

        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 12);
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        let mut three = [0u8; 3];
        r.copy_to_slice(&mut three);
        assert_eq!(&three, b"xyz");
        assert!(!r.has_remaining());
    }
}
