//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never drives them through a serde serializer (all JSON/CSV output is
//! hand-rolled). This stub keeps those derives compiling without network
//! access to crates.io: the traits are empty markers and the derive macros
//! (re-exported from the sibling `serde_derive` stub) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
