//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (guards come back directly, not through a `Result`). The real crate's
//! speed advantage is irrelevant at the workspace's contention levels; what
//! matters is the API shape, which `ion-obs` builds its registry on.

use std::sync::{self, PoisonError};

/// Mutual exclusion with `parking_lot`'s panic-transparent locking.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with `parking_lot`'s panic-transparent locking.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: lock still succeeds afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
