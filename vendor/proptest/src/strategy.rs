//! Core [`Strategy`] trait and combinators.

use crate::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (built by [`crate::prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes — close enough to
        // real proptest's value-tree for the properties in this workspace.
        let mag = (rng.unit_f64() * 2.0 - 1.0) * 1e15;
        mag * rng.unit_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}')
    }
}

// ---------------------------------------------------------------------------
// tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------------------------
// regex-literal string strategy
// ---------------------------------------------------------------------------

/// One parsed regex atom: a set of candidate chars plus a repetition range.
#[derive(Debug, Clone)]
struct Atom {
    chars: CharSet,
    min: u32,
    max: u32, // inclusive
}

#[derive(Debug, Clone)]
enum CharSet {
    /// Explicit members (from `[...]` classes or literal chars).
    Explicit(Vec<char>),
    /// `\PC`: any non-control character.
    NonControl,
}

impl CharSet {
    fn pick(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Explicit(chars) => chars[rng.below(chars.len() as u64) as usize],
            CharSet::NonControl => {
                // Mostly printable ASCII with an occasional multi-byte char
                // so UTF-8 handling gets exercised.
                if rng.below(8) == 0 {
                    const WIDE: &[char] = &['é', 'ß', '中', '✓', '🦀', 'Ω', 'ж', '\u{2028}'];
                    WIDE[rng.below(WIDE.len() as u64) as usize]
                } else {
                    char::from_u32(0x20 + rng.below(0x5f) as u32).expect("printable ASCII")
                }
            }
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => {
                let mut members = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let Some(m) = chars.next() else {
                        panic!("unterminated char class in pattern {pattern:?}");
                    };
                    match m {
                        ']' => break,
                        '\\' => {
                            let esc = chars.next().expect("escape at end of class");
                            let lit = match esc {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                other => other,
                            };
                            members.push(lit);
                            prev = Some(lit);
                        }
                        '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let hi = chars.next().expect("range end");
                            let lo = prev.take().expect("range start");
                            // `lo` is already in members; add (lo, hi].
                            let (lo, hi) = (lo as u32, hi as u32);
                            assert!(lo <= hi, "inverted class range in {pattern:?}");
                            for cp in (lo + 1)..=hi {
                                members.push(char::from_u32(cp).expect("valid class range"));
                            }
                        }
                        other => {
                            members.push(other);
                            prev = Some(other);
                        }
                    }
                }
                assert!(!members.is_empty(), "empty char class in {pattern:?}");
                CharSet::Explicit(members)
            }
            '\\' => match chars.next() {
                Some('P') => {
                    let class = chars.next();
                    assert_eq!(class, Some('C'), "only \\PC is supported, got \\P{class:?}");
                    CharSet::NonControl
                }
                Some('n') => CharSet::Explicit(vec!['\n']),
                Some('t') => CharSet::Explicit(vec!['\t']),
                Some(other) => CharSet::Explicit(vec![other]),
                None => panic!("dangling escape in pattern {pattern:?}"),
            },
            literal => CharSet::Explicit(vec![literal]),
        };

        // Optional {m,n} / {n} quantifier; default exactly-once.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for q in chars.by_ref() {
                if q == '}' {
                    break;
                }
                spec.push(q);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("quantifier lower bound"),
                    hi.parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = spec.parse().expect("exact quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let span = u64::from(atom.max - atom.min) + 1;
            let reps = atom.min + rng.below(span) as u32;
            for _ in 0..reps {
                out.push(atom.chars.pick(rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(0x1234)
    }

    #[test]
    fn class_with_ranges_escapes_and_trailing_dash() {
        let atoms = parse_pattern("[a-zA-Z0-9 ,\"\n/._-]{0,30}");
        assert_eq!(atoms.len(), 1);
        let CharSet::Explicit(members) = &atoms[0].chars else {
            panic!("expected explicit class");
        };
        for c in ['a', 'z', 'M', '7', ' ', ',', '"', '\n', '/', '.', '_', '-'] {
            assert!(members.contains(&c), "missing {c:?}");
        }
        assert!(!members.contains(&'{'));
    }

    #[test]
    fn generated_strings_respect_length_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z0-9]{1,12}".generate(&mut r);
            assert!((1..=12).contains(&s.chars().count()), "{s:?}");
        }
    }

    #[test]
    fn pc_class_avoids_control_chars() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "\\PC{0,20}".generate(&mut r);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn concatenated_atoms() {
        let mut r = rng();
        let s = "[a-c][0-2]{2}".generate(&mut r);
        assert_eq!(s.len(), 3);
    }
}
