//! Offline stand-in for the `proptest` crate.
//!
//! The container build cannot reach crates.io, so the workspace vendors a
//! miniature property-testing framework with the same *spelling* as the
//! subset of proptest it uses: the [`proptest!`] macro, `any::<T>()`,
//! ranges and regex-literal strategies, tuples, [`collection::vec`],
//! `prop_map` / `prop_flat_map` / [`prop_oneof!`], and the `prop_assert*`
//! macros. Differences from the real crate:
//!
//! - generation is a pure function of the test name and case index, so
//!   every run (local and CI) sees the same inputs;
//! - there is no shrinking — on failure the harness prints the case index
//!   and seed so the exact inputs can be replayed;
//! - the regex-string strategy implements only the subset appearing in this
//!   workspace: char classes (`[a-z0-9 ,._-]`, ranges, `\n`/`\"` escapes),
//!   the `\PC` "any non-control char" class, and `{m,n}` repetition.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// Deterministic SplitMix64 stream driving all generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream determined entirely by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runner configuration — only the `cases` knob is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches real proptest's default; override per-block with
        // `#![proptest_config(ProptestConfig::with_cases(n))]` or globally
        // via the PROPTEST_CASES environment variable.
        ProptestConfig { cases: 256 }
    }
}

/// Effective case count: env override, else the config's.
#[must_use]
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases)
}

/// Stable FNV-1a hash of the test name — the per-test base seed.
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub mod collection {
    //! `vec` strategy, sized by an exact length or a `Range<usize>`.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Length specification accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy yielding `Vec`s of `element` draws.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig, TestRng,
    };
}

// ---------------------------------------------------------------------------
// assertion + harness macros
// ---------------------------------------------------------------------------

/// Property-scoped assertion (panics like `assert!` in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property-scoped equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Property-scoped inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies sharing a `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define `#[test]` functions that run a body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @config($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config($config:expr) $(
        #[test]
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config = $config;
            let cases = $crate::effective_cases(&config);
            let base = $crate::seed_for(stringify!($name));
            for case in 0..u64::from(cases) {
                let seed = base ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d);
                let mut rng = $crate::TestRng::new(seed);
                let ($($arg,)+) = ($($crate::Strategy::generate(&($strategy), &mut rng),)+);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest {}: failed at case {case}/{cases} (seed {seed:#018x})",
                        stringify!($name),
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

// ---------------------------------------------------------------------------
// numeric range strategies (live at crate root so `0u64..n` "just works")
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u128;
                let draw = ((u128::from(rng.next_u64()) * span) >> 64) as u64;
                // Wrapping add in the unsigned domain then cast back covers
                // signed ranges like -1000..1000 without overflow.
                #[allow(clippy::cast_possible_wrap, clippy::cast_possible_truncation)]
                {
                    self.start.wrapping_add(draw as $t)
                }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi.abs_diff(lo) as u128) + 1;
                let draw = ((u128::from(rng.next_u64()) * span) >> 64) as u64;
                #[allow(clippy::cast_possible_wrap, clippy::cast_possible_truncation)]
                {
                    lo.wrapping_add(draw as $t)
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        #[allow(clippy::cast_possible_truncation)]
        {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = TestRng::new(crate::seed_for("x"));
        let mut b = TestRng::new(crate::seed_for("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, s in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((-5..=5).contains(&s));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_spec(
            xs in crate::collection::vec(0u8..10, 2..5),
            exact in crate::collection::vec(0u8..10, 3usize),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert_eq!(exact.len(), 3);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(1u8), (5u8..7).prop_map(|x| x)]) {
            prop_assert!(v == 1 || v == 5 || v == 6);
        }

        #[test]
        fn regex_classes_generate_members(s in "[a-c]{2,4}", p in "\\PC{0,8}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(p.chars().all(|c| !c.is_control()));
        }
    }
}
