//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface the workspace uses — `SmallRng`
//! (deterministically seeded via [`SeedableRng::seed_from_u64`]) and
//! [`Rng::gen_range`] over half-open integer ranges — on top of a SplitMix64
//! generator. SplitMix64 passes BigCrush-level uniformity for the modest
//! draws the synthetic workloads make, and being self-contained keeps the
//! build offline. Streams differ from the real `rand` crate, so anything
//! asserting on generated data must hold for any uniform generator.

use std::ops::Range;

/// Source of 64-bit random words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u128;
                // Multiply-shift mapping avoids the modulo's low-bit bias.
                let word = rng.next_u64() as u128;
                self.start + ((word * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = self.end.abs_diff(self.start) as u128;
                let word = rng.next_u64() as u128;
                self.start.wrapping_add(((word * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator: the stand-in for `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Alias — the stub makes no statistical distinction from [`SmallRng`].
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn draws_cover_the_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
