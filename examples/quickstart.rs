//! Quickstart: trace an application in the simulator, diagnose it with ION,
//! and ask a follow-up question.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ion::pipeline::IonPipeline;
use iosim::{SimConfig, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Run a small "application" against the simulated Lustre system:
    //    four ranks appending 2 KiB records to a shared file — a classic
    //    small-I/O pattern.
    let mut sim = Simulation::new(
        SimConfig::default()
            .with_ranks(4)
            .with_exe("quickstart-app"),
    );
    let file = sim.posix_open_all("/scratch/quickstart/output.dat")?;
    for step in 0..256u64 {
        for rank in 0..4u32 {
            let base = u64::from(rank) * (1 << 20);
            sim.posix_write(rank, file, base + step * 2048, 2048)?;
        }
    }
    sim.posix_close_all(file);

    // 2. The simulator hands back a Darshan log, exactly as darshan-runtime
    //    would have produced on a real system.
    let log = sim.finish();
    println!(
        "trace: {} POSIX records, {} DXT records, job ran {:.4}s\n",
        log.posix.len(),
        log.dxt.len(),
        log.job.run_time()
    );

    // 3. Diagnose it with ION: extract → per-issue prompts → LLM runs →
    //    summary.
    let report = IonPipeline::new().run(&log);
    println!("{}", report.summary);
    println!("per-issue results:");
    for d in &report.diagnoses {
        println!("  {}", d.one_line());
    }

    // 4. Ask the interactive interface a follow-up, like you would ask a
    //    human I/O expert.
    let mut session = report.session();
    let question = "why are the small writes not a big problem here?";
    println!("\nQ: {question}");
    println!("A: {}", session.ask(question));
    Ok(())
}
