//! Inspect a Darshan log the way an I/O expert would before diagnosis:
//! serialize one, decode it back, render the `darshan-parser` and
//! `darshan-dxt-parser` views, and extract the CSV tables that ION's
//! prompts attach.
//!
//! ```sh
//! cargo run --example trace_inspector
//! ```

use darshan::log::{LogReader, LogWriter};
use darshan::parser::{render_dxt_text, render_text};
use extractor::csv::to_csv;
use extractor::extract_tables;
use workloads::ior::ior_hard;
use workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny ior-hard run: small interleaved records on a shared file.
    let log = ior_hard(0.0001).generate();

    // Round-trip through the binary log format, as a file on disk would.
    let bytes = LogWriter::from_log(log).finish()?;
    println!("binary log size: {} bytes", bytes.len());
    let log = LogReader::read(&bytes)?;

    // darshan-parser view (counters), truncated.
    let text = render_text(&log);
    println!("\n── darshan-parser (first 24 lines) ──");
    for line in text.lines().take(24) {
        println!("{line}");
    }

    // darshan-dxt-parser view (per-operation trace), truncated.
    let dxt = render_dxt_text(&log);
    println!("\n── darshan-dxt-parser (first 12 lines) ──");
    for line in dxt.lines().take(12) {
        println!("{line}");
    }

    // The extractor's CSV tables — what ION attaches to its prompts.
    let tables = extract_tables(&log);
    println!("\n── extracted tables ──");
    for (name, table) in tables.iter() {
        println!(
            "{name}.csv: {} rows × {} columns",
            table.len(),
            table.columns.len()
        );
    }
    if let Some(dxt_table) = tables.get("DXT") {
        let csv = to_csv(dxt_table);
        println!("\nDXT.csv preview:");
        for line in csv.lines().take(6) {
            println!("{line}");
        }
    }
    Ok(())
}
