//! Side-by-side diagnosis of the OpenPMD baseline trace: Drishti's
//! threshold triggers vs ION's contextual analysis (the paper's Figure 3
//! comparison, one row).
//!
//! ```sh
//! cargo run --release --example drishti_vs_ion
//! ```

use ion::pipeline::IonPipeline;
use workloads::openpmd::{OpenPmd, OpenPmdVariant};
use workloads::Workload;

fn main() {
    let w = OpenPmd::scaled(OpenPmdVariant::Baseline, 0.05);
    println!("generating {} trace...", w.name());
    let log = w.generate();

    println!("\n──────── Drishti ────────");
    let drishti_report = drishti::analyze(&log);
    print!("{}", drishti_report.render_text());

    println!("\n──────── ION ────────");
    let ion_report = IonPipeline::new().run(&log);
    println!("{}", ion_report.summary);
    for d in ion_report.detected() {
        println!("[{}] {} — {}", d.severity, d.title, d.conclusion);
    }

    println!("\n──────── what ION adds ────────");
    // Drishti reports THAT there are small writes; ION reports that they
    // are consecutive and therefore aggregatable, and which MPI-IO defect
    // signature produced them.
    if let Some(small) = ion_report.diagnosis("small-io") {
        for m in &small.mitigations {
            println!("context: {m}");
        }
    }
    if let Some(coll) = ion_report.diagnosis("collective-io") {
        for f in &coll.findings {
            println!("root cause: {}", f.text);
        }
    }
}
