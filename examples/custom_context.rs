//! Extend ION's knowledge base with a site-specific issue context — the
//! paper's "build more comprehensive knowledge base" direction — without
//! touching any ION code: knowledge is data.
//!
//! The new context teaches ION about *fsync storms*: applications that
//! call fsync after every small write serialize against the storage
//! servers. We run an offending app and a clean app and show that only the
//! context text decides the diagnosis.
//!
//! ```sh
//! cargo run --example custom_context
//! ```

use extractor::extract_tables;
use ion::analyzer::{Analyzer, SystemParams};
use ion::IssueContext;
use iosim::{SimConfig, Simulation};

const FSYNC_STORM_CONTEXT: &str = r#"
ISSUE: fsync-storm
TITLE: Excessive synchronization (fsync storm)
MODULES: POSIX

Calling fsync after every write forces the file system to flush dirty data
synchronously: each flush is a full round trip that stalls the writer and
serializes server-side work. A durable-write pattern is healthy when
batched; an fsync per small write is pathological. Compare the number of
fsync calls to the number of writes.

COMPUTE sync_profile:
  LOAD POSIX
  AGG writes = sum(POSIX_WRITES), fsyncs = sum(POSIX_FSYNCS)
  LET sync_ratio = fsyncs / max(writes, 1)
  EMIT writes, fsyncs, sync_ratio
END

CONCLUDE IF sync_ratio > 0.5 && fsyncs > 16 SEVERITY high: "the application calls fsync for nearly every write ({fsyncs:int} fsyncs for {writes:int} writes) — synchronous flushing will dominate write latency"
NOTE IF sync_ratio <= 0.5 && writes > 0: "synchronization is modest ({fsyncs:int} fsyncs for {writes:int} writes)"
"#;

fn app(fsync_every_write: bool) -> darshan::log::Log {
    let mut sim = Simulation::new(SimConfig::default().with_ranks(2).with_exe("db-logger"));
    let f = sim.posix_open_all("/scratch/wal.log").unwrap();
    for i in 0..64u64 {
        for rank in 0..2u32 {
            sim.posix_write(rank, f, (i * 2 + u64::from(rank)) * 4096, 4096)
                .unwrap();
            if fsync_every_write {
                sim.posix_fsync(rank, f).unwrap();
            }
        }
    }
    sim.posix_close_all(f);
    sim.finish()
}

fn main() {
    // Register the custom context alongside the built-ins.
    let mut contexts = ion::builtin_contexts();
    contexts.push(IssueContext {
        id: "fsync-storm",
        text: FSYNC_STORM_CONTEXT.to_owned(),
    });
    let analyzer = Analyzer::new().with_contexts(contexts);

    for (label, storm) in [("fsync-per-write app", true), ("batched app", false)] {
        let log = app(storm);
        let tables = extract_tables(&log);
        let result = analyzer.analyze(&tables, &SystemParams::from_log(&log));
        let d = result
            .diagnoses
            .iter()
            .find(|d| d.issue == "fsync-storm")
            .expect("custom issue analyzed");
        println!("── {label} ──");
        println!("  detected: {:?}  severity: {}", d.detection, d.severity);
        if let Some(f) = d.findings.first() {
            println!("  finding: {}", f.text);
        }
        if let Some(n) = d.notes.first() {
            println!("  note: {n}");
        }
        println!();
    }
    println!("(the fsync-storm knowledge lives entirely in the context text — no code changed)");
}
