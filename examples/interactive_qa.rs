//! Interactive diagnosis session on the E2E baseline trace: run ION, then
//! hold the kind of conversation the paper's front-end message window
//! enables. Pass questions as CLI arguments, or run the scripted demo.
//!
//! ```sh
//! cargo run --release --example interactive_qa
//! cargo run --release --example interactive_qa -- "what code did you run for load imbalance?"
//! ```

use ion::pipeline::IonPipeline;
use workloads::e2e::{E2e, E2eVariant};
use workloads::Workload;

fn main() {
    let w = E2e::scaled(E2eVariant::Baseline, 0.05);
    println!("generating {} trace and running ION...", w.name());
    let log = w.generate();
    let report = IonPipeline::new().run(&log);
    println!("\n{}", report.summary);

    let mut session = report.session();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let questions: Vec<String> = if args.is_empty() {
        vec![
            "why did you conclude there is load imbalance?".into(),
            "what imbalance_pct did you measure?".into(),
            "show me the code for the misaligned io analysis".into(),
            "is the metadata load a problem?".into(),
        ]
    } else {
        args
    };

    for q in questions {
        println!("\nQ: {q}");
        println!("A: {}", session.ask(&q));
    }
    println!("\n({} exchanges recorded)", session.history().len());
}
