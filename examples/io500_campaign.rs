//! Run the six IO500-derived workloads of Figure 2 and print ION's
//! diagnosis against each one's ground truth.
//!
//! ```sh
//! cargo run --release --example io500_campaign
//! ```

use ion::pipeline::IonPipeline;
use ion_repro::{accuracy, score_report};
use workloads::ior::{
    ior_easy_1mb_fpp, ior_easy_1mb_shared, ior_easy_2kb_shared, ior_hard, ior_rnd4k,
};
use workloads::mdworkbench::MdWorkbench;
use workloads::Workload;

fn main() {
    let scale: f64 = std::env::var("IONREPRO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(ior_easy_2kb_shared(scale)),
        Box::new(ior_easy_1mb_shared(scale)),
        Box::new(ior_easy_1mb_fpp(scale)),
        Box::new(ior_hard(scale / 10.0)),
        Box::new(ior_rnd4k(scale)),
        Box::new(MdWorkbench::scaled(scale * 5.0)),
    ];

    let mut total_hits = 0usize;
    let mut total_expectations = 0usize;
    for w in &workloads {
        let truth = w.ground_truth();
        println!("━━━ {} ━━━", w.name());
        println!("ground truth: {}", truth.description);
        let log = w.generate();
        let report = IonPipeline::new().run(&log);
        let scores = score_report(&report, &truth);
        for s in &scores {
            println!(
                "  {:<24} expected {:<10} got {:<10} {}",
                s.issue,
                format!("{:?}", s.expected),
                s.got.map_or("skipped".into(), |d| d.to_string()),
                if s.hit { "✓" } else { "✗" }
            );
        }
        total_hits += scores.iter().filter(|s| s.hit).count();
        total_expectations += scores.len();
        println!("  accuracy: {:.0}%", 100.0 * accuracy(&scores));
        // One headline ION sentence per detected issue.
        for d in report.detected() {
            if let Some(f) = d.findings.first() {
                println!("  ION: {}", f.text);
            } else if let Some(m) = d.mitigations.first() {
                println!("  ION: {m}");
            }
        }
        println!();
    }
    println!(
        "overall: {total_hits}/{total_expectations} expectations satisfied ({:.0}%)",
        100.0 * total_hits as f64 / total_expectations.max(1) as f64
    );
}
