//! Workspace-level integration crate for the ION reproduction.
//!
//! The library surface lives in the member crates (`darshan`, `iosim`,
//! `workloads`, `extractor`, `ion-llm`, `ion`, `drishti`); this crate hosts
//! the cross-crate integration tests under `tests/` and the runnable
//! examples under `examples/`, plus the scoring helper the Figure 2
//! experiment and tests share.

use ion::{Detection, IonReport};
use workloads::{Expectation, GroundTruth};

/// Outcome of scoring one issue expectation against an ION report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssueScore {
    /// Issue id.
    pub issue: String,
    /// What the ground truth expected.
    pub expected: Expectation,
    /// What ION reported.
    pub got: Option<Detection>,
    /// Whether the expectation is satisfied.
    pub hit: bool,
}

/// Score an ION report against a workload's ground truth.
///
/// * `Present` is satisfied by `DETECTED: yes` (a hard detection);
/// * `Mitigated` is satisfied by `DETECTED: mitigated` (detected **with**
///   mitigating factors reported), matching how the paper credits ION for
///   qualifying small sequential I/O as aggregatable;
/// * `Absent` is satisfied by `DETECTED: no` or by the issue being skipped.
#[must_use]
pub fn score_report(report: &IonReport, truth: &GroundTruth) -> Vec<IssueScore> {
    truth
        .expectations
        .iter()
        .map(|(issue, expected)| {
            let got = report.diagnosis(issue).and_then(|d| d.detection);
            let hit = match expected {
                Expectation::Present => got == Some(Detection::Yes),
                Expectation::Mitigated => got == Some(Detection::Mitigated),
                Expectation::Absent => got.is_none() || got == Some(Detection::No),
            };
            IssueScore {
                issue: issue.clone(),
                expected: *expected,
                got,
                hit,
            }
        })
        .collect()
}

/// Fraction of expectations satisfied (1.0 = perfect).
#[must_use]
pub fn accuracy(scores: &[IssueScore]) -> f64 {
    if scores.is_empty() {
        return 1.0;
    }
    scores.iter().filter(|s| s.hit).count() as f64 / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_of_empty_is_perfect() {
        assert_eq!(accuracy(&[]), 1.0);
    }
}
